//! Shared dense-vector kernels — the single hot-path implementation of
//! dot/L2/cosine scoring used by every serving and training layer.
//!
//! The paper's serving stack leans on one primitive everywhere: dense
//! vector scoring (graph-embedding fact ranking, the cached-entity-embedding
//! contextual reranker, the low-latency kNN tier). Centralizing it here
//! keeps one fast implementation instead of N naive scalar loops.
//!
//! Each kernel unrolls into independent accumulator lanes so the loop body
//! carries no serial dependency chain — the shape LLVM autovectorizes into
//! SIMD without `-ffast-math` or explicit intrinsics. The `*_batch`
//! variants score one query against a contiguous row-major block, writing
//! into a caller-owned buffer so steady-state serving performs no
//! allocation.

/// Accumulator lanes for the unrolled reductions.
const LANES: usize = 8;

#[inline]
fn sum8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Inner product `Σ a·b`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    for (x, y) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    sum8(acc) + tail
}

/// Squared Euclidean distance `Σ (a−b)²`.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    for (x, y) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = x[l] - y[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        tail += d * d;
    }
    sum8(acc) + tail
}

/// Squared L2 norm `Σ v²`.
#[inline]
pub fn norm_sq(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let rv = v.chunks_exact(LANES).remainder();
    for x in v.chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += x[l] * x[l];
        }
    }
    let mut tail = 0.0f32;
    for x in rv {
        tail += x * x;
    }
    sum8(acc) + tail
}

/// L2 norm of a vector.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    norm_sq(v).sqrt()
}

/// Cosine similarity (0.0 when either vector is zero).
///
/// Composed of three single-reduction passes rather than one fused loop: a
/// loop updating three accumulator arrays defeats LLVM's vectorizer, while
/// each single reduction autovectorizes cleanly — measured ~35% faster at
/// dim 128 despite touching the data three times (it stays in L1).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let d = dot(a, b);
    let na = norm_sq(a);
    let nb = norm_sq(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

/// Cosine similarity with the query norm precomputed (`q_norm = l2_norm(q)`)
/// — the shape the contextual reranker wants when one query is scored
/// against many cached entity embeddings: two vectorized passes per
/// candidate instead of three.
#[inline]
pub fn cosine_qnorm(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let d = dot(q, b);
    let nb = norm_sq(b);
    if q_norm == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (q_norm * nb.sqrt())
    }
}

/// Triple product `Σ a·b·c` — the DistMult scoring kernel.
#[inline]
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    let rc = c.chunks_exact(LANES).remainder();
    for ((x, y), z) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)).zip(c.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += x[l] * y[l] * z[l];
        }
    }
    let mut tail = 0.0f32;
    for ((x, y), z) in ra.iter().zip(rb).zip(rc) {
        tail += x * y * z;
    }
    sum8(acc) + tail
}

/// Translation error `Σ (h + r − t)²` — the TransE scoring kernel
/// (`score = −translate_l2_sq`).
#[inline]
pub fn translate_l2_sq(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert!(h.len() == r.len() && r.len() == t.len());
    let mut acc = [0.0f32; LANES];
    let rh = h.chunks_exact(LANES).remainder();
    let rr = r.chunks_exact(LANES).remainder();
    let rt = t.chunks_exact(LANES).remainder();
    for ((x, y), z) in h.chunks_exact(LANES).zip(r.chunks_exact(LANES)).zip(t.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = x[l] + y[l] - z[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for ((x, y), z) in rh.iter().zip(rr).zip(rt) {
        let d = x + y - z;
        tail += d * d;
    }
    sum8(acc) + tail
}

/// Lane count for the i8 kernels. Wider than the f32 kernels' [`LANES`]:
/// sixteen i8 values fill one 128-bit vector, so the conversion-heavy
/// mixed loop needs the extra unroll depth before the multiply-add chain
/// saturates the pipeline (measured ~1.7× over 8 lanes at dim 128).
const LANES_I8: usize = 16;

// Both 16-lane reductions use the plain sequential-fold idiom: LLVM
// recognizes it and keeps the accumulator in vector registers, whereas an
// explicit pairwise tree (as in `sum8`) forces the 16-wide accumulator to
// memory and defeats vectorization of the main loop (~1.7× slower).

#[inline]
fn sum16(acc: [f32; LANES_I8]) -> f32 {
    let mut s = 0.0f32;
    for a in acc {
        s += a;
    }
    s
}

#[inline]
fn sum16i(acc: [i32; LANES_I8]) -> i32 {
    let mut s = 0i32;
    for a in acc {
        s += a;
    }
    s
}

/// Integer inner product `Σ a·b` over i8 lanes with i32 accumulation.
///
/// The accumulator cannot overflow below ~133k dimensions
/// (127² · n < 2³¹), far beyond any embedding dimension used here, so the
/// loop carries no saturation checks and autovectorizes like its f32
/// sibling. Callers apply the two quantization scales once to the final
/// sum — never per element — which is what makes the quantized serving
/// path dequantize-free.
#[inline]
pub fn dot_i8i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; LANES_I8];
    let ra = a.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in a.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] as i32 * y[l] as i32;
        }
    }
    let mut tail = 0i32;
    for (x, y) in ra.iter().zip(rb) {
        tail += *x as i32 * *y as i32;
    }
    sum16i(acc) + tail
}

/// Mixed inner product `Σ q·b` of an f32 query against an i8 row — the
/// asymmetric serving shape (full-precision query, quantized store). The
/// caller multiplies the row's scale into the result once.
#[inline]
pub fn dot_f32i8(q: &[f32], b: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let mut acc = [0.0f32; LANES_I8];
    let rq = q.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in q.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] * y[l] as f32;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in rq.iter().zip(rb) {
        tail += x * *y as f32;
    }
    sum16(acc) + tail
}

/// Squared L2 norm `Σ v²` of an i8 row, in integer units. Dequantized
/// norm = `scale · sqrt(norm_sq_i8(v))`; tables precompute this once per
/// row at build time so cosine/euclidean scoring needs only a dot product
/// per candidate.
#[inline]
pub fn norm_sq_i8(v: &[i8]) -> i32 {
    let mut acc = [0i32; LANES_I8];
    let rv = v.chunks_exact(LANES_I8).remainder();
    for x in v.chunks_exact(LANES_I8) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] as i32 * x[l] as i32;
        }
    }
    let mut tail = 0i32;
    for x in rv {
        tail += *x as i32 * *x as i32;
    }
    sum16i(acc) + tail
}

/// Squared Euclidean distance between an f32 query and a dequantized i8
/// row via the expansion `‖q−s·b‖² = ‖q‖² − 2s(q·b) + (s‖b‖)²`, without
/// materializing the dequantized row. `q_norm_sq = norm_sq(q)` and
/// `b_norm = scale · sqrt(norm_sq_i8(b))` are precomputed by the caller.
/// Clamped at zero: the expansion can go slightly negative under f32
/// rounding when the vectors nearly coincide.
#[inline]
pub fn l2_sq_f32i8(q: &[f32], q_norm_sq: f32, b: &[i8], scale: f32, b_norm: f32) -> f32 {
    let d = dot_f32i8(q, b);
    (q_norm_sq - 2.0 * scale * d + b_norm * b_norm).max(0.0)
}

/// One-pass variant of [`l2_sq_f32i8`] for callers with no precomputed
/// norms (e.g. a standalone quantized row): fuses the dequantize-multiply
/// into the difference, `Σ (q − s·b)²`, so a single sweep replaces the
/// norm pass plus expansion.
#[inline]
pub fn l2_sq_f32i8_direct(q: &[f32], b: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let mut acc = [0.0f32; LANES_I8];
    let rq = q.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in q.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            let d = x[l] - scale * y[l] as f32;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in rq.iter().zip(rb) {
        let d = x - scale * *y as f32;
        tail += d * d;
    }
    sum16(acc) + tail
}

/// Batch counterpart of [`dot_i8i8`]: one i32 inner product per row of a
/// contiguous i8 `block`, written into a caller-owned buffer (same
/// contract as [`dot_batch`]).
pub fn dot_i8i8_batch(q: &[i8], block: &[i8], out: &mut Vec<i32>) {
    assert!(!q.is_empty(), "query must be non-empty");
    debug_assert_eq!(block.len() % q.len(), 0);
    out.clear();
    out.extend(block.chunks_exact(q.len()).map(|row| dot_i8i8(q, row)));
}

/// Batch counterpart of [`dot_f32i8`]: raw (unscaled) mixed inner product
/// per row; the caller folds in each row's scale.
pub fn dot_f32i8_batch(q: &[f32], block: &[i8], out: &mut Vec<f32>) {
    assert!(!q.is_empty(), "query must be non-empty");
    debug_assert_eq!(block.len() % q.len(), 0);
    out.clear();
    out.extend(block.chunks_exact(q.len()).map(|row| dot_f32i8(q, row)));
}

/// Scores `q` against every row of a contiguous row-major `block`
/// (`block.len()` must be a multiple of `q.len()`), appending one dot
/// product per row into `out` after clearing it. Reuses `out`'s capacity —
/// no allocation once the buffer has grown to the block's row count.
pub fn dot_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    assert!(!q.is_empty(), "query must be non-empty");
    debug_assert_eq!(block.len() % q.len(), 0);
    out.clear();
    out.extend(block.chunks_exact(q.len()).map(|row| dot(q, row)));
}

/// Batch counterpart of [`l2_sq`]: squared distance per row of `block`.
pub fn l2_sq_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    assert!(!q.is_empty(), "query must be non-empty");
    debug_assert_eq!(block.len() % q.len(), 0);
    out.clear();
    out.extend(block.chunks_exact(q.len()).map(|row| l2_sq(q, row)));
}

/// Batch counterpart of [`cosine`]: the query norm is computed once and
/// each row costs two vectorized passes instead of three.
pub fn cosine_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    assert!(!q.is_empty(), "query must be non-empty");
    debug_assert_eq!(block.len() % q.len(), 0);
    let q_norm = l2_norm(q);
    out.clear();
    out.extend(block.chunks_exact(q.len()).map(|row| cosine_qnorm(q, q_norm, row)));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn naive_cosine(a: &[f32], b: &[f32]) -> f32 {
        let (mut d, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
        for (x, y) in a.iter().zip(b) {
            d += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            d / (na.sqrt() * nb.sqrt())
        }
    }

    fn seq(n: usize, seed: u64) -> Vec<f32> {
        // Cheap deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f32 / (1u64 << 52) as f32 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_naive_across_dims() {
        for dim in [1, 3, 7, 8, 9, 16, 31, 64, 127, 128, 200] {
            let a = seq(dim, 1 + dim as u64);
            let b = seq(dim, 1000 + dim as u64);
            assert!(
                (dot(&a, &b) - naive_dot(&a, &b)).abs() < 1e-4,
                "dim {dim}: {} vs {}",
                dot(&a, &b),
                naive_dot(&a, &b)
            );
        }
    }

    #[test]
    fn l2_and_norms_match_naive() {
        for dim in [1, 5, 8, 13, 64, 129] {
            let a = seq(dim, dim as u64);
            let b = seq(dim, 7 * dim as u64);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((l2_sq(&a, &b) - naive).abs() < 1e-4, "dim {dim}");
            let nn: f32 = a.iter().map(|x| x * x).sum();
            assert!((norm_sq(&a) - nn).abs() < 1e-4);
            assert!((l2_norm(&a) - nn.sqrt()).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_matches_naive_and_handles_zero() {
        for dim in [1, 4, 6, 12, 48, 100] {
            let a = seq(dim, 3 * dim as u64);
            let b = seq(dim, 11 * dim as u64);
            assert!((cosine(&a, &b) - naive_cosine(&a, &b)).abs() < 1e-5, "dim {dim}");
            let qn = l2_norm(&a);
            assert!((cosine_qnorm(&a, qn, &b) - naive_cosine(&a, &b)).abs() < 1e-5);
        }
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_qnorm(&[0.0, 0.0], 0.0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn triple_kernels_match_naive() {
        for dim in [1, 2, 8, 9, 32, 65] {
            let h = seq(dim, dim as u64);
            let r = seq(dim, 2 * dim as u64 + 1);
            let t = seq(dim, 3 * dim as u64 + 2);
            let nd3: f32 = (0..dim).map(|i| h[i] * r[i] * t[i]).sum();
            assert!((dot3(&h, &r, &t) - nd3).abs() < 1e-4, "dot3 dim {dim}");
            let ntr: f32 = (0..dim)
                .map(|i| {
                    let d = h[i] + r[i] - t[i];
                    d * d
                })
                .sum();
            assert!((translate_l2_sq(&h, &r, &t) - ntr).abs() < 1e-4, "transe dim {dim}");
        }
    }

    fn seq_i8(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as i8
            })
            .collect()
    }

    #[test]
    fn i8_dot_and_norm_match_naive_across_dims() {
        for dim in [1, 3, 7, 8, 9, 16, 31, 64, 127, 128, 200] {
            let a = seq_i8(dim, 1 + dim as u64);
            let b = seq_i8(dim, 1000 + dim as u64);
            let nd: i32 = a.iter().zip(&b).map(|(x, y)| *x as i32 * *y as i32).sum();
            assert_eq!(dot_i8i8(&a, &b), nd, "dim {dim}");
            let nn: i32 = a.iter().map(|x| *x as i32 * *x as i32).sum();
            assert_eq!(norm_sq_i8(&a), nn, "dim {dim}");
        }
    }

    #[test]
    fn i8_dot_saturated_rows_do_not_overflow() {
        // 4096 dims of ±127 is the worst case at realistic sizes.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        assert_eq!(dot_i8i8(&a, &b), -127 * 127 * 4096);
        assert_eq!(norm_sq_i8(&a), 127 * 127 * 4096);
    }

    #[test]
    fn mixed_dot_matches_dequantized_reference() {
        for dim in [1, 5, 8, 13, 48, 129] {
            let q = seq(dim, 3 * dim as u64);
            let b = seq_i8(dim, 7 * dim as u64);
            let scale = 0.013f32;
            let deq: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
            let want = naive_dot(&q, &deq);
            let got = scale * dot_f32i8(&q, &b);
            assert!((got - want).abs() < 1e-4, "dim {dim}: {got} vs {want}");
        }
    }

    #[test]
    fn l2_expansion_matches_direct_distance() {
        for dim in [1, 4, 8, 17, 64, 130] {
            let q = seq(dim, 11 * dim as u64);
            let b = seq_i8(dim, 13 * dim as u64);
            let scale = 0.0077f32;
            let deq: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
            let want = l2_sq(&q, &deq);
            let b_norm = scale * (norm_sq_i8(&b) as f32).sqrt();
            let got = l2_sq_f32i8(&q, norm_sq(&q), &b, scale, b_norm);
            assert!((got - want).abs() < 1e-3, "dim {dim}: {got} vs {want}");
            let direct = l2_sq_f32i8_direct(&q, &b, scale);
            assert!((direct - want).abs() < 1e-3, "dim {dim}: direct {direct} vs {want}");
        }
        // Identical vectors: expansion may dip below zero in f32; clamped.
        let b = seq_i8(64, 5);
        let scale = 0.01f32;
        let q: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
        let b_norm = scale * (norm_sq_i8(&b) as f32).sqrt();
        let got = l2_sq_f32i8(&q, norm_sq(&q), &b, scale, b_norm);
        assert!((0.0..1e-3).contains(&got));
    }

    #[test]
    fn i8_batch_kernels_match_single_calls() {
        let dim = 24;
        let rows = 17;
        let qi = seq_i8(dim, 5);
        let qf = seq(dim, 5);
        let block: Vec<i8> = (0..rows).flat_map(|i| seq_i8(dim, 100 + i as u64)).collect();
        let mut out_i = Vec::new();
        dot_i8i8_batch(&qi, &block, &mut out_i);
        assert_eq!(out_i.len(), rows);
        for (i, s) in out_i.iter().enumerate() {
            assert_eq!(*s, dot_i8i8(&qi, &block[i * dim..(i + 1) * dim]));
        }
        let mut out_f = Vec::new();
        dot_f32i8_batch(&qf, &block, &mut out_f);
        assert_eq!(out_f.len(), rows);
        for (i, s) in out_f.iter().enumerate() {
            assert!((s - dot_f32i8(&qf, &block[i * dim..(i + 1) * dim])).abs() < 1e-6);
        }
        let cap = out_i.capacity();
        dot_i8i8_batch(&qi, &block, &mut out_i);
        assert_eq!(out_i.capacity(), cap);
    }

    #[test]
    fn batch_kernels_match_single_calls() {
        let dim = 24;
        let q = seq(dim, 5);
        let rows = 17;
        let block: Vec<f32> = (0..rows).flat_map(|i| seq(dim, 100 + i as u64)).collect();
        let mut out = Vec::new();
        dot_batch(&q, &block, &mut out);
        assert_eq!(out.len(), rows);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - dot(&q, row)).abs() < 1e-6);
        }
        cosine_batch(&q, &block, &mut out);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - cosine(&q, row)).abs() < 1e-6);
        }
        l2_sq_batch(&q, &block, &mut out);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - l2_sq(&q, row)).abs() < 1e-6);
        }
        // Buffer is reused: capacity survives clears.
        let cap = out.capacity();
        dot_batch(&q, &block, &mut out);
        assert_eq!(out.capacity(), cap);
    }
}
