//! Deterministic synthetic open-domain knowledge graph.
//!
//! Stands in for the paper's production KG (see DESIGN.md §2). Generates
//! people, creative works, organizations, places and teams with:
//! - Zipfian popularity skew;
//! - multi-valued predicates (occupations) with an importance-ranked ground
//!   truth, for the fact-ranking experiment;
//! - noisy bookkeeping facts (heights, library ids, follower counts) — the
//!   facts Sec. 2 of the paper says must be filtered before embedding
//!   training;
//! - rare predicates below any sensible frequency threshold;
//! - homonym entities (same surface name, different type), including the
//!   paper's worked examples: the two Michael Jordans (Fig. 2) and the two
//!   Michelle Williamses (Fig. 6).
//!
//! Everything is seeded: the same config always yields the same graph.

use crate::entity::EntityBuilder;
use crate::ids::{EntityId, PredicateId, TypeId};
use crate::ontology::{Cardinality, Ontology, Volatility};
use crate::store::KnowledgeGraph;
use crate::triple::Triple;
use crate::value::{Date, Value, ValueKind};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Handles to the standard ontology's types.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing type handles
pub struct TypeIds {
    pub person: TypeId,
    pub athlete: TypeId,
    pub academic: TypeId,
    pub musician: TypeId,
    pub actor: TypeId,
    pub movie: TypeId,
    pub song: TypeId,
    pub organization: TypeId,
    pub place: TypeId,
    pub team: TypeId,
    pub occupation: TypeId,
    pub genre: TypeId,
}

/// Handles to the standard ontology's predicates.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // names are self-describing predicate handles
pub struct PredIds {
    // Relational facts (embedding-relevant).
    pub occupation: PredicateId,
    pub spouse: PredicateId,
    pub born_in: PredicateId,
    pub lives_in: PredicateId,
    pub works_for: PredicateId,
    pub member_of: PredicateId,
    pub directed_by: PredicateId,
    pub starring: PredicateId,
    pub performed_by: PredicateId,
    pub genre: PredicateId,
    pub founded_by: PredicateId,
    pub headquarters: PredicateId,
    pub home_city: PredicateId,
    pub located_in: PredicateId,
    // Attribute facts.
    pub date_of_birth: PredicateId,
    pub release_date: PredicateId,
    pub founded_date: PredicateId,
    // Noise facts (filtered before embedding training).
    pub height_cm: PredicateId,
    pub net_worth: PredicateId,
    pub social_followers: PredicateId,
    pub library_id: PredicateId,
    pub runtime_minutes: PredicateId,
    pub population: PredicateId,
    /// Rare predicates: each appears on only a handful of triples.
    pub rare: Vec<PredicateId>,
}

/// Builds the standard open-domain ontology used across the workspace.
pub fn standard_ontology(rare_predicates: usize) -> (Ontology, TypeIds, PredIds) {
    let mut o = Ontology::new();
    let person = o.add_type("person", None);
    let types = TypeIds {
        person,
        athlete: o.add_type("athlete", Some(person)),
        academic: o.add_type("academic", Some(person)),
        musician: o.add_type("musician", Some(person)),
        actor: o.add_type("actor", Some(person)),
        movie: o.add_type("movie", None),
        song: o.add_type("song", None),
        organization: o.add_type("organization", None),
        place: o.add_type("place", None),
        team: o.add_type("team", None),
        occupation: o.add_type("occupation", None),
        genre: o.add_type("genre", None),
    };
    use Cardinality::{Multi, Single};
    use ValueKind as VK;
    use Volatility::{Fast, Slow, Stable};
    let p = |o: &mut Ontology,
             name: &str,
             phrase: &str,
             range: VK,
             dom: Option<TypeId>,
             card: Cardinality,
             vol: Volatility,
             noise: bool| o.add_predicate(name, phrase, range, dom, card, vol, noise);

    let preds = PredIds {
        occupation: p(
            &mut o,
            "occupation",
            "occupation",
            VK::Entity,
            Some(person),
            Multi,
            Slow,
            false,
        ),
        spouse: p(&mut o, "spouse", "spouse", VK::Entity, Some(person), Single, Slow, false),
        born_in: p(
            &mut o,
            "born_in",
            "place of birth",
            VK::Entity,
            Some(person),
            Single,
            Stable,
            false,
        ),
        lives_in: p(&mut o, "lives_in", "lives in", VK::Entity, Some(person), Single, Slow, false),
        works_for: p(
            &mut o,
            "works_for",
            "works for",
            VK::Entity,
            Some(person),
            Multi,
            Slow,
            false,
        ),
        member_of: p(
            &mut o,
            "member_of",
            "member of",
            VK::Entity,
            Some(person),
            Multi,
            Slow,
            false,
        ),
        directed_by: p(
            &mut o,
            "directed_by",
            "directed by",
            VK::Entity,
            Some(types.movie),
            Single,
            Stable,
            false,
        ),
        starring: p(
            &mut o,
            "starring",
            "starring",
            VK::Entity,
            Some(types.movie),
            Multi,
            Stable,
            false,
        ),
        performed_by: p(
            &mut o,
            "performed_by",
            "performed by",
            VK::Entity,
            Some(types.song),
            Single,
            Stable,
            false,
        ),
        genre: p(&mut o, "genre", "genre", VK::Entity, None, Multi, Stable, false),
        founded_by: p(
            &mut o,
            "founded_by",
            "founded by",
            VK::Entity,
            Some(types.organization),
            Multi,
            Stable,
            false,
        ),
        headquarters: p(
            &mut o,
            "headquarters",
            "headquarters",
            VK::Entity,
            Some(types.organization),
            Single,
            Slow,
            false,
        ),
        home_city: p(
            &mut o,
            "home_city",
            "home city",
            VK::Entity,
            Some(types.team),
            Single,
            Slow,
            false,
        ),
        located_in: p(
            &mut o,
            "located_in",
            "located in",
            VK::Entity,
            Some(types.place),
            Single,
            Stable,
            false,
        ),
        date_of_birth: p(
            &mut o,
            "date_of_birth",
            "date of birth",
            VK::Date,
            Some(person),
            Single,
            Stable,
            false,
        ),
        release_date: p(
            &mut o,
            "release_date",
            "release date",
            VK::Date,
            None,
            Single,
            Stable,
            false,
        ),
        founded_date: p(
            &mut o,
            "founded_date",
            "founded",
            VK::Date,
            Some(types.organization),
            Single,
            Stable,
            false,
        ),
        height_cm: p(
            &mut o,
            "height_cm",
            "height",
            VK::Integer,
            Some(person),
            Single,
            Stable,
            true,
        ),
        net_worth: p(
            &mut o,
            "net_worth",
            "net worth",
            VK::Integer,
            Some(person),
            Single,
            Fast,
            true,
        ),
        social_followers: p(
            &mut o,
            "social_followers",
            "social media followers",
            VK::Integer,
            Some(person),
            Single,
            Fast,
            true,
        ),
        library_id: p(
            &mut o,
            "library_id",
            "national library id",
            VK::Identifier,
            None,
            Single,
            Stable,
            true,
        ),
        runtime_minutes: p(
            &mut o,
            "runtime_minutes",
            "runtime",
            VK::Integer,
            Some(types.movie),
            Single,
            Stable,
            true,
        ),
        population: p(
            &mut o,
            "population",
            "population",
            VK::Integer,
            Some(types.place),
            Single,
            Slow,
            true,
        ),
        rare: (0..rare_predicates)
            .map(|i| {
                p(
                    &mut o,
                    &format!("rare_pred_{i}"),
                    &format!("rare relation {i}"),
                    VK::Entity,
                    None,
                    Multi,
                    Stable,
                    false,
                )
            })
            .collect(),
    };
    (o, types, preds)
}

/// Configuration for the synthetic KG generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(missing_docs)] // entity-count knobs; names are self-describing
pub struct SynthConfig {
    pub seed: u64,
    pub num_people: usize,
    pub num_movies: usize,
    pub num_songs: usize,
    pub num_orgs: usize,
    pub num_places: usize,
    pub num_teams: usize,
    /// Fraction of people that share a surface name with another person.
    pub homonym_fraction: f64,
    /// Number of rare predicates (each used ~2 times).
    pub rare_predicates: usize,
    /// Probability that a person gets each class of noise fact.
    pub noise_fact_rate: f64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            num_people: 2_000,
            num_movies: 600,
            num_songs: 800,
            num_orgs: 200,
            num_places: 150,
            num_teams: 60,
            homonym_fraction: 0.04,
            rare_predicates: 8,
            noise_fact_rate: 0.8,
        }
    }
}

impl SynthConfig {
    /// A small graph for fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            seed,
            num_people: 120,
            num_movies: 40,
            num_songs: 40,
            num_orgs: 20,
            num_places: 25,
            num_teams: 10,
            homonym_fraction: 0.05,
            rare_predicates: 4,
            noise_fact_rate: 0.8,
        }
    }
}

/// The generated graph plus ground-truth side information used by the
/// experiment harness.
#[derive(Debug)]
#[allow(missing_docs)] // per-type entity-id lists; names are self-describing
pub struct SynthKg {
    /// The generated graph.
    pub kg: KnowledgeGraph,
    pub types: TypeIds,
    pub preds: PredIds,
    pub people: Vec<EntityId>,
    pub movies: Vec<EntityId>,
    pub songs: Vec<EntityId>,
    pub orgs: Vec<EntityId>,
    pub places: Vec<EntityId>,
    pub teams: Vec<EntityId>,
    pub occupations: Vec<EntityId>,
    pub genres: Vec<EntityId>,
    /// Groups of entities sharing the same surface name.
    pub homonym_groups: Vec<Vec<EntityId>>,
    /// For each person with >1 occupation: occupations in ground-truth
    /// importance order (most important first).
    pub occupation_rank_truth: HashMap<EntityId, Vec<EntityId>>,
    /// The canonical worked examples from the paper.
    pub scenario: ScenarioEntities,
}

/// Entities wired to reproduce the paper's worked examples.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioEntities {
    /// Michael Jordan, the basketball player (Fig. 2).
    pub mj_player: EntityId,
    /// Michael Jordan, the professor (Fig. 2).
    pub mj_professor: EntityId,
    /// Michelle Williams, the music artist, DOB 1979-07-23 (Fig. 6).
    pub mw_singer: EntityId,
    /// Michelle Williams, the actress, DOB 1980-09-09 (Fig. 6).
    pub mw_actress: EntityId,
    /// Benicio del Toro (intro example).
    pub benicio: EntityId,
}

const FIRST_NAMES: &[&str] = &[
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael", "linda", "david",
    "elena", "william", "sofia", "richard", "ana", "joseph", "laura", "thomas", "karen", "carlos",
    "nancy", "daniel", "amara", "matthew", "keiko", "anthony", "priya", "mark", "fatima", "paulo",
    "ingrid", "steven", "chloe", "andrew", "yuki", "joshua", "leila", "kevin", "marta", "brian",
    "rosa", "george", "diana", "edward", "alice", "ronald", "grace", "timothy", "helen",
];
const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
    "walker",
    "young",
    "allen",
    "king",
    "wright",
    "scott",
    "torres",
    "nguyen",
    "hill",
    "flores",
    "green",
    "adams",
    "nelson",
    "baker",
    "hall",
    "rivera",
    "campbell",
    "mitchell",
    "carter",
    "roberts",
    "okafor",
    "kowalski",
    "haddad",
];
const PLACE_STEMS: &[&str] = &[
    "spring", "oak", "river", "lake", "stone", "maple", "cedar", "iron", "silver", "golden",
    "north", "east", "harbor", "crystal", "summit", "valley", "meadow", "aurora", "granite",
    "willow",
];
const PLACE_SUFFIXES: &[&str] =
    &["field", "ton", "ville", "burg", "port", "haven", "wood", "ford", "dale", "view"];
const MOVIE_ADJ: &[&str] = &[
    "silent",
    "crimson",
    "endless",
    "broken",
    "hidden",
    "burning",
    "frozen",
    "electric",
    "midnight",
    "golden",
    "savage",
    "quiet",
    "restless",
    "shattered",
    "velvet",
    "hollow",
];
const MOVIE_NOUN: &[&str] = &[
    "horizon",
    "empire",
    "garden",
    "shadow",
    "promise",
    "voyage",
    "reckoning",
    "symphony",
    "frontier",
    "labyrinth",
    "harvest",
    "covenant",
    "mirage",
    "cascade",
    "paradox",
    "winter",
];
const SONG_VERB: &[&str] = &[
    "dancing", "falling", "running", "dreaming", "waiting", "burning", "flying", "drifting",
    "singing", "breaking",
];
const SONG_TAIL: &[&str] = &[
    "in the rain",
    "without you",
    "tonight",
    "all over again",
    "under neon lights",
    "back home",
    "for the last time",
    "in slow motion",
    "past midnight",
    "on the highway",
];
const ORG_STEMS: &[&str] = &[
    "apex", "nova", "vertex", "quantum", "stellar", "cobalt", "meridian", "zenith", "atlas",
    "helios", "aurora", "titan", "vector", "lumen", "orbit",
];
const ORG_SUFFIXES: &[&str] = &[
    "labs",
    "industries",
    "systems",
    "media",
    "records",
    "studios",
    "group",
    "works",
    "dynamics",
    "institute",
];
const OCCUPATIONS: &[&str] = &[
    "basketball player",
    "professor",
    "singer",
    "actor",
    "film director",
    "writer",
    "politician",
    "software engineer",
    "chef",
    "painter",
    "journalist",
    "producer",
    "entrepreneur",
    "athlete",
    "composer",
];
const GENRES: &[&str] = &[
    "drama",
    "comedy",
    "thriller",
    "science fiction",
    "documentary",
    "pop",
    "rock",
    "jazz",
    "hip hop",
    "classical",
    "folk",
    "electronic",
];
const SPORTS: &[&str] = &["basketball", "baseball", "soccer", "hockey", "tennis"];

// Canonical popularity skew lives in `trace::zipf_popularity` so the serving
// load harness samples requests with exactly the skew the data was built
// with; re-exported here for the generation loops below.
use crate::trace::zipf_popularity;

/// Generates the synthetic KG. Deterministic in `cfg.seed`.
pub fn generate(cfg: &SynthConfig) -> SynthKg {
    let (ontology, types, preds) = standard_ontology(cfg.rare_predicates);
    let mut kg = KnowledgeGraph::new(ontology);
    let src = kg.register_source("synthetic");
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    // ---- leaf vocabulary entities -------------------------------------
    let occupations: Vec<EntityId> = OCCUPATIONS
        .iter()
        .map(|name| {
            kg.add_entity(
                EntityBuilder::new(*name, types.occupation)
                    .description(format!("the occupation of {name}"))
                    .popularity(0.5),
            )
        })
        .collect();
    let genres: Vec<EntityId> = GENRES
        .iter()
        .map(|name| {
            kg.add_entity(
                EntityBuilder::new(*name, types.genre)
                    .description(format!("the {name} genre"))
                    .popularity(0.5),
            )
        })
        .collect();

    // ---- places (with a containment hierarchy) ------------------------
    let mut places = Vec::with_capacity(cfg.num_places);
    let mut used_place_names = std::collections::HashSet::new();
    for i in 0..cfg.num_places {
        let mut name;
        loop {
            name = format!(
                "{}{}",
                PLACE_STEMS[rng.gen_range(0..PLACE_STEMS.len())],
                PLACE_SUFFIXES[rng.gen_range(0..PLACE_SUFFIXES.len())]
            );
            if used_place_names.insert(name.clone()) {
                break;
            }
            name.push_str(&format!(" {}", used_place_names.len()));
            if used_place_names.insert(name.clone()) {
                break;
            }
        }
        let pop = zipf_popularity(i, cfg.num_places);
        let id = kg.add_entity(
            EntityBuilder::new(titlecase(&name), types.place)
                .description(format!(
                    "a city known for its {} district",
                    PLACE_STEMS[i % PLACE_STEMS.len()]
                ))
                .popularity(pop),
        );
        places.push(id);
    }
    for (i, &pl) in places.iter().enumerate() {
        if i >= 10 {
            let parent = places[rng.gen_range(0..10)];
            kg.insert_with(Triple::new(pl, preds.located_in, parent), src, 1.0);
        }
        if rng.gen_bool(cfg.noise_fact_rate) {
            kg.insert_with(
                Triple::new(pl, preds.population, rng.gen_range(5_000i64..5_000_000)),
                src,
                1.0,
            );
        }
    }

    // ---- teams ---------------------------------------------------------
    let mut teams = Vec::with_capacity(cfg.num_teams);
    for i in 0..cfg.num_teams {
        let city = places[rng.gen_range(0..places.len())];
        let sport = SPORTS[i % SPORTS.len()];
        let city_name = kg.entity(city).name.clone();
        let mascot = MOVIE_NOUN[rng.gen_range(0..MOVIE_NOUN.len())];
        let name = format!("{} {}s", city_name, titlecase(mascot));
        let id = kg.add_entity(
            EntityBuilder::new(&name, types.team)
                .description(format!("a professional {sport} team based in {city_name}"))
                .popularity(zipf_popularity(i, cfg.num_teams)),
        );
        kg.insert_with(Triple::new(id, preds.home_city, city), src, 1.0);
        teams.push(id);
    }

    // ---- people ---------------------------------------------------------
    let mut people = Vec::with_capacity(cfg.num_people + 5);
    let mut name_to_people: HashMap<String, Vec<EntityId>> = HashMap::new();
    let mut occupation_rank_truth = HashMap::new();

    // The paper's worked-example entities come first so they always exist.
    let scenario = {
        let mj_player = kg.add_entity(
            EntityBuilder::new("Michael Jordan", types.athlete)
                .alias("MJ")
                .alias("Air Jordan")
                .description("legendary basketball player, six-time champion")
                .popularity(0.99),
        );
        let mj_professor = kg.add_entity(
            EntityBuilder::new("Michael Jordan", types.academic)
                .description("professor of machine learning and statistics")
                .popularity(0.60),
        );
        let mw_singer = kg.add_entity(
            EntityBuilder::new("Michelle Williams", types.musician)
                .description("music artist and singer, member of a famous pop group")
                .popularity(0.70),
        );
        let mw_actress = kg.add_entity(
            EntityBuilder::new("Michelle Williams", types.actor)
                .description("award-winning film and television actress")
                .popularity(0.75),
        );
        let benicio = kg.add_entity(
            EntityBuilder::new("Benicio del Toro", types.actor)
                .alias("Benicio Del Toro")
                .description("acclaimed film actor and director")
                .popularity(0.85),
        );
        let bball = occupations[0]; // "basketball player"
        let prof = occupations[1]; // "professor"
        let singer = occupations[2]; // "singer"
        let actor = occupations[3]; // "actor"
        let director = occupations[4]; // "film director"
        kg.insert_with(Triple::new(mj_player, preds.occupation, bball), src, 1.0);
        kg.insert_with(Triple::new(mj_player, preds.member_of, teams[0]), src, 1.0);
        kg.insert_with(
            Triple::new(mj_player, preds.date_of_birth, Date::new(1963, 2, 17).unwrap()),
            src,
            1.0,
        );
        kg.insert_with(Triple::new(mj_professor, preds.occupation, prof), src, 1.0);
        kg.insert_with(Triple::new(mw_singer, preds.occupation, singer), src, 1.0);
        // NOTE: mw_singer's DOB (1979-07-23) is deliberately NOT inserted —
        // recovering it is the Fig. 6 ODKE scenario.
        kg.insert_with(Triple::new(mw_actress, preds.occupation, actor), src, 1.0);
        kg.insert_with(
            Triple::new(mw_actress, preds.date_of_birth, Date::new(1980, 9, 9).unwrap()),
            src,
            1.0,
        );
        kg.insert_with(Triple::new(benicio, preds.occupation, actor), src, 1.0);
        kg.insert_with(Triple::new(benicio, preds.occupation, director), src, 1.0);
        occupation_rank_truth.insert(benicio, vec![actor, director]);
        for &e in &[mj_player, mj_professor, mw_singer, mw_actress, benicio] {
            people.push(e);
            name_to_people.entry(kg.entity(e).name.to_lowercase()).or_default().push(e);
        }
        ScenarioEntities { mj_player, mj_professor, mw_singer, mw_actress, benicio }
    };

    let homonym_target = (cfg.num_people as f64 * cfg.homonym_fraction) as usize;
    for i in 0..cfg.num_people {
        let reuse_name = i > 0 && i <= homonym_target * 2 && i % 2 == 1;
        let name = if reuse_name {
            // Reuse the previous person's name to form a homonym pair.
            kg.entity(*people.last().unwrap()).name.clone()
        } else {
            format!(
                "{} {}",
                titlecase(FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())]),
                titlecase(LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())])
            )
        };
        let sub = match rng.gen_range(0..5) {
            0 => types.athlete,
            1 => types.academic,
            2 => types.musician,
            3 => types.actor,
            _ => types.person,
        };
        let n_occ =
            1 + (rng.gen_range(0..100) < 30) as usize + (rng.gen_range(0..100) < 10) as usize;
        let mut occs: Vec<EntityId> = Vec::new();
        while occs.len() < n_occ {
            let o = occupations[rng.gen_range(0..occupations.len())];
            if !occs.contains(&o) {
                occs.push(o);
            }
        }
        let occ_desc = kg.entity(occs[0]).name.clone();
        let pop = zipf_popularity(i, cfg.num_people) * rng.gen_range(0.5..1.0);
        let first = name.split(' ').next().unwrap_or(&name).to_owned();
        let mut builder = EntityBuilder::new(&name, sub)
            .description(format!("a well known {occ_desc}"))
            .popularity(pop);
        if rng.gen_bool(0.3) {
            builder = builder.alias(first);
        }
        let id = kg.add_entity(builder);
        people.push(id);
        name_to_people.entry(name.to_lowercase()).or_default().push(id);

        // Occupations: ranked ground truth = insertion order (first is the
        // "primary" one referenced by the description).
        for &o in &occs {
            kg.insert_with(Triple::new(id, preds.occupation, o), src, 1.0);
        }
        if occs.len() > 1 {
            occupation_rank_truth.insert(id, occs.clone());
        }

        // Core relational facts.
        let dob = Date::new(
            rng.gen_range(1930..2005),
            rng.gen_range(1..=12) as u8,
            rng.gen_range(1..=28) as u8,
        )
        .unwrap();
        kg.insert_with(Triple::new(id, preds.date_of_birth, dob), src, 1.0);
        let birthplace = places[rng.gen_range(0..places.len())];
        kg.insert_with(Triple::new(id, preds.born_in, birthplace), src, 1.0);
        if rng.gen_bool(0.7) {
            kg.insert_with(
                Triple::new(id, preds.lives_in, places[rng.gen_range(0..places.len())]),
                src,
                1.0,
            );
        }
        if sub == types.athlete {
            kg.insert_with(
                Triple::new(id, preds.member_of, teams[rng.gen_range(0..teams.len())]),
                src,
                1.0,
            );
        }
        // Spouses: link to a previous person occasionally (symmetric pair).
        if people.len() > 10 && rng.gen_bool(0.25) {
            let other = people[rng.gen_range(0..people.len() - 1)];
            if other != id && kg.objects(other, preds.spouse).is_empty() {
                kg.insert_with(Triple::new(id, preds.spouse, other), src, 1.0);
                kg.insert_with(Triple::new(other, preds.spouse, id), src, 1.0);
            }
        }
        // Noise facts.
        if rng.gen_bool(cfg.noise_fact_rate) {
            kg.insert_with(Triple::new(id, preds.height_cm, rng.gen_range(150i64..210)), src, 1.0);
        }
        if rng.gen_bool(cfg.noise_fact_rate * 0.5) {
            kg.insert_with(
                Triple::new(id, preds.net_worth, rng.gen_range(10_000i64..1_000_000_000)),
                src,
                1.0,
            );
        }
        if rng.gen_bool(cfg.noise_fact_rate * 0.6) {
            kg.insert_with(
                Triple::new(id, preds.social_followers, rng.gen_range(100i64..90_000_000)),
                src,
                1.0,
            );
        }
        if rng.gen_bool(cfg.noise_fact_rate * 0.4) {
            kg.insert_with(
                Triple::new(
                    id,
                    preds.library_id,
                    Value::Identifier(format!("NL{:08}", rng.gen::<u32>())),
                ),
                src,
                1.0,
            );
        }
    }

    // ---- organizations ---------------------------------------------------
    let mut orgs = Vec::with_capacity(cfg.num_orgs);
    for i in 0..cfg.num_orgs {
        let name = format!(
            "{} {}",
            titlecase(ORG_STEMS[rng.gen_range(0..ORG_STEMS.len())]),
            titlecase(ORG_SUFFIXES[rng.gen_range(0..ORG_SUFFIXES.len())])
        );
        let hq = places[rng.gen_range(0..places.len())];
        let id = kg.add_entity(
            EntityBuilder::new(format!("{name} {i}"), types.organization)
                .alias(name.clone())
                .description(format!("an organization headquartered in {}", kg.entity(hq).name))
                .popularity(zipf_popularity(i, cfg.num_orgs)),
        );
        kg.insert_with(Triple::new(id, preds.headquarters, hq), src, 1.0);
        kg.insert_with(
            Triple::new(id, preds.founded_by, people[rng.gen_range(0..people.len())]),
            src,
            1.0,
        );
        let fd = Date::new(rng.gen_range(1900..2020), rng.gen_range(1..=12) as u8, 1).unwrap();
        kg.insert_with(Triple::new(id, preds.founded_date, fd), src, 1.0);
        orgs.push(id);
    }
    // Employment edges.
    for &person in people.iter() {
        if rng.gen_bool(0.5) && !orgs.is_empty() {
            kg.insert_with(
                Triple::new(person, preds.works_for, orgs[rng.gen_range(0..orgs.len())]),
                src,
                1.0,
            );
        }
    }

    // ---- movies -----------------------------------------------------------
    let mut movies = Vec::with_capacity(cfg.num_movies);
    let actor_pool: Vec<EntityId> = people.iter().copied().collect();
    for i in 0..cfg.num_movies {
        let title = format!(
            "The {} {}",
            titlecase(MOVIE_ADJ[rng.gen_range(0..MOVIE_ADJ.len())]),
            titlecase(MOVIE_NOUN[rng.gen_range(0..MOVIE_NOUN.len())])
        );
        let title =
            if rng.gen_bool(0.35) { format!("{title} {}", rng.gen_range(2..4)) } else { title };
        // Benicio directs/stars in the first few movies (intro example).
        let director =
            if i < 4 { scenario.benicio } else { actor_pool[rng.gen_range(0..actor_pool.len())] };
        let id = kg.add_entity(
            EntityBuilder::new(&title, types.movie)
                .description(format!("a film directed by {}", kg.entity(director).name))
                .popularity(zipf_popularity(i, cfg.num_movies)),
        );
        kg.insert_with(Triple::new(id, preds.directed_by, director), src, 1.0);
        let n_cast = rng.gen_range(2..6);
        for _ in 0..n_cast {
            let a = actor_pool[rng.gen_range(0..actor_pool.len())];
            kg.insert_with(Triple::new(id, preds.starring, a), src, 1.0);
        }
        if i < 4 {
            kg.insert_with(Triple::new(id, preds.starring, scenario.mw_actress), src, 1.0);
        }
        kg.insert_with(
            Triple::new(id, preds.genre, genres[rng.gen_range(0..genres.len())]),
            src,
            1.0,
        );
        let rd = Date::new(
            rng.gen_range(1960..2023),
            rng.gen_range(1..=12) as u8,
            rng.gen_range(1..=28) as u8,
        )
        .unwrap();
        kg.insert_with(Triple::new(id, preds.release_date, rd), src, 1.0);
        if rng.gen_bool(cfg.noise_fact_rate) {
            kg.insert_with(
                Triple::new(id, preds.runtime_minutes, rng.gen_range(70i64..200)),
                src,
                1.0,
            );
        }
        movies.push(id);
    }

    // ---- songs --------------------------------------------------------------
    let mut songs = Vec::with_capacity(cfg.num_songs);
    for i in 0..cfg.num_songs {
        let title = format!(
            "{} {}",
            titlecase(SONG_VERB[rng.gen_range(0..SONG_VERB.len())]),
            SONG_TAIL[rng.gen_range(0..SONG_TAIL.len())]
        );
        let performer =
            if i < 3 { scenario.mw_singer } else { actor_pool[rng.gen_range(0..actor_pool.len())] };
        let id = kg.add_entity(
            EntityBuilder::new(titlecase(&title), types.song)
                .description(format!("a song by {}", kg.entity(performer).name))
                .popularity(zipf_popularity(i, cfg.num_songs)),
        );
        kg.insert_with(Triple::new(id, preds.performed_by, performer), src, 1.0);
        kg.insert_with(
            Triple::new(id, preds.genre, genres[rng.gen_range(5..genres.len())]),
            src,
            1.0,
        );
        let rd = Date::new(
            rng.gen_range(1960..2023),
            rng.gen_range(1..=12) as u8,
            rng.gen_range(1..=28) as u8,
        )
        .unwrap();
        kg.insert_with(Triple::new(id, preds.release_date, rd), src, 1.0);
        songs.push(id);
    }

    // ---- rare predicates: ~2 uses each -------------------------------------
    for &rp in &preds.rare {
        for _ in 0..2 {
            let a = people[rng.gen_range(0..people.len())];
            let b = people[rng.gen_range(0..people.len())];
            if a != b {
                kg.insert_with(Triple::new(a, rp, b), src, 1.0);
            }
        }
    }

    kg.commit();

    let homonym_groups: Vec<Vec<EntityId>> =
        name_to_people.into_values().filter(|v| v.len() > 1).collect();

    SynthKg {
        kg,
        types,
        preds,
        people,
        movies,
        songs,
        orgs,
        places,
        teams,
        occupations,
        genres,
        homonym_groups,
        occupation_rank_truth,
        scenario,
    }
}

/// Title-cases each whitespace-separated word.
pub fn titlecase(s: &str) -> String {
    s.split_whitespace()
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SynthConfig::tiny(42));
        let b = generate(&SynthConfig::tiny(42));
        assert_eq!(a.kg.num_triples(), b.kg.num_triples());
        assert_eq!(a.kg.num_entities(), b.kg.num_entities());
        let ta: Vec<_> = a.kg.keys().to_vec();
        let tb: Vec<_> = b.kg.keys().to_vec();
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SynthConfig::tiny(1));
        let b = generate(&SynthConfig::tiny(2));
        assert_ne!(a.kg.keys(), b.kg.keys());
    }

    #[test]
    fn scenario_entities_are_wired() {
        let s = generate(&SynthConfig::tiny(7));
        let kg = &s.kg;
        assert_eq!(kg.entity(s.scenario.mj_player).name, "Michael Jordan");
        assert_eq!(kg.entity(s.scenario.mj_professor).name, "Michael Jordan");
        assert_ne!(s.scenario.mj_player, s.scenario.mj_professor);
        // Fig. 6: the singer's DOB is missing, the actress's present.
        assert!(kg.object(s.scenario.mw_singer, s.preds.date_of_birth).is_none());
        assert_eq!(
            kg.object(s.scenario.mw_actress, s.preds.date_of_birth),
            Some(Value::Date(Date::new(1980, 9, 9).unwrap()))
        );
        // Benicio has movies.
        let directed = kg.subjects_with(s.preds.directed_by, &Value::Entity(s.scenario.benicio));
        assert!(directed.len() >= 4);
    }

    #[test]
    fn homonyms_exist() {
        let s = generate(&SynthConfig::tiny(7));
        assert!(!s.homonym_groups.is_empty());
        for group in &s.homonym_groups {
            let names: Vec<_> = group.iter().map(|&e| s.kg.entity(e).name.to_lowercase()).collect();
            assert!(names.windows(2).all(|w| w[0] == w[1]), "group shares a name");
        }
    }

    #[test]
    fn noise_and_rare_predicates_present() {
        let s = generate(&SynthConfig::tiny(7));
        let noisy = s.kg.triples_with_predicate(s.preds.height_cm).count();
        assert!(noisy > 0, "noise facts generated");
        let mut rare_total = 0;
        for &rp in &s.preds.rare {
            rare_total += s.kg.triples_with_predicate(rp).count();
        }
        assert!(rare_total > 0 && rare_total <= s.preds.rare.len() * 2);
    }

    #[test]
    fn store_invariants_hold_after_generation() {
        let s = generate(&SynthConfig::tiny(9));
        s.kg.check_invariants().unwrap();
        assert!(s.kg.num_triples() > 500);
    }

    #[test]
    fn occupation_rank_truth_matches_store() {
        let s = generate(&SynthConfig::tiny(7));
        assert!(!s.occupation_rank_truth.is_empty());
        for (&person, occs) in &s.occupation_rank_truth {
            let stored = s.kg.objects(person, s.preds.occupation);
            assert_eq!(stored.len(), occs.len());
            for o in occs {
                assert!(stored.contains(&Value::Entity(*o)));
            }
        }
    }

    #[test]
    fn titlecase_works() {
        assert_eq!(titlecase("hello world"), "Hello World");
        assert_eq!(titlecase(""), "");
    }
}
