//! Shared text utilities: tokenization, normalization, stable hashing and
//! hashed bag-of-words feature embeddings.
//!
//! Lives in `saga-core` because both the web-corpus substrate and the
//! annotation service must tokenize identically — a mismatch would silently
//! destroy mention recall.

use serde::{Deserialize, Serialize};

/// A token with its byte span in the original text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Normalized (lowercased, diacritic-folded) token text.
    pub text: String,
    /// Byte offset of the token start in the source string.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
}

/// Folds a char to its normalized form: lowercase, common Latin diacritics
/// stripped (a cheap multilingual-friendly normalization; paper Sec. 3.1
/// "Variety" motivates handling mixed-language text).
fn fold_char(c: char) -> Option<char> {
    let c = c.to_lowercase().next().unwrap_or(c);
    let folded = match c {
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' => 'a',
        'è' | 'é' | 'ê' | 'ë' => 'e',
        'ì' | 'í' | 'î' | 'ï' => 'i',
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' => 'o',
        'ù' | 'ú' | 'û' | 'ü' => 'u',
        'ç' => 'c',
        'ñ' => 'n',
        other => other,
    };
    if folded.is_alphanumeric() {
        Some(folded)
    } else {
        None
    }
}

/// Tokenizes `text` into normalized alphanumeric tokens with byte spans.
/// Apostrophes inside words are treated as separators (`"I've"` →
/// `["i", "ve"]`), matching how the alias table is built.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match fold_char(c) {
            Some(f) => {
                if cur.is_empty() {
                    start = i;
                }
                cur.push(f);
            }
            None => {
                if !cur.is_empty() {
                    tokens.push(Token { text: std::mem::take(&mut cur), start, end: i });
                }
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(Token { text: cur, start, end: text.len() });
    }
    tokens
}

/// Normalizes a phrase to its token-joined form (`"Michael  JORDAN!"` →
/// `"michael jordan"`). Used to key alias tables.
pub fn normalize_phrase(text: &str) -> String {
    let toks = tokenize(text);
    let mut out = String::new();
    for (i, t) in toks.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

/// Stable 64-bit FNV-1a hash. We need determinism across runs and platforms
/// (the default `std` hasher is randomly seeded), both for feature hashing
/// and for reproducible synthetic data.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash of a string with a seed, for deriving independent hash families.
pub fn seeded_hash(s: &str, seed: u64) -> u64 {
    fnv1a(&[&seed.to_le_bytes()[..], s.as_bytes()].concat())
}

/// Hashed bag-of-words embedding: each token hashes to a dimension and a
/// deterministic ±1 sign; the result is L2-normalized. This is our
/// from-scratch stand-in for a learned text encoder — it preserves the
/// property the contextual reranker needs: similar token bags map to nearby
/// vectors.
pub fn hash_embed(tokens: &[&str], dim: usize) -> Vec<f32> {
    assert!(dim > 0, "embedding dimension must be positive");
    let mut v = vec![0.0f32; dim];
    for t in tokens {
        let h = seeded_hash(t, 0x5eed);
        let idx = (h % dim as u64) as usize;
        let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        v[idx] += sign;
    }
    let norm = crate::kernels::l2_norm(&v);
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Cosine similarity between two equal-length vectors (0.0 for zero
/// vectors). Thin alias for [`crate::kernels::cosine`], kept so text-side
/// callers need only this module.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    crate::kernels::cosine(a, b)
}

/// Jaccard similarity of two token sets, a cheap lexical name-match feature.
pub fn jaccard(a: &str, b: &str) -> f32 {
    use std::collections::HashSet;
    let sa: HashSet<String> = tokenize(a).into_iter().map(|t| t.text).collect();
    let sb: HashSet<String> = tokenize(b).into_iter().map(|t| t.text).collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basic_spans() {
        let toks = tokenize("Michael Jordan stats");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].text, "michael");
        assert_eq!(&"Michael Jordan stats"[toks[1].start..toks[1].end], "Jordan");
    }

    #[test]
    fn tokenize_folds_case_and_diacritics() {
        let toks = tokenize("Beyoncé CAFÉ");
        assert_eq!(toks[0].text, "beyonce");
        assert_eq!(toks[1].text, "cafe");
    }

    #[test]
    fn tokenize_splits_punctuation_and_apostrophes() {
        let toks = tokenize("I've added comments — to the SIGMOD draft!");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["i", "ve", "added", "comments", "to", "the", "sigmod", "draft"]);
    }

    #[test]
    fn tokenize_empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn normalize_phrase_canonicalizes() {
        assert_eq!(normalize_phrase("  Michael   JORDAN! "), "michael jordan");
        assert_eq!(normalize_phrase("Beyoncé"), "beyonce");
    }

    #[test]
    fn fnv_is_stable() {
        // Regression pin: the value must never change across runs/builds.
        assert_eq!(fnv1a(b"saga"), fnv1a(b"saga"));
        assert_ne!(fnv1a(b"saga"), fnv1a(b"sage"));
        assert_eq!(seeded_hash("x", 1) == seeded_hash("x", 2), false);
    }

    #[test]
    fn hash_embed_is_normalized_and_similarity_behaves() {
        let a = hash_embed(&["basketball", "player", "nba"], 64);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        let b = hash_embed(&["basketball", "player", "chicago"], 64);
        let c = hash_embed(&["machine", "learning", "professor"], 64);
        assert!(cosine(&a, &b) > cosine(&a, &c));
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn jaccard_name_similarity() {
        assert!((jaccard("Michael Jordan", "michael jordan") - 1.0).abs() < 1e-6);
        assert!(jaccard("Michael Jordan", "Michael Jeffrey Jordan") > 0.5);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("abc", ""), 0.0);
    }
}
