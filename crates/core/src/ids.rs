//! Strongly-typed identifiers and string interning.
//!
//! Every id is a newtype over an integer so that entity ids, predicate ids,
//! type ids and source ids can never be confused at compile time. Ids are
//! dense (allocated sequentially), which lets downstream systems (embedding
//! tables, adjacency structures) use them directly as array offsets.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $repr:ty) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value of this id.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Returns the id as a usize, suitable for indexing dense arrays.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl crate::persist::codec::BinCodec for $name {
            fn enc(&self, out: &mut Vec<u8>) {
                crate::persist::codec::BinCodec::enc(&self.0, out)
            }
            fn dec(
                rd: &mut crate::persist::codec::Reader<'_>,
            ) -> crate::error::Result<Self> {
                Ok($name(crate::persist::codec::BinCodec::dec(rd)?))
            }
        }
    };
}

define_id!(
    /// Identifier of an entity (node) in the knowledge graph.
    EntityId,
    u64
);
define_id!(
    /// Identifier of a predicate (edge label) in the knowledge graph.
    PredicateId,
    u32
);
define_id!(
    /// Identifier of an entity type in the ontology.
    TypeId,
    u32
);
define_id!(
    /// Identifier of a data source (provenance).
    SourceId,
    u32
);
define_id!(
    /// Identifier of an interned literal value.
    LiteralId,
    u64
);
define_id!(
    /// Identifier of a web document linked to the KG.
    DocId,
    u64
);

/// A string interner mapping strings to dense `u32` symbols and back.
///
/// Invariant: `lookup(intern(s)) == s` and `intern` is injective over distinct
/// strings. Symbols are allocated densely starting at 0.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Interner {
    strings: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, u32>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its symbol. Re-interning returns the same symbol.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.index.get(s) {
            return sym;
        }
        let sym = u32::try_from(self.strings.len()).expect("interner overflow");
        self.strings.push(s.to_owned());
        self.index.insert(s.to_owned(), sym);
        sym
    }

    /// Returns the symbol for `s` if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: u32) -> &str {
        &self.strings[sym as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Rebuilds the reverse index after deserialization (the index is not
    /// serialized to keep snapshots compact).
    pub fn rebuild_index(&mut self) {
        self.index = self.strings.iter().enumerate().map(|(i, s)| (s.clone(), i as u32)).collect();
    }

    /// Iterates over `(symbol, string)` pairs in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings.iter().enumerate().map(|(i, s)| (i as u32, s.as_str()))
    }
}

impl crate::persist::codec::BinCodec for Interner {
    fn enc(&self, out: &mut Vec<u8>) {
        self.strings.enc(out);
    }
    fn dec(rd: &mut crate::persist::codec::Reader<'_>) -> crate::error::Result<Self> {
        let mut interner =
            Interner { strings: crate::persist::codec::BinCodec::dec(rd)?, index: HashMap::new() };
        interner.rebuild_index();
        Ok(interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_and_display() {
        let e = EntityId(7);
        assert_eq!(e.raw(), 7);
        assert_eq!(e.index(), 7);
        assert_eq!(e.to_string(), "EntityId(7)");
        let p = PredicateId(3);
        assert_eq!(p.to_string(), "PredicateId(3)");
    }

    #[test]
    fn interner_round_trips() {
        let mut i = Interner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        let a2 = i.intern("alpha");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "alpha");
        assert_eq!(i.resolve(b), "beta");
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("alpha"), Some(a));
        assert_eq!(i.get("gamma"), None);
    }

    #[test]
    fn interner_rebuild_index_after_clone_without_index() {
        let mut i = Interner::new();
        i.intern("x");
        i.intern("y");
        let json = serde_json::to_string(&i).unwrap();
        let mut back: Interner = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.get("x"), i.get("x"));
        assert_eq!(back.get("y"), i.get("y"));
        assert_eq!(back.intern("x"), i.get("x").unwrap());
    }

    #[test]
    fn interner_iter_in_allocation_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let pairs: Vec<_> = i.iter().map(|(s, v)| (s, v.to_owned())).collect();
        assert_eq!(pairs, vec![(0, "a".to_owned()), (1, "b".to_owned())]);
    }
}
