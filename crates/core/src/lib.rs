//! # saga-core
//!
//! The knowledge-graph data model and triple store underlying our
//! reproduction of *Growing and Serving Large Open-domain Knowledge Graphs*
//! (SIGMOD-Companion 2023).
//!
//! This crate provides:
//! - strongly-typed ids and string interning ([`ids`]);
//! - triples, typed literal values and provenance ([`triple`], [`value`],
//!   [`literal`]);
//! - a unified ontology with predicate metadata driving fact filtering and
//!   coverage profiling ([`ontology`]);
//! - a commit-based triple store with SPO/POS/OSP covering indexes and
//!   change deltas ([`store`]);
//! - the shared incremental-growth contract — page/entity dirty sets
//!   pulled through monotone cursors with `Lapsed → full-rebuild`
//!   fallback ([`delta`]);
//! - checksummed binary persistence frames, a torn-tail-recovering
//!   write-ahead log, and a crash-safe MVCC storage engine with a durable
//!   change cursor ([`persist`], [`persist::engine`], [`persist::kg`]);
//! - deterministic fault injection, retry/backoff, retry budgets and
//!   circuit breakers over a virtual clock ([`fault`]);
//! - shared text utilities — tokenizer, stable hashing, hashed feature
//!   embeddings ([`text`]);
//! - unrolled dense-vector kernels shared by every scoring hot path
//!   ([`kernels`]);
//! - the unified observability substrate — sharded counters, log2 latency
//!   histograms, span timers and deterministic metric snapshots ([`obs`]);
//! - a deterministic synthetic open-domain KG generator standing in for the
//!   paper's production graph ([`synth`]);
//! - deterministic Zipfian request traces for the serving load harness
//!   ([`trace`]);
//! - a persistent worker pool so serving fan-out spawns zero threads in
//!   steady state ([`pool`]).

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod delta;
pub mod entity;
pub mod error;
pub mod fault;
pub mod ids;
pub mod kernels;
pub mod literal;
pub mod obs;
pub mod ontology;
pub mod persist;
pub mod pool;
pub mod store;
pub mod synth;
pub mod text;
pub mod trace;
pub mod triple;
pub mod value;

pub use delta::{record_lapse, DeltaBatch, DeltaCursor, DeltaPull, DELTA_SCOPE};
pub use entity::{EntityBuilder, EntityRecord};
pub use error::{Result, SagaError};
pub use fault::{
    crash_matrix, unit_hash, BreakerConfig, BreakerSet, CircuitBreaker, CrashMatrixReport,
    FaultInjector, FaultKind, FaultPlan, KillMode, KillSwitch, RetryBudget, RetryPolicy,
    SiteFaults, VirtualClock,
};
pub use ids::{DocId, EntityId, Interner, LiteralId, PredicateId, SourceId, TypeId};
pub use obs::{
    Clock, Counter, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry, Scope,
    SpanTimer, WallClock,
};
pub use ontology::{Cardinality, Ontology, PredicateInfo, TypeInfo, Volatility};
pub use persist::engine::{AppendOutcome, Engine, EngineChanges, EngineOptions, EngineStats};
pub use persist::kg::{Changes, GraphPin, KgStore, StoreTxn};
pub use store::{Delta, KnowledgeGraph};
pub use triple::{FactMeta, ObjKey, Triple, TripleKey};
pub use value::{Date, Value, ValueKind};
