//! Interning of literal values so index entries are fixed-width keys.

use crate::ids::LiteralId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Interns literal [`Value`]s into dense [`LiteralId`]s.
///
/// Equality is defined by the value's `(kind, canonical string)` pair, which
/// sidesteps `f64` not being `Hash`/`Eq` while keeping semantically equal
/// literals deduplicated.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct LiteralTable {
    values: Vec<Value>,
    #[serde(skip)]
    index: HashMap<String, LiteralId>,
}

fn key_of(v: &Value) -> String {
    // Kind discriminant prefixes the canonical form so `Text("3")` and
    // `Integer(3)` intern separately.
    format!("{:?}|{}", v.kind(), v.canonical())
}

impl LiteralTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `v`, returning a stable id. Entities must not be interned.
    ///
    /// # Panics
    /// Panics (debug) if `v` is `Value::Entity` — entity objects are encoded
    /// directly in [`crate::triple::ObjKey`].
    pub fn intern(&mut self, v: &Value) -> LiteralId {
        debug_assert!(v.as_entity().is_none(), "entities are not literals");
        let k = key_of(v);
        if let Some(&id) = self.index.get(&k) {
            return id;
        }
        let id = LiteralId(self.values.len() as u64);
        self.values.push(v.clone());
        self.index.insert(k, id);
        id
    }

    /// Returns the id of `v` if already interned, without inserting.
    pub fn get(&self, v: &Value) -> Option<LiteralId> {
        self.index.get(&key_of(v)).copied()
    }

    /// Resolves an id back to the value.
    pub fn resolve(&self, id: LiteralId) -> &Value {
        &self.values[id.index()]
    }

    /// Number of interned literals.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Rebuilds the lookup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index =
            self.values.iter().enumerate().map(|(i, v)| (key_of(v), LiteralId(i as u64))).collect();
    }
}

impl crate::persist::codec::BinCodec for LiteralTable {
    fn enc(&self, out: &mut Vec<u8>) {
        self.values.enc(out);
    }
    fn dec(rd: &mut crate::persist::codec::Reader<'_>) -> crate::error::Result<Self> {
        let mut table = LiteralTable { values: Vec::dec(rd)?, index: HashMap::new() };
        table.rebuild_index();
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Date;

    #[test]
    fn interning_deduplicates() {
        let mut t = LiteralTable::new();
        let a = t.intern(&Value::from("hello"));
        let b = t.intern(&Value::from("world"));
        let a2 = t.intern(&Value::from("hello"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), &Value::from("hello"));
    }

    #[test]
    fn kinds_do_not_collide() {
        let mut t = LiteralTable::new();
        let text = t.intern(&Value::from("3"));
        let int = t.intern(&Value::from(3i64));
        let ident = t.intern(&Value::Identifier("3".into()));
        assert_ne!(text, int);
        assert_ne!(text, ident);
    }

    #[test]
    fn dates_intern_by_value() {
        let mut t = LiteralTable::new();
        let d1 = t.intern(&Value::Date(Date::new(1979, 7, 23).unwrap()));
        let d2 = t.intern(&Value::Date(Date::parse("1979-07-23").unwrap()));
        assert_eq!(d1, d2);
    }

    #[test]
    fn rebuild_index_preserves_lookups() {
        let mut t = LiteralTable::new();
        let id = t.intern(&Value::from(42i64));
        let json = serde_json::to_string(&t).unwrap();
        let mut back: LiteralTable = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.get(&Value::from(42i64)), Some(id));
    }
}
