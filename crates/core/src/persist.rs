//! Checksummed binary framing for on-disk artifacts.
//!
//! Frame layout (little-endian):
//! ```text
//! [magic: 8 bytes "SAGAFRM1"] — file header, written once
//! repeated frames:
//!   [len: u32] [checksum: u64 = fnv1a(payload)] [payload: len bytes]
//! ```
//!
//! Invariants:
//! - a reader never returns a payload whose checksum does not match;
//! - a truncated trailing frame (torn write) is reported as `Corrupt`, and
//!   [`FrameReader::read_all_valid`] lets recovery paths keep every frame
//!   before the tear (used by on-device checkpoint recovery);
//! - library paths never panic: every fallible operation returns
//!   [`SagaError`] (enforced by the module-level `deny(clippy::unwrap_used)`).
//!
//! [`Wal`] builds an append-only write-ahead log on top of the framing:
//! opening a log replays every frame up to the last valid one and
//! truncates a torn or corrupt tail in place, so a process killed
//! mid-append resumes from a clean prefix instead of panicking.

#![deny(clippy::unwrap_used)]

use crate::error::{Result, SagaError};
use crate::text::fnv1a;
use bytes::{Buf, BufMut, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SAGAFRM1";
const HEADER_LEN: u64 = 12;

/// Encodes one `[len][checksum][payload]` frame into `w`.
fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut header = BytesMut::with_capacity(HEADER_LEN as usize);
    header.put_u32_le(u32::try_from(payload.len()).map_err(|_| {
        SagaError::InvalidArgument(format!("frame too large: {} bytes", payload.len()))
    })?);
    header.put_u64_le(fnv1a(payload));
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Appends checksummed frames to a file.
pub struct FrameWriter {
    inner: BufWriter<File>,
}

impl FrameWriter {
    /// Creates (truncating) a new frame file with the magic header.
    pub fn create(path: &Path) -> Result<Self> {
        let mut inner = BufWriter::new(File::create(path)?);
        inner.write_all(MAGIC)?;
        Ok(Self { inner })
    }

    /// Writes one payload as a frame.
    pub fn write(&mut self, payload: &[u8]) -> Result<()> {
        write_frame(&mut self.inner, payload)
    }

    /// Flushes buffered frames to the OS.
    pub fn flush(&mut self) -> Result<()> {
        self.inner.flush()?;
        Ok(())
    }
}

/// Reads checksummed frames from a file.
pub struct FrameReader {
    inner: BufReader<File>,
}

impl FrameReader {
    /// Opens a frame file, validating the magic header.
    pub fn open(path: &Path) -> Result<Self> {
        let mut inner = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        inner
            .read_exact(&mut magic)
            .map_err(|_| SagaError::Corrupt("missing file header".into()))?;
        if &magic != MAGIC {
            return Err(SagaError::Corrupt(format!("bad magic {magic:?}")));
        }
        Ok(Self { inner })
    }

    /// Reads the next frame. `Ok(None)` at clean EOF; `Err(Corrupt)` on a
    /// torn or checksum-failing frame.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>> {
        let mut header = [0u8; 12];
        let mut filled = 0usize;
        while filled < header.len() {
            let n = self.inner.read(&mut header[filled..])?;
            if n == 0 {
                return if filled == 0 {
                    Ok(None) // clean EOF on a frame boundary
                } else {
                    Err(SagaError::Corrupt("torn frame header".into()))
                };
            }
            filled += n;
        }
        let mut buf = &header[..];
        let len = buf.get_u32_le() as usize;
        let checksum = buf.get_u64_le();
        let mut payload = vec![0u8; len];
        self.inner
            .read_exact(&mut payload)
            .map_err(|_| SagaError::Corrupt("torn frame payload".into()))?;
        if fnv1a(&payload) != checksum {
            return Err(SagaError::Corrupt("checksum mismatch".into()));
        }
        Ok(Some(payload))
    }

    /// Reads all frames, stopping (without error) at the first corruption —
    /// crash-recovery semantics for append-only logs.
    pub fn read_all_valid(&mut self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        while let Ok(Some(f)) = self.next_frame() {
            out.push(f);
        }
        out
    }

    /// Reads all frames, propagating corruption as an error.
    pub fn read_all(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(f) = self.next_frame()? {
            out.push(f);
        }
        Ok(out)
    }
}

/// Serializes `value` as JSON inside a single checksummed frame.
pub fn save_artifact<T: Serialize>(path: &Path, value: &T) -> Result<()> {
    let payload = serde_json::to_vec(value)?;
    let mut w = FrameWriter::create(path)?;
    w.write(&payload)?;
    w.flush()
}

/// Loads a value previously written by [`save_artifact`].
pub fn load_artifact<T: DeserializeOwned>(path: &Path) -> Result<T> {
    let mut r = FrameReader::open(path)?;
    let payload =
        r.next_frame()?.ok_or_else(|| SagaError::Corrupt("artifact file has no frames".into()))?;
    Ok(serde_json::from_slice(&payload)?)
}

/// An append-only write-ahead log with crash recovery.
///
/// [`Wal::open`] replays every frame up to the last valid one and
/// *truncates* a torn or checksum-failing tail in place (the standard WAL
/// recovery contract: a record is durable once [`sync`](Self::sync)
/// returns, and a record half-written at the moment of a crash vanishes).
/// Subsequent [`append`](Self::append)s continue from the clean prefix.
pub struct Wal {
    inner: BufWriter<File>,
}

impl Wal {
    /// Opens (or creates) the log at `path`, returning the recovered
    /// payloads in append order. A file too short to hold the magic header
    /// (e.g. torn during creation) is reinitialized empty; a file with a
    /// *wrong* magic is rejected as [`SagaError::Corrupt`] rather than
    /// silently clobbered.
    pub fn open(path: &Path) -> Result<(Self, Vec<Vec<u8>>)> {
        let fresh = match std::fs::metadata(path) {
            Ok(m) => m.len() < MAGIC.len() as u64,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => true,
            Err(e) => return Err(e.into()),
        };
        if fresh {
            let mut inner = BufWriter::new(File::create(path)?);
            inner.write_all(MAGIC)?;
            inner.flush()?;
            return Ok((Self { inner }, Vec::new()));
        }

        // Replay the valid prefix, tracking its byte length so the torn
        // tail (if any) can be truncated away.
        let mut reader = FrameReader::open(path)?;
        let mut frames = Vec::new();
        let mut valid_len = MAGIC.len() as u64;
        loop {
            match reader.next_frame() {
                Ok(Some(payload)) => {
                    valid_len += HEADER_LEN + payload.len() as u64;
                    frames.push(payload);
                }
                Ok(None) => break,
                Err(_) => break, // torn/corrupt tail: recover to last valid frame
            }
        }
        drop(reader);

        let mut file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok((Self { inner: BufWriter::new(file) }, frames))
    }

    /// Appends one record. Durable only after the next [`sync`](Self::sync).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        write_frame(&mut self.inner, payload)
    }

    /// Flushes buffered records and syncs file data to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.inner.flush()?;
        self.inner.get_ref().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("saga-core-persist-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{}", std::process::id(), name))
    }

    #[test]
    fn frames_round_trip() {
        let p = tmp("roundtrip.bin");
        let mut w = FrameWriter::create(&p).unwrap();
        w.write(b"hello").unwrap();
        w.write(b"").unwrap();
        w.write(&[0u8; 1024]).unwrap();
        w.flush().unwrap();
        let mut r = FrameReader::open(&p).unwrap();
        let frames = r.read_all().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[0], b"hello");
        assert!(frames[1].is_empty());
        assert_eq!(frames[2].len(), 1024);
    }

    #[test]
    fn corrupted_payload_is_rejected() {
        let p = tmp("corrupt.bin");
        let mut w = FrameWriter::create(&p).unwrap();
        w.write(b"precious data").unwrap();
        w.flush().unwrap();
        drop(w);
        // Flip a payload byte.
        let mut f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.seek(SeekFrom::Start(8 + 12 + 2)).unwrap();
        f.write_all(&[0xFF]).unwrap();
        drop(f);
        let mut r = FrameReader::open(&p).unwrap();
        match r.next_frame() {
            Err(SagaError::Corrupt(m)) => assert!(m.contains("checksum")),
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn torn_tail_recovers_earlier_frames() {
        let p = tmp("torn.bin");
        let mut w = FrameWriter::create(&p).unwrap();
        w.write(b"frame-one").unwrap();
        w.write(b"frame-two-that-will-be-torn").unwrap();
        w.flush().unwrap();
        drop(w);
        let len = std::fs::metadata(&p).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 5).unwrap(); // tear the last frame
        drop(f);
        let mut r = FrameReader::open(&p).unwrap();
        let valid = r.read_all_valid();
        assert_eq!(valid, vec![b"frame-one".to_vec()]);
        // And the strict reader errors.
        let mut r2 = FrameReader::open(&p).unwrap();
        assert!(r2.next_frame().is_ok());
        assert!(matches!(r2.next_frame(), Err(SagaError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_is_rejected() {
        let p = tmp("badmagic.bin");
        std::fs::write(&p, b"NOTSAGA0 somepayload").unwrap();
        assert!(matches!(FrameReader::open(&p), Err(SagaError::Corrupt(_))));
    }

    #[test]
    fn artifact_round_trip() {
        let p = tmp("artifact.bin");
        let value = vec![("a".to_string(), 1u32), ("b".to_string(), 2)];
        save_artifact(&p, &value).unwrap();
        let back: Vec<(String, u32)> = load_artifact(&p).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn wal_round_trip_and_append_across_reopens() {
        let p = tmp("wal.bin");
        let _ = std::fs::remove_file(&p);
        let (mut wal, recovered) = Wal::open(&p).unwrap();
        assert!(recovered.is_empty());
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered, vec![b"one".to_vec(), b"two".to_vec()]);
        wal.append(b"three").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[2], b"three");
    }

    #[test]
    fn wal_recovers_to_last_valid_frame_on_torn_tail() {
        let p = tmp("wal-torn.bin");
        let _ = std::fs::remove_file(&p);
        let (mut wal, _) = Wal::open(&p).unwrap();
        wal.append(b"keep-me").unwrap();
        wal.append(b"torn-away").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Tear the last frame mid-payload.
        let len = std::fs::metadata(&p).unwrap().len();
        let f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.set_len(len - 4).unwrap();
        drop(f);
        // Recovery keeps the valid prefix and appends continue cleanly.
        let (mut wal, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered, vec![b"keep-me".to_vec()]);
        wal.append(b"after-recovery").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered, vec![b"keep-me".to_vec(), b"after-recovery".to_vec()]);
        // The strict reader agrees the file is clean again.
        let mut r = FrameReader::open(&p).unwrap();
        assert_eq!(r.read_all().unwrap().len(), 2);
    }

    #[test]
    fn wal_recovers_from_corrupt_tail_checksum() {
        let p = tmp("wal-corrupt.bin");
        let _ = std::fs::remove_file(&p);
        let (mut wal, _) = Wal::open(&p).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"bad-frame").unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a byte inside the second frame's payload.
        let len = std::fs::metadata(&p).unwrap().len();
        let mut f = std::fs::OpenOptions::new().write(true).open(&p).unwrap();
        f.seek(SeekFrom::Start(len - 2)).unwrap();
        f.write_all(&[0xEE]).unwrap();
        drop(f);
        let (_, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered, vec![b"good".to_vec()]);
    }

    #[test]
    fn wal_short_file_reinitializes_and_bad_magic_rejected() {
        let p = tmp("wal-short.bin");
        std::fs::write(&p, b"SAG").unwrap(); // torn during creation
        let (mut wal, recovered) = Wal::open(&p).unwrap();
        assert!(recovered.is_empty());
        wal.append(b"x").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, recovered) = Wal::open(&p).unwrap();
        assert_eq!(recovered, vec![b"x".to_vec()]);

        let q = tmp("wal-badmagic.bin");
        std::fs::write(&q, b"NOTSAGA0 somepayload").unwrap();
        assert!(matches!(Wal::open(&q), Err(SagaError::Corrupt(_))), "never clobber foreign data");
    }

    #[test]
    fn empty_file_is_clean_eof() {
        let p = tmp("empty.bin");
        let w = FrameWriter::create(&p).unwrap();
        drop(w);
        let mut r = FrameReader::open(&p).unwrap();
        assert!(r.next_frame().unwrap().is_none());
    }
}
