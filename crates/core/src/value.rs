//! Triple object values: entity references and typed literals.

use crate::ids::EntityId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple calendar date (proleptic Gregorian). The synthetic KG and the
/// extraction pipeline reason about dates (e.g. dates of birth, release
/// dates), so we carry a small dedicated type rather than strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // calendar components
pub struct Date {
    pub year: i32,
    pub month: u8,
    pub day: u8,
}

impl Date {
    /// Creates a date, validating month/day ranges (not full calendar rules).
    pub fn new(year: i32, month: u8, day: u8) -> Option<Self> {
        if !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut it = s.splitn(3, '-');
        let year: i32 = it.next()?.parse().ok()?;
        let month: u8 = it.next()?.parse().ok()?;
        let day: u8 = it.next()?.parse().ok()?;
        Self::new(year, month, day)
    }

    /// Days since year 0 approximation used for ordering/recency arithmetic.
    pub fn ordinal(&self) -> i64 {
        self.year as i64 * 372 + (self.month as i64 - 1) * 31 + (self.day as i64 - 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// The kind of a [`Value`], used by view definitions to filter literal
/// classes (e.g. drop numeric facts before embedding training, per Sec. 2 of
/// the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // tags mirror the `Value` variants
pub enum ValueKind {
    Entity,
    Text,
    Integer,
    Float,
    Date,
    Bool,
    Identifier,
}

/// The object position of a triple: either a reference to another entity or a
/// typed literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Reference to another KG entity.
    Entity(EntityId),
    /// Free-form text (names, descriptions).
    Text(String),
    /// Integer quantity (heights, counts, follower numbers...).
    Integer(i64),
    /// Floating point quantity.
    Float(f64),
    /// Calendar date.
    Date(Date),
    /// Boolean flag.
    Bool(bool),
    /// External identifier (e.g. a National Library ID); textual but opaque.
    Identifier(String),
}

impl Value {
    /// Returns the kind tag of this value.
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Entity(_) => ValueKind::Entity,
            Value::Text(_) => ValueKind::Text,
            Value::Integer(_) => ValueKind::Integer,
            Value::Float(_) => ValueKind::Float,
            Value::Date(_) => ValueKind::Date,
            Value::Bool(_) => ValueKind::Bool,
            Value::Identifier(_) => ValueKind::Identifier,
        }
    }

    /// Returns the referenced entity id if this value is an entity.
    pub fn as_entity(&self) -> Option<EntityId> {
        match self {
            Value::Entity(e) => Some(*e),
            _ => None,
        }
    }

    /// Returns the text if this value is textual (`Text` or `Identifier`).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) | Value::Identifier(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the date if this value is a date.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// A canonical display string, used for value equality in corroboration
    /// and for rendering synthetic web pages.
    pub fn canonical(&self) -> String {
        match self {
            Value::Entity(e) => format!("@{}", e.raw()),
            Value::Text(s) => s.clone(),
            Value::Integer(i) => i.to_string(),
            Value::Float(f) => format!("{f:.4}"),
            Value::Date(d) => d.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Identifier(s) => s.clone(),
        }
    }

    /// True if two values denote the same fact object, with tolerant float
    /// comparison (extraction may lose precision).
    pub fn same_as(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => (a - b).abs() < 1e-6 * a.abs().max(1.0),
            (Value::Float(a), Value::Integer(b)) | (Value::Integer(b), Value::Float(a)) => {
                (a - *b as f64).abs() < 1e-6
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.canonical())
    }
}

impl From<EntityId> for Value {
    fn from(e: EntityId) -> Self {
        Value::Entity(e)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Integer(i)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}
impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

mod codec_impls {
    use super::{Date, Value, ValueKind};
    use crate::error::{Result, SagaError};
    use crate::persist::codec::{BinCodec, Reader};

    impl BinCodec for Date {
        fn enc(&self, out: &mut Vec<u8>) {
            self.year.enc(out);
            self.month.enc(out);
            self.day.enc(out);
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            let (year, month, day) = (i32::dec(rd)?, u8::dec(rd)?, u8::dec(rd)?);
            Date::new(year, month, day).ok_or_else(|| {
                SagaError::Corrupt(format!("invalid date {year:04}-{month:02}-{day:02}"))
            })
        }
    }

    impl BinCodec for ValueKind {
        fn enc(&self, out: &mut Vec<u8>) {
            let tag: u8 = match self {
                ValueKind::Entity => 0,
                ValueKind::Text => 1,
                ValueKind::Integer => 2,
                ValueKind::Float => 3,
                ValueKind::Date => 4,
                ValueKind::Bool => 5,
                ValueKind::Identifier => 6,
            };
            out.push(tag);
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            Ok(match rd.u8()? {
                0 => ValueKind::Entity,
                1 => ValueKind::Text,
                2 => ValueKind::Integer,
                3 => ValueKind::Float,
                4 => ValueKind::Date,
                5 => ValueKind::Bool,
                6 => ValueKind::Identifier,
                b => return Err(SagaError::Corrupt(format!("invalid value-kind tag {b:#04x}"))),
            })
        }
    }

    impl BinCodec for Value {
        fn enc(&self, out: &mut Vec<u8>) {
            self.kind().enc(out);
            match self {
                Value::Entity(e) => e.enc(out),
                Value::Text(s) | Value::Identifier(s) => s.enc(out),
                Value::Integer(i) => i.enc(out),
                Value::Float(f) => f.enc(out),
                Value::Date(d) => d.enc(out),
                Value::Bool(b) => b.enc(out),
            }
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            Ok(match ValueKind::dec(rd)? {
                ValueKind::Entity => Value::Entity(BinCodec::dec(rd)?),
                ValueKind::Text => Value::Text(String::dec(rd)?),
                ValueKind::Integer => Value::Integer(i64::dec(rd)?),
                ValueKind::Float => Value::Float(f64::dec(rd)?),
                ValueKind::Date => Value::Date(Date::dec(rd)?),
                ValueKind::Bool => Value::Bool(bool::dec(rd)?),
                ValueKind::Identifier => Value::Identifier(String::dec(rd)?),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_parse_and_display_round_trip() {
        let d = Date::parse("1979-07-23").unwrap();
        assert_eq!(d, Date::new(1979, 7, 23).unwrap());
        assert_eq!(d.to_string(), "1979-07-23");
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(Date::new(2000, 0, 1).is_none());
        assert!(Date::new(2000, 13, 1).is_none());
        assert!(Date::new(2000, 1, 32).is_none());
        assert!(Date::parse("not-a-date").is_none());
        assert!(Date::parse("2000-01").is_none());
    }

    #[test]
    fn date_ordinal_orders_chronologically() {
        let a = Date::new(1979, 7, 23).unwrap();
        let b = Date::new(1980, 9, 9).unwrap();
        assert!(a.ordinal() < b.ordinal());
    }

    #[test]
    fn value_kinds_and_accessors() {
        assert_eq!(Value::Entity(EntityId(1)).kind(), ValueKind::Entity);
        assert_eq!(Value::from("x").kind(), ValueKind::Text);
        assert_eq!(Value::from(3i64).kind(), ValueKind::Integer);
        assert_eq!(Value::Identifier("Q42".into()).kind(), ValueKind::Identifier);
        assert_eq!(Value::Entity(EntityId(5)).as_entity(), Some(EntityId(5)));
        assert_eq!(Value::from("hi").as_text(), Some("hi"));
        assert_eq!(Value::from(1i64).as_entity(), None);
    }

    #[test]
    fn same_as_is_tolerant_for_floats() {
        assert!(Value::Float(1.0).same_as(&Value::Float(1.0 + 1e-9)));
        assert!(Value::Float(3.0).same_as(&Value::Integer(3)));
        assert!(!Value::Float(3.0).same_as(&Value::Integer(4)));
        assert!(Value::from("a").same_as(&Value::from("a")));
        assert!(!Value::from("a").same_as(&Value::from("b")));
    }

    #[test]
    fn canonical_strings() {
        assert_eq!(Value::Entity(EntityId(9)).canonical(), "@9");
        assert_eq!(Value::Date(Date::new(2020, 1, 2).unwrap()).canonical(), "2020-01-02");
        assert_eq!(Value::Bool(true).canonical(), "true");
    }
}
