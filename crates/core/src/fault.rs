//! Deterministic fault injection and resilience primitives.
//!
//! The production systems this repo reproduces run over unreliable
//! substrates: web search times out, document fetches 404, embedding
//! caches shed load, device links drop packets. This module provides the
//! shared vocabulary every pipeline uses to *test* and *survive* those
//! failures:
//!
//! - a **fault taxonomy** ([`FaultKind`]): `Transient` failures may clear
//!   on retry (timeouts, overload); `Permanent` failures never will (the
//!   resource is gone) and callers must quarantine or degrade;
//! - a seeded, purely-functional [`FaultPlan`] mapping *sites* (named
//!   operations such as `"search"` or `"fetch"`) to failure rates and
//!   latency classes. Decisions are a hash of `(seed, site, key, attempt)`
//!   — no hidden state — so runs are bit-reproducible regardless of thread
//!   interleaving;
//! - a [`FaultInjector`] wrapping a plan with per-site statistics and a
//!   [`VirtualClock`] that is charged simulated latency, so tests covering
//!   hours of backoff run in microseconds;
//! - a [`RetryPolicy`] with exponential backoff, deterministic jitter and
//!   a shared [`RetryBudget`];
//! - a per-site [`CircuitBreaker`] that stops hammering a failing
//!   dependency and half-opens after a cooldown.
//!
//! Errors surface as [`SagaError::Unavailable`]; `is_transient()` is the
//! single retry-eligibility predicate used across the workspace.

#![deny(clippy::unwrap_used)]

use crate::error::{Result, SagaError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------- clock

/// A shared virtual clock in milliseconds. All resilience primitives read
/// and advance this instead of the wall clock, making backoff and breaker
/// cooldowns deterministic and instantaneous under test.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock(Arc<AtomicU64>);

impl VirtualClock {
    /// A clock starting at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Advances the clock by `ms` (e.g. simulated latency or a backoff
    /// sleep) and returns the new time.
    pub fn advance_ms(&self, ms: u64) -> u64 {
        self.0.fetch_add(ms, Ordering::Relaxed) + ms
    }
}

// ------------------------------------------------------------- taxonomy

/// The two failure classes of the fault model (DESIGN.md §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// May succeed if retried: timeouts, overload, flaky transport.
    Transient,
    /// Will never succeed: the resource is gone. Retrying is wasted work;
    /// quarantine the target or degrade the tier instead.
    Permanent,
}

/// Failure rates and latency class of one site.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SiteFaults {
    /// Probability in `[0, 1]` that any single attempt fails transiently.
    /// Independent per attempt, so retries eventually clear it.
    pub transient_rate: f64,
    /// Probability in `[0, 1]` that a given key fails *permanently* at
    /// this site. Drawn once per `(site, key)` — every attempt fails.
    pub permanent_rate: f64,
    /// Simulated latency charged to the virtual clock per successful call.
    pub latency_ms: u64,
    /// Extra latency charged when a call faults (a timeout costs more than
    /// a fast answer).
    pub fault_latency_ms: u64,
}

impl SiteFaults {
    /// A purely-transient failure profile with default latencies.
    pub fn transient(rate: f64) -> Self {
        Self { transient_rate: rate, permanent_rate: 0.0, latency_ms: 1, fault_latency_ms: 10 }
    }

    /// A profile with both transient and permanent failures.
    pub fn mixed(transient_rate: f64, permanent_rate: f64) -> Self {
        Self { transient_rate, permanent_rate, latency_ms: 1, fault_latency_ms: 10 }
    }
}

/// A seeded, declarative description of where and how often faults occur.
/// Decisions are pure functions of `(seed, site, key, attempt)`: two plans
/// with the same seed and rates produce identical fault sequences, and a
/// plan consulted from eight worker threads behaves exactly like one
/// consulted sequentially.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<String, SiteFaults>,
}

/// SplitMix64 finalizer — decorrelates the combined decision hash.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a hash to a unit float in `[0, 1)` using the top 53 bits.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministic `[0, 1)` draw for `(seed, parts…)` — the same SplitMix64
/// mixing the fault plan uses, exposed for other deterministic failure
/// models (e.g. the on-device lossy sync link).
pub fn unit_hash(seed: u64, parts: &[u64]) -> f64 {
    let mut h = mix(seed);
    for &p in parts {
        h = mix(h ^ p);
    }
    unit(h)
}

impl FaultPlan {
    /// A plan with no faulty sites — every call succeeds.
    pub fn reliable(seed: u64) -> Self {
        Self { seed, sites: BTreeMap::new() }
    }

    /// Adds (or replaces) a site's failure profile.
    pub fn with_site(mut self, site: &str, faults: SiteFaults) -> Self {
        self.sites.insert(site.to_owned(), faults);
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Decides the outcome of attempt `attempt` of the operation identified
    /// by `key` at `site`. `None` means success. Deterministic: no state.
    pub fn decide(&self, site: &str, key: u64, attempt: u32) -> Option<FaultKind> {
        let faults = self.sites.get(site)?;
        let site_h = crate::text::fnv1a(site.as_bytes());
        if faults.permanent_rate > 0.0 {
            let h = mix(self.seed ^ site_h.rotate_left(17) ^ key.wrapping_mul(0x9e37));
            if unit(h) < faults.permanent_rate {
                return Some(FaultKind::Permanent);
            }
        }
        if faults.transient_rate > 0.0 {
            let h = mix(self.seed
                ^ site_h
                ^ key.wrapping_mul(0xff51_afd7_ed55_8ccd)
                ^ u64::from(attempt).rotate_left(43));
            if unit(h) < faults.transient_rate {
                return Some(FaultKind::Transient);
            }
        }
        None
    }

    /// Latency profile of a site (zeros for unlisted sites).
    pub fn latency(&self, site: &str) -> (u64, u64) {
        self.sites.get(site).map_or((0, 0), |f| (f.latency_ms, f.fault_latency_ms))
    }
}

// ------------------------------------------------------------- injector

/// Per-site observed fault counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SiteStats {
    /// Total calls checked.
    pub calls: u64,
    /// Calls that failed transiently.
    pub transient_faults: u64,
    /// Calls that failed permanently.
    pub permanent_faults: u64,
}

/// Applies a [`FaultPlan`] at runtime: charges latency to a shared
/// [`VirtualClock`], records per-site statistics, and reports faults as
/// [`SagaError::Unavailable`]. Thread-safe; decisions stay deterministic
/// because they come from the stateless plan.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    clock: VirtualClock,
    stats: Mutex<BTreeMap<String, SiteStats>>,
}

impl FaultInjector {
    /// Wraps a plan with a fresh clock.
    pub fn new(plan: FaultPlan) -> Self {
        Self::with_clock(plan, VirtualClock::new())
    }

    /// Wraps a plan, sharing an existing clock.
    pub fn with_clock(plan: FaultPlan, clock: VirtualClock) -> Self {
        Self { plan, clock, stats: Mutex::new(BTreeMap::new()) }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Checks whether attempt `attempt` of operation `key` at `site`
    /// succeeds. On success charges the site's base latency; on fault
    /// charges the fault latency and returns [`SagaError::Unavailable`].
    pub fn check(&self, site: &str, key: u64, attempt: u32) -> Result<()> {
        let (ok_ms, fault_ms) = self.plan.latency(site);
        let decision = self.plan.decide(site, key, attempt);
        let mut stats = self.stats.lock();
        let s = stats.entry(site.to_owned()).or_default();
        s.calls += 1;
        match decision {
            None => {
                drop(stats);
                self.clock.advance_ms(ok_ms);
                Ok(())
            }
            Some(kind) => {
                match kind {
                    FaultKind::Transient => s.transient_faults += 1,
                    FaultKind::Permanent => s.permanent_faults += 1,
                }
                drop(stats);
                self.clock.advance_ms(fault_ms);
                Err(SagaError::Unavailable {
                    site: site.to_owned(),
                    transient: kind == FaultKind::Transient,
                })
            }
        }
    }

    /// Observed statistics for one site.
    pub fn site_stats(&self, site: &str) -> SiteStats {
        self.stats.lock().get(site).copied().unwrap_or_default()
    }
}

// -------------------------------------------------------------- retries

/// A shared cap on the *total* number of retries a run may spend — the
/// paper's pipelines are batch jobs with cost envelopes, not servers that
/// may retry forever. `unlimited()` disables the cap.
#[derive(Debug)]
pub struct RetryBudget(AtomicI64);

impl RetryBudget {
    /// A budget of `n` retries shared by every call site that holds it.
    pub fn new(n: u32) -> Self {
        Self(AtomicI64::new(i64::from(n)))
    }

    /// No cap.
    pub fn unlimited() -> Self {
        Self(AtomicI64::new(i64::MAX))
    }

    /// Takes one retry from the budget; `false` when exhausted.
    pub fn try_take(&self) -> bool {
        self.0.fetch_sub(1, Ordering::Relaxed) > 0
    }

    /// Retries still available (0 when exhausted).
    pub fn remaining(&self) -> u64 {
        self.0.load(Ordering::Relaxed).max(0) as u64
    }
}

/// Exponential backoff with deterministic jitter, driven by the virtual
/// clock. Retries only [`SagaError::is_transient`] errors.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay_ms: u64,
    /// Multiplier applied per subsequent retry.
    pub multiplier: f64,
    /// Ceiling on a single backoff delay.
    pub max_delay_ms: u64,
    /// Jitter fraction in `[0, 1]`: each delay is scaled by a deterministic
    /// factor in `[1 - jitter, 1 + jitter]` derived from the salt and
    /// attempt, decorrelating concurrent retriers.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_delay_ms: 20,
            multiplier: 2.0,
            max_delay_ms: 2_000,
            jitter: 0.25,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn no_retries() -> Self {
        Self { max_attempts: 1, ..Self::default() }
    }

    /// The backoff delay after failed attempt `attempt` (0-based), jittered
    /// deterministically by `salt`.
    pub fn delay_ms(&self, attempt: u32, salt: u64) -> u64 {
        let exp = self.base_delay_ms as f64 * self.multiplier.powi(attempt as i32);
        let capped = exp.min(self.max_delay_ms as f64);
        let h = mix(salt ^ u64::from(attempt).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        let factor = 1.0 + self.jitter * (2.0 * unit(h) - 1.0);
        (capped * factor).round() as u64
    }

    /// Runs `op` with retries: transient errors are retried (charging the
    /// backoff to `clock` and one unit of `budget` each) until an attempt
    /// succeeds, a permanent error surfaces, attempts run out, or the
    /// budget empties. `op` receives the 0-based attempt number.
    pub fn run<T>(
        &self,
        clock: &VirtualClock,
        budget: &RetryBudget,
        salt: u64,
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_transient() => return Err(e),
                Err(e) => {
                    if attempt + 1 >= attempts || !budget.try_take() {
                        return Err(e);
                    }
                    clock.advance_ms(self.delay_ms(attempt, salt));
                    attempt += 1;
                }
            }
        }
    }
}

// ------------------------------------------------------------- breakers

/// Circuit-breaker configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// Virtual-clock cooldown before the breaker half-opens.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self { failure_threshold: 5, cooldown_ms: 10_000 }
    }
}

#[derive(Debug, Default)]
struct BreakerState {
    consecutive_failures: u32,
    open_until_ms: Option<u64>,
}

/// A circuit breaker for one dependency site: after `failure_threshold`
/// consecutive failures it rejects calls outright (`allow` = false) until
/// the cooldown elapses on the virtual clock, then half-opens to probe.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<BreakerState>,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self { cfg, state: Mutex::new(BreakerState::default()) }
    }

    /// Whether a call may proceed at virtual time `now_ms`. An open breaker
    /// whose cooldown has elapsed half-opens: the call proceeds as a probe.
    pub fn allow(&self, now_ms: u64) -> bool {
        let state = self.state.lock();
        match state.open_until_ms {
            Some(until) => now_ms >= until,
            None => true,
        }
    }

    /// Records the outcome of a call. Success closes the breaker; failure
    /// counts toward the threshold and (re)opens it when reached.
    pub fn record(&self, now_ms: u64, ok: bool) {
        let mut state = self.state.lock();
        if ok {
            state.consecutive_failures = 0;
            state.open_until_ms = None;
        } else {
            state.consecutive_failures += 1;
            if state.consecutive_failures >= self.cfg.failure_threshold {
                state.open_until_ms = Some(now_ms + self.cfg.cooldown_ms);
            }
        }
    }

    /// Whether the breaker is currently open (rejecting) at `now_ms`.
    pub fn is_open(&self, now_ms: u64) -> bool {
        !self.allow(now_ms)
    }
}

/// Lazily-created per-site circuit breakers sharing one configuration.
#[derive(Debug)]
pub struct BreakerSet {
    cfg: BreakerConfig,
    breakers: Mutex<BTreeMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerSet {
    /// An empty set.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self { cfg, breakers: Mutex::new(BTreeMap::new()) }
    }

    /// The breaker guarding `site`, created closed on first use.
    pub fn breaker(&self, site: &str) -> Arc<CircuitBreaker> {
        let mut map = self.breakers.lock();
        match map.get(site) {
            Some(b) => Arc::clone(b),
            None => {
                let b = Arc::new(CircuitBreaker::new(self.cfg));
                map.insert(site.to_owned(), Arc::clone(&b));
                b
            }
        }
    }
}

// -------------------------------------------------------- crash testing

/// How an armed [`KillSwitch`] dies at its target operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillMode {
    /// The process dies *before* the operation: nothing of it reaches disk.
    Before,
    /// The process dies *mid-write*: a prefix of the buffer reaches disk
    /// (a torn write), then everything stops.
    Torn,
}

/// What an instrumented write should do after consulting the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteVerdict {
    /// Write the whole buffer.
    Full,
    /// Write only this many bytes, then fail with [`SagaError::Killed`] —
    /// the simulated crash tore the write.
    Partial(usize),
}

/// A deterministic sync-point kill switch for crash-matrix testing.
///
/// Crash-safe code threads every durability-relevant I/O operation (page
/// writes, log appends, superblock flips, fsyncs) through a switch. Each
/// operation increments a global counter; when the counter reaches the
/// armed target, the switch "kills the process": the current operation
/// fails with [`SagaError::Killed`] (optionally after a torn partial
/// write), and every subsequent operation fails too — the instrumented
/// component is dead until dropped and reopened, exactly like a `kill -9`
/// whose surviving bytes are what had already been handed to the kernel.
///
/// An [`observer`](Self::observer) switch never fires and just counts, so
/// a harness can first discover how many kill points a workload has, then
/// enumerate them all — the kill-at-every-sync-point matrix.
#[derive(Debug)]
pub struct KillSwitch {
    /// Operation index to die at; `u64::MAX` observes without killing.
    target: u64,
    mode: KillMode,
    counter: AtomicU64,
    fired: std::sync::atomic::AtomicBool,
}

impl KillSwitch {
    /// A switch that kills at 0-based operation `target`.
    pub fn armed(target: u64, mode: KillMode) -> Arc<Self> {
        Arc::new(Self {
            target,
            mode,
            counter: AtomicU64::new(0),
            fired: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// A switch that never fires, counting operations for discovery runs.
    pub fn observer() -> Arc<Self> {
        Self::armed(u64::MAX, KillMode::Before)
    }

    /// Operations consulted so far.
    pub fn ops_seen(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// True once the simulated crash has happened.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::SeqCst)
    }

    fn killed(&self, site: &str, op: u64) -> SagaError {
        self.fired.store(true, Ordering::SeqCst);
        SagaError::Killed { site: site.to_owned(), op }
    }

    /// Consults the switch for a write of `len` bytes at `site`.
    pub fn on_write(&self, site: &str, len: usize) -> Result<WriteVerdict> {
        if self.fired() {
            return Err(SagaError::Killed { site: site.to_owned(), op: self.target });
        }
        let op = self.counter.fetch_add(1, Ordering::SeqCst);
        if op != self.target {
            return Ok(WriteVerdict::Full);
        }
        match self.mode {
            KillMode::Before => Err(self.killed(site, op)),
            KillMode::Torn => {
                self.fired.store(true, Ordering::SeqCst);
                Ok(WriteVerdict::Partial(len / 2))
            }
        }
    }

    /// Consults the switch for an fsync (or any non-write sync point) at
    /// `site`. Dying here models a crash after the data was written but
    /// before it was made durable.
    pub fn on_sync(&self, site: &str) -> Result<()> {
        if self.fired() {
            return Err(SagaError::Killed { site: site.to_owned(), op: self.target });
        }
        let op = self.counter.fetch_add(1, Ordering::SeqCst);
        if op == self.target {
            return Err(self.killed(site, op));
        }
        Ok(())
    }
}

/// The outcome of a [`crash_matrix`] sweep.
#[derive(Debug, Clone, Default)]
pub struct CrashMatrixReport {
    /// Kill points exercised.
    pub points: usize,
    /// Human-readable descriptions of points whose check failed.
    pub failures: Vec<String>,
}

impl CrashMatrixReport {
    /// Panics (listing every failing point) unless the whole matrix passed.
    /// `what` names the matrix in the panic message.
    pub fn assert_clean(&self, what: &str) {
        assert!(self.points > 0, "{what}: crash matrix exercised no kill points");
        assert!(
            self.failures.is_empty(),
            "{what}: {}/{} kill points failed:\n  {}",
            self.failures.len(),
            self.points,
            self.failures.join("\n  ")
        );
    }
}

/// Runs `check` for every kill point in `points`, collecting failures
/// instead of stopping at the first — a failing crash matrix should report
/// *every* unsafe sync point, not just the earliest.
///
/// `check` receives one point (e.g. a `(seed, workers, kill_at)` tuple for
/// the trainer matrix, or an `(op, KillMode)` pair driving a [`KillSwitch`]
/// for the storage-engine matrix), performs the kill + recovery + verify
/// cycle, and returns `Err(description)` when the recovered state violates
/// the invariant under test.
pub fn crash_matrix<P: std::fmt::Debug>(
    points: impl IntoIterator<Item = P>,
    mut check: impl FnMut(&P) -> std::result::Result<(), String>,
) -> CrashMatrixReport {
    let mut report = CrashMatrixReport::default();
    for p in points {
        report.points += 1;
        if let Err(msg) = check(&p) {
            report.failures.push(format!("{p:?}: {msg}"));
        }
    }
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_stateless() {
        let plan = FaultPlan::reliable(42).with_site("search", SiteFaults::mixed(0.3, 0.1));
        let twin = FaultPlan::reliable(42).with_site("search", SiteFaults::mixed(0.3, 0.1));
        for key in 0..200 {
            for attempt in 0..4 {
                assert_eq!(
                    plan.decide("search", key, attempt),
                    twin.decide("search", key, attempt),
                );
                // Consulting again does not change the answer.
                assert_eq!(
                    plan.decide("search", key, attempt),
                    plan.decide("search", key, attempt),
                );
            }
        }
        // Different seeds give different fault patterns.
        let other = FaultPlan::reliable(43).with_site("search", SiteFaults::mixed(0.3, 0.1));
        let same: usize = (0..200)
            .filter(|&k| plan.decide("search", k, 0) == other.decide("search", k, 0))
            .count();
        assert!(same < 200, "seeds must matter");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::reliable(7).with_site("fetch", SiteFaults::mixed(0.3, 0.1));
        let n = 10_000u64;
        let mut transient = 0;
        let mut permanent = 0;
        for key in 0..n {
            match plan.decide("fetch", key, 0) {
                Some(FaultKind::Permanent) => permanent += 1,
                Some(FaultKind::Transient) => transient += 1,
                None => {}
            }
        }
        let pr = permanent as f64 / n as f64;
        // Transient draws only happen for keys that are not permanent.
        let tr = transient as f64 / (n - permanent) as f64;
        assert!((pr - 0.1).abs() < 0.02, "permanent rate {pr}");
        assert!((tr - 0.3).abs() < 0.02, "transient rate {tr}");
    }

    #[test]
    fn unlisted_sites_never_fault() {
        let plan = FaultPlan::reliable(1).with_site("search", SiteFaults::transient(1.0));
        assert_eq!(plan.decide("fetch", 0, 0), None);
        let injector = FaultInjector::new(plan);
        assert!(injector.check("fetch", 0, 0).is_ok());
    }

    #[test]
    fn permanent_faults_stick_across_attempts() {
        let plan = FaultPlan::reliable(3).with_site("fetch", SiteFaults::mixed(0.0, 0.5));
        let perm_key =
            (0..1000).find(|&k| plan.decide("fetch", k, 0) == Some(FaultKind::Permanent)).unwrap();
        for attempt in 0..10 {
            assert_eq!(plan.decide("fetch", perm_key, attempt), Some(FaultKind::Permanent));
        }
    }

    #[test]
    fn injector_charges_latency_and_counts() {
        let plan = FaultPlan::reliable(5).with_site(
            "search",
            SiteFaults {
                transient_rate: 0.5,
                permanent_rate: 0.0,
                latency_ms: 2,
                fault_latency_ms: 30,
            },
        );
        let injector = FaultInjector::new(plan);
        let mut oks = 0u64;
        let mut faults = 0u64;
        for key in 0..100 {
            match injector.check("search", key, 0) {
                Ok(()) => oks += 1,
                Err(e) => {
                    assert!(e.is_transient());
                    faults += 1;
                }
            }
        }
        let stats = injector.site_stats("search");
        assert_eq!(stats.calls, 100);
        assert_eq!(stats.transient_faults, faults);
        assert_eq!(injector.clock().now_ms(), oks * 2 + faults * 30);
        assert!(oks > 0 && faults > 0);
    }

    #[test]
    fn backoff_grows_is_capped_and_jitter_is_deterministic() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay_ms: 100,
            multiplier: 2.0,
            max_delay_ms: 1_000,
            jitter: 0.25,
        };
        let d: Vec<u64> = (0..8).map(|a| p.delay_ms(a, 99)).collect();
        // Deterministic.
        assert_eq!(d, (0..8).map(|a| p.delay_ms(a, 99)).collect::<Vec<_>>());
        // Within jitter bounds of the exponential curve, capped.
        for (a, &delay) in d.iter().enumerate() {
            let ideal = (100.0 * 2.0f64.powi(a as i32)).min(1_000.0);
            assert!(delay as f64 >= ideal * 0.75 - 1.0, "attempt {a}: {delay} vs {ideal}");
            assert!(delay as f64 <= ideal * 1.25 + 1.0, "attempt {a}: {delay} vs {ideal}");
        }
        // Different salts decorrelate.
        assert_ne!(
            (0..8).map(|a| p.delay_ms(a, 1)).collect::<Vec<_>>(),
            (0..8).map(|a| p.delay_ms(a, 2)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn retry_clears_transients_and_respects_permanents() {
        let clock = VirtualClock::new();
        let budget = RetryBudget::unlimited();
        let policy = RetryPolicy::default();
        // Fails twice transiently, then succeeds.
        let mut calls = 0;
        let out = policy.run(&clock, &budget, 0, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(SagaError::Unavailable { site: "s".into(), transient: true })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls, 3);
        assert!(clock.now_ms() > 0, "backoff was charged to the clock");

        // Permanent errors are not retried.
        let mut calls = 0;
        let out: Result<()> = policy.run(&clock, &budget, 0, |_| {
            calls += 1;
            Err(SagaError::Unavailable { site: "s".into(), transient: false })
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn retry_budget_limits_total_retries() {
        let clock = VirtualClock::new();
        let budget = RetryBudget::new(3);
        let policy = RetryPolicy { max_attempts: 10, ..RetryPolicy::default() };
        let fail = |_: u32| -> Result<()> {
            Err(SagaError::Unavailable { site: "s".into(), transient: true })
        };
        // First run burns the whole budget (3 retries = 4 attempts).
        let mut calls = 0;
        let _ = policy.run(&clock, &budget, 0, |a| {
            calls += 1;
            fail(a)
        });
        assert_eq!(calls, 4);
        assert_eq!(budget.remaining(), 0);
        // Later runs cannot retry at all.
        let mut calls = 0;
        let _ = policy.run(&clock, &budget, 1, |a| {
            calls += 1;
            fail(a)
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let clock = VirtualClock::new();
        let b = CircuitBreaker::new(BreakerConfig { failure_threshold: 3, cooldown_ms: 500 });
        for _ in 0..2 {
            assert!(b.allow(clock.now_ms()));
            b.record(clock.now_ms(), false);
        }
        assert!(b.allow(clock.now_ms()), "below threshold stays closed");
        b.record(clock.now_ms(), false);
        assert!(b.is_open(clock.now_ms()), "third consecutive failure trips it");
        clock.advance_ms(499);
        assert!(b.is_open(clock.now_ms()));
        clock.advance_ms(1);
        assert!(b.allow(clock.now_ms()), "cooldown elapsed: half-open probe allowed");
        // A failed probe re-opens for a fresh cooldown.
        b.record(clock.now_ms(), false);
        assert!(b.is_open(clock.now_ms()));
        // A successful probe closes it fully.
        clock.advance_ms(500);
        b.record(clock.now_ms(), true);
        assert!(b.allow(clock.now_ms()));
        let set = BreakerSet::new(BreakerConfig::default());
        assert!(Arc::ptr_eq(&set.breaker("x"), &set.breaker("x")));
    }
}
