//! Triples, provenance metadata, and the compact encoded key form used by the
//! store indexes.

use crate::ids::{EntityId, LiteralId, PredicateId, SourceId};
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A knowledge-graph fact: `(subject, predicate, object)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Triple {
    /// The subject entity.
    pub subject: EntityId,
    /// The edge label.
    pub predicate: PredicateId,
    /// The object value (entity or literal).
    pub object: Value,
}

impl Triple {
    /// Creates a triple, converting the object into a [`Value`].
    pub fn new(subject: EntityId, predicate: PredicateId, object: impl Into<Value>) -> Self {
        Self { subject, predicate, object: object.into() }
    }
}

/// Provenance and trust metadata attached to a fact, mirroring Saga's
/// source-aware continuous construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactMeta {
    /// The source this fact was ingested from.
    pub source: SourceId,
    /// Ingestion-time confidence in `[0, 1]`.
    pub confidence: f32,
    /// Logical timestamp (monotonic commit counter) of the last observation;
    /// used for staleness analysis by the ODKE profiler.
    pub observed_at: u64,
}

impl Default for FactMeta {
    fn default() -> Self {
        Self { source: SourceId(0), confidence: 1.0, observed_at: 0 }
    }
}

/// Compact object key: entity ids and literal ids share a `u64` key space,
/// disambiguated by the top bit.
///
/// Invariant: entity ids and literal ids must stay below `2^63`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjKey(pub u64);

const LITERAL_TAG: u64 = 1 << 63;

impl ObjKey {
    /// Key for an entity object.
    pub fn entity(e: EntityId) -> Self {
        debug_assert!(e.0 & LITERAL_TAG == 0, "entity id overflows ObjKey space");
        ObjKey(e.0)
    }

    /// Key for an interned literal object.
    pub fn literal(l: LiteralId) -> Self {
        debug_assert!(l.0 & LITERAL_TAG == 0, "literal id overflows ObjKey space");
        ObjKey(l.0 | LITERAL_TAG)
    }

    /// True if this key denotes an entity.
    pub fn is_entity(self) -> bool {
        self.0 & LITERAL_TAG == 0
    }

    /// The entity id, if this key denotes an entity.
    pub fn as_entity(self) -> Option<EntityId> {
        self.is_entity().then_some(EntityId(self.0))
    }

    /// The literal id, if this key denotes a literal.
    pub fn as_literal(self) -> Option<LiteralId> {
        (!self.is_entity()).then_some(LiteralId(self.0 & !LITERAL_TAG))
    }
}

/// Fully-encoded triple key used by the sorted indexes. Ordering is
/// lexicographic over `(s, p, o)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TripleKey {
    /// Subject.
    pub s: EntityId,
    /// Predicate.
    pub p: PredicateId,
    /// Object key.
    pub o: ObjKey,
}

mod codec_impls {
    use super::{FactMeta, Triple, TripleKey};
    use crate::error::Result;
    use crate::persist::codec::{BinCodec, Reader};

    impl BinCodec for Triple {
        fn enc(&self, out: &mut Vec<u8>) {
            self.subject.enc(out);
            self.predicate.enc(out);
            self.object.enc(out);
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            Ok(Triple {
                subject: BinCodec::dec(rd)?,
                predicate: BinCodec::dec(rd)?,
                object: BinCodec::dec(rd)?,
            })
        }
    }

    impl BinCodec for FactMeta {
        fn enc(&self, out: &mut Vec<u8>) {
            self.source.enc(out);
            self.confidence.enc(out);
            self.observed_at.enc(out);
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            Ok(FactMeta {
                source: BinCodec::dec(rd)?,
                confidence: f32::dec(rd)?,
                observed_at: u64::dec(rd)?,
            })
        }
    }

    impl BinCodec for TripleKey {
        fn enc(&self, out: &mut Vec<u8>) {
            self.s.enc(out);
            self.p.enc(out);
            self.o.0.enc(out);
        }
        fn dec(rd: &mut Reader<'_>) -> Result<Self> {
            Ok(TripleKey {
                s: BinCodec::dec(rd)?,
                p: BinCodec::dec(rd)?,
                o: super::ObjKey(u64::dec(rd)?),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn objkey_tags_round_trip() {
        let e = ObjKey::entity(EntityId(42));
        assert!(e.is_entity());
        assert_eq!(e.as_entity(), Some(EntityId(42)));
        assert_eq!(e.as_literal(), None);

        let l = ObjKey::literal(LiteralId(42));
        assert!(!l.is_entity());
        assert_eq!(l.as_literal(), Some(LiteralId(42)));
        assert_eq!(l.as_entity(), None);
        assert_ne!(e, l);
    }

    #[test]
    fn triple_key_orders_lexicographically() {
        let k1 = TripleKey { s: EntityId(1), p: PredicateId(5), o: ObjKey::entity(EntityId(9)) };
        let k2 = TripleKey { s: EntityId(1), p: PredicateId(6), o: ObjKey::entity(EntityId(0)) };
        let k3 = TripleKey { s: EntityId(2), p: PredicateId(0), o: ObjKey::entity(EntityId(0)) };
        assert!(k1 < k2 && k2 < k3);
    }

    #[test]
    fn triple_constructor_converts_values() {
        let t = Triple::new(EntityId(1), PredicateId(2), "hello");
        assert_eq!(t.object, Value::Text("hello".into()));
        let t = Triple::new(EntityId(1), PredicateId(2), EntityId(3));
        assert_eq!(t.object, Value::Entity(EntityId(3)));
    }
}
