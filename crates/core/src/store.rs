//! The triple store at the heart of the platform.
//!
//! Design (mirrors Saga's continuous-construction model):
//! - writes are queued and applied in **commits**; each commit produces a
//!   [`Delta`] that downstream consumers (views, annotation freshness, sync)
//!   subscribe to;
//! - reads go through three sorted covering indexes (SPO, POS, OSP) so every
//!   triple-pattern shape has a log-time range scan;
//! - object literals are interned ([`crate::literal::LiteralTable`]) so index
//!   entries are fixed-width 20-byte keys.
//!
//! Invariant: after `commit()`, the three indexes contain exactly the same
//! set of [`TripleKey`]s (checked by property tests) and `meta` has an entry
//! for every key.

use crate::entity::{EntityBuilder, EntityRecord};
use crate::ids::{EntityId, Interner, PredicateId, SourceId};
use crate::literal::LiteralTable;
use crate::ontology::Ontology;
use crate::triple::{FactMeta, ObjKey, Triple, TripleKey};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::HashMap;

/// The set of changes applied by one commit.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Delta {
    /// Commit sequence number this delta belongs to.
    pub commit: u64,
    /// Facts newly added in this commit.
    pub added: Vec<Triple>,
    /// Facts removed in this commit.
    pub removed: Vec<Triple>,
    /// Facts that already existed and whose metadata (freshness, confidence)
    /// was refreshed.
    pub refreshed: Vec<Triple>,
}

impl Delta {
    /// True when the commit changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.refreshed.is_empty()
    }
}

fn pos_cmp(a: &TripleKey, b: &TripleKey) -> Ordering {
    (a.p, a.o, a.s).cmp(&(b.p, b.o, b.s))
}

fn osp_cmp(a: &TripleKey, b: &TripleKey) -> Ordering {
    (a.o, a.s, a.p).cmp(&(b.o, b.s, b.p))
}

/// An in-memory knowledge graph with commit-based mutation and sorted
/// covering indexes. See module docs for invariants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeGraph {
    ontology: Ontology,
    entities: Vec<EntityRecord>,
    literals: LiteralTable,
    sources: Interner,
    spo: Vec<TripleKey>,
    pos: Vec<TripleKey>,
    osp: Vec<TripleKey>,
    #[serde(with = "meta_as_pairs")]
    meta: HashMap<TripleKey, FactMeta>,
    #[serde(skip)]
    pending_add: Vec<(TripleKey, SourceId, f32)>,
    #[serde(skip)]
    pending_remove: Vec<TripleKey>,
    commit_counter: u64,
}

impl KnowledgeGraph {
    /// Creates an empty graph over the given ontology. Source id 0 is
    /// reserved for `"unknown"`.
    pub fn new(ontology: Ontology) -> Self {
        let mut sources = Interner::new();
        sources.intern("unknown");
        Self {
            ontology,
            entities: Vec::new(),
            literals: LiteralTable::new(),
            sources,
            spo: Vec::new(),
            pos: Vec::new(),
            osp: Vec::new(),
            meta: HashMap::new(),
            pending_add: Vec::new(),
            pending_remove: Vec::new(),
            commit_counter: 0,
        }
    }

    // ---------------------------------------------------------------- schema

    /// The graph's ontology.
    pub fn ontology(&self) -> &Ontology {
        &self.ontology
    }

    /// Mutable ontology access (for registering new predicates).
    pub fn ontology_mut(&mut self) -> &mut Ontology {
        &mut self.ontology
    }

    /// Registers a provenance source by name, returning its id.
    pub fn register_source(&mut self, name: &str) -> SourceId {
        SourceId(self.sources.intern(name))
    }

    /// Resolves a source id to its name.
    pub fn source_name(&self, id: SourceId) -> &str {
        self.sources.resolve(id.0)
    }

    // -------------------------------------------------------------- entities

    /// Adds an entity, allocating the next dense id.
    pub fn add_entity(&mut self, builder: EntityBuilder) -> EntityId {
        let id = EntityId(self.entities.len() as u64);
        self.entities.push(builder.build(id));
        id
    }

    /// Re-appends a previously built record during op-log replay (see
    /// `persist::kg`). The record's id must be the next dense id.
    pub fn add_entity_record(&mut self, record: EntityRecord) -> Result<EntityId, String> {
        if record.id.index() != self.entities.len() {
            return Err(format!(
                "entity record id {} is not the next dense id {}",
                record.id,
                self.entities.len()
            ));
        }
        let id = record.id;
        self.entities.push(record);
        Ok(id)
    }

    /// The record of an entity.
    pub fn entity(&self, id: EntityId) -> &EntityRecord {
        &self.entities[id.index()]
    }

    /// The record of an entity, if the id is valid.
    pub fn try_entity(&self, id: EntityId) -> Option<&EntityRecord> {
        self.entities.get(id.index())
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Iterates over all entity records.
    pub fn entities(&self) -> impl Iterator<Item = &EntityRecord> {
        self.entities.iter()
    }

    /// Linear-scan lookup by canonical name; first match wins. Intended for
    /// tests and examples, not the serving path (which uses alias automata).
    pub fn find_entity_by_name(&self, name: &str) -> Option<&EntityRecord> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Updates an entity's popularity prior (clamped to `[0, 1]`).
    pub fn set_popularity(&mut self, id: EntityId, popularity: f32) {
        self.entities[id.index()].popularity = popularity.clamp(0.0, 1.0);
    }

    // --------------------------------------------------------------- writing

    /// Encodes a triple into its key form, interning new literals.
    fn encode_mut(&mut self, t: &Triple) -> TripleKey {
        let o = match &t.object {
            Value::Entity(e) => ObjKey::entity(*e),
            other => ObjKey::literal(self.literals.intern(other)),
        };
        TripleKey { s: t.subject, p: t.predicate, o }
    }

    /// Encodes without interning; `None` when the literal is unknown (which
    /// implies the triple is not in the store).
    pub fn encode(&self, t: &Triple) -> Option<TripleKey> {
        let o = match &t.object {
            Value::Entity(e) => ObjKey::entity(*e),
            other => ObjKey::literal(self.literals.get(other)?),
        };
        Some(TripleKey { s: t.subject, p: t.predicate, o })
    }

    /// Decodes an index key back into a full triple.
    pub fn decode(&self, k: TripleKey) -> Triple {
        let object = match k.o.as_entity() {
            Some(e) => Value::Entity(e),
            None => self.literals.resolve(k.o.as_literal().expect("literal key")).clone(),
        };
        Triple { subject: k.s, predicate: k.p, object }
    }

    /// Queues a fact for insertion with default provenance.
    pub fn insert(&mut self, t: Triple) {
        self.insert_with(t, SourceId(0), 1.0);
    }

    /// Queues a fact for insertion with provenance. Takes effect at the next
    /// [`commit`](Self::commit). Re-inserting an existing fact refreshes its
    /// metadata instead of duplicating it.
    pub fn insert_with(&mut self, t: Triple, source: SourceId, confidence: f32) {
        let k = self.encode_mut(&t);
        self.pending_add.push((k, source, confidence));
    }

    /// Queues a fact for removal; a no-op if the fact is absent at commit.
    pub fn remove(&mut self, t: &Triple) {
        if let Some(k) = self.encode(t) {
            self.pending_remove.push(k);
        }
    }

    /// Applies all queued writes, returning the delta. Removals are applied
    /// before insertions within a commit, so remove+insert of the same key in
    /// one commit nets to the fact being present with fresh metadata.
    pub fn commit(&mut self) -> Delta {
        self.commit_counter += 1;
        let now = self.commit_counter;
        let mut delta = Delta { commit: now, ..Delta::default() };

        // Removals first.
        let removals: Vec<TripleKey> = std::mem::take(&mut self.pending_remove);
        let adds: Vec<(TripleKey, SourceId, f32)> = std::mem::take(&mut self.pending_add);
        let add_keys: std::collections::HashSet<TripleKey> =
            adds.iter().map(|(k, _, _)| *k).collect();
        let mut removed_set = std::collections::HashSet::new();
        for k in removals {
            if self.meta.contains_key(&k) && !add_keys.contains(&k) && removed_set.insert(k) {
                self.meta.remove(&k);
                delta.removed.push(self.decode(k));
            }
        }
        if !removed_set.is_empty() {
            self.spo.retain(|k| !removed_set.contains(k));
            self.pos.retain(|k| !removed_set.contains(k));
            self.osp.retain(|k| !removed_set.contains(k));
        }

        // Insertions / refreshes.
        let mut new_keys: Vec<TripleKey> = Vec::new();
        let mut added_this_commit = std::collections::HashSet::new();
        let mut refreshed_this_commit = std::collections::HashSet::new();
        for (k, source, confidence) in adds {
            let fresh = FactMeta { source, confidence, observed_at: now };
            let existed = self.meta.insert(k, fresh).is_some();
            if existed && !added_this_commit.contains(&k) {
                if refreshed_this_commit.insert(k) {
                    delta.refreshed.push(self.decode(k));
                }
            } else if !existed {
                added_this_commit.insert(k);
                new_keys.push(k);
                delta.added.push(self.decode(k));
            }
        }

        if !new_keys.is_empty() {
            let mut by_spo = new_keys.clone();
            by_spo.sort_unstable();
            merge_sorted(&mut self.spo, by_spo, TripleKey::cmp);
            let mut by_pos = new_keys.clone();
            by_pos.sort_unstable_by(pos_cmp);
            merge_sorted(&mut self.pos, by_pos, pos_cmp);
            new_keys.sort_unstable_by(osp_cmp);
            merge_sorted(&mut self.osp, new_keys, osp_cmp);
        }

        delta
    }

    /// Current commit sequence number (logical clock for freshness).
    pub fn current_commit(&self) -> u64 {
        self.commit_counter
    }

    // --------------------------------------------------------------- reading

    /// Number of committed facts.
    pub fn num_triples(&self) -> usize {
        self.spo.len()
    }

    /// True if the committed store contains the fact.
    pub fn contains(&self, t: &Triple) -> bool {
        match self.encode(t) {
            Some(k) => self.meta.contains_key(&k),
            None => false,
        }
    }

    /// Provenance metadata for a committed fact.
    pub fn fact_meta(&self, t: &Triple) -> Option<FactMeta> {
        self.encode(t).and_then(|k| self.meta.get(&k).copied())
    }

    /// All committed triple keys in SPO order.
    pub fn keys(&self) -> &[TripleKey] {
        &self.spo
    }

    /// All triples with the given subject.
    pub fn triples_of(&self, s: EntityId) -> impl Iterator<Item = Triple> + '_ {
        let lo = self.spo.partition_point(|k| k.s < s);
        let hi = self.spo.partition_point(|k| k.s <= s);
        self.spo[lo..hi].iter().map(move |k| self.decode(*k))
    }

    /// Object values for `(s, p, ?)`.
    pub fn objects(&self, s: EntityId, p: PredicateId) -> Vec<Value> {
        let lo = self.spo.partition_point(|k| (k.s, k.p) < (s, p));
        let hi = self.spo.partition_point(|k| (k.s, k.p) <= (s, p));
        self.spo[lo..hi].iter().map(|k| self.decode(*k).object).collect()
    }

    /// First object for `(s, p, ?)`, convenient for single-valued predicates.
    pub fn object(&self, s: EntityId, p: PredicateId) -> Option<Value> {
        self.objects(s, p).into_iter().next()
    }

    /// Subject ids for `(?, p, o)`.
    pub fn subjects_with(&self, p: PredicateId, o: &Value) -> Vec<EntityId> {
        let key = match o {
            Value::Entity(e) => ObjKey::entity(*e),
            other => match self.literals.get(other) {
                Some(l) => ObjKey::literal(l),
                None => return Vec::new(),
            },
        };
        let lo = self.pos.partition_point(|k| (k.p, k.o) < (p, key));
        let hi = self.pos.partition_point(|k| (k.p, k.o) <= (p, key));
        self.pos[lo..hi].iter().map(|k| k.s).collect()
    }

    /// All triples with the given predicate (POS order).
    pub fn triples_with_predicate(&self, p: PredicateId) -> impl Iterator<Item = Triple> + '_ {
        let lo = self.pos.partition_point(|k| k.p < p);
        let hi = self.pos.partition_point(|k| k.p <= p);
        self.pos[lo..hi].iter().map(move |k| self.decode(*k))
    }

    /// Outgoing entity-valued edges of `s`: `(predicate, object entity)`.
    pub fn out_edges(&self, s: EntityId) -> Vec<(PredicateId, EntityId)> {
        let lo = self.spo.partition_point(|k| k.s < s);
        let hi = self.spo.partition_point(|k| k.s <= s);
        self.spo[lo..hi].iter().filter_map(|k| k.o.as_entity().map(|e| (k.p, e))).collect()
    }

    /// Incoming entity-valued edges of `o`: `(subject, predicate)`.
    pub fn in_edges(&self, o: EntityId) -> Vec<(EntityId, PredicateId)> {
        let key = ObjKey::entity(o);
        let lo = self.osp.partition_point(|k| k.o < key);
        let hi = self.osp.partition_point(|k| k.o <= key);
        self.osp[lo..hi].iter().map(|k| (k.s, k.p)).collect()
    }

    /// Undirected entity neighbourhood of `e` (deduplicated).
    pub fn neighbors(&self, e: EntityId) -> Vec<EntityId> {
        let mut out: Vec<EntityId> = self
            .out_edges(e)
            .into_iter()
            .map(|(_, t)| t)
            .chain(self.in_edges(e).into_iter().map(|(s, _)| s))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks the cross-index consistency invariant. Intended for tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.spo.len() != self.pos.len() || self.spo.len() != self.osp.len() {
            return Err(format!(
                "index length mismatch: spo={} pos={} osp={}",
                self.spo.len(),
                self.pos.len(),
                self.osp.len()
            ));
        }
        if self.meta.len() != self.spo.len() {
            return Err(format!("meta len {} != spo len {}", self.meta.len(), self.spo.len()));
        }
        if !self.spo.windows(2).all(|w| w[0] < w[1]) {
            return Err("spo not strictly sorted".into());
        }
        if !self.pos.windows(2).all(|w| pos_cmp(&w[0], &w[1]) == Ordering::Less) {
            return Err("pos not strictly sorted".into());
        }
        if !self.osp.windows(2).all(|w| osp_cmp(&w[0], &w[1]) == Ordering::Less) {
            return Err("osp not strictly sorted".into());
        }
        let mut a = self.pos.clone();
        a.sort_unstable();
        if a != self.spo {
            return Err("pos contents differ from spo".into());
        }
        let mut b = self.osp.clone();
        b.sort_unstable();
        if b != self.spo {
            return Err("osp contents differ from spo".into());
        }
        for k in &self.spo {
            if !self.meta.contains_key(k) {
                return Err(format!("missing meta for {k:?}"));
            }
        }
        Ok(())
    }

    /// Rebuilds skipped lookup structures after deserialization.
    pub fn rebuild_after_load(&mut self) {
        self.ontology.rebuild_index();
        self.literals.rebuild_index();
        self.sources.rebuild_index();
    }

    /// The canonical binary encoding of the graph: the same logical state
    /// always produces the same bytes (metadata entries are sorted by
    /// triple key, floats encode by bit pattern, ids are dense). This is
    /// the checkpoint-image format of [`crate::persist::kg::KgStore`] and
    /// the byte-level equality witness used by the crash-recovery proofs.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        crate::persist::codec::BinCodec::enc(self, &mut out);
        out
    }
}

impl crate::persist::codec::BinCodec for KnowledgeGraph {
    fn enc(&self, out: &mut Vec<u8>) {
        self.ontology.enc(out);
        self.entities.enc(out);
        self.literals.enc(out);
        self.sources.enc(out);
        self.spo.enc(out);
        self.pos.enc(out);
        self.osp.enc(out);
        // HashMap iteration order is nondeterministic; sort by key so equal
        // graphs encode to equal bytes.
        let mut pairs: Vec<(TripleKey, FactMeta)> =
            self.meta.iter().map(|(k, m)| (*k, *m)).collect();
        pairs.sort_unstable_by_key(|(k, _)| *k);
        pairs.enc(out);
        self.pending_add.enc(out);
        self.pending_remove.enc(out);
        self.commit_counter.enc(out);
    }
    fn dec(rd: &mut crate::persist::codec::Reader<'_>) -> crate::error::Result<Self> {
        let mut kg = KnowledgeGraph {
            ontology: Ontology::dec(rd)?,
            entities: Vec::dec(rd)?,
            literals: LiteralTable::dec(rd)?,
            sources: Interner::dec(rd)?,
            spo: Vec::dec(rd)?,
            pos: Vec::dec(rd)?,
            osp: Vec::dec(rd)?,
            meta: Vec::<(TripleKey, FactMeta)>::dec(rd)?.into_iter().collect(),
            pending_add: Vec::dec(rd)?,
            pending_remove: Vec::dec(rd)?,
            commit_counter: u64::dec(rd)?,
        };
        kg.rebuild_after_load();
        Ok(kg)
    }
}

/// JSON cannot key maps by structs; persist `meta` as a pair list.
mod meta_as_pairs {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &HashMap<TripleKey, FactMeta>,
        ser: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        let mut pairs: Vec<(&TripleKey, &FactMeta)> = map.iter().collect();
        pairs.sort_by_key(|(k, _)| **k);
        serde::Serialize::serialize(&pairs, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> std::result::Result<HashMap<TripleKey, FactMeta>, D::Error> {
        let pairs: Vec<(TripleKey, FactMeta)> = serde::Deserialize::deserialize(de)?;
        Ok(pairs.into_iter().collect())
    }
}

/// Merges `incoming` (sorted by `cmp`, may contain duplicates of existing
/// keys) into `base` (sorted, deduplicated), keeping `base` sorted and
/// deduplicated. O(n + m).
fn merge_sorted<F>(base: &mut Vec<TripleKey>, incoming: Vec<TripleKey>, cmp: F)
where
    F: Fn(&TripleKey, &TripleKey) -> Ordering,
{
    if incoming.is_empty() {
        return;
    }
    let old = std::mem::take(base);
    let mut merged = Vec::with_capacity(old.len() + incoming.len());
    let (mut i, mut j) = (0, 0);
    while i < old.len() && j < incoming.len() {
        match cmp(&old[i], &incoming[j]) {
            Ordering::Less => {
                merged.push(old[i]);
                i += 1;
            }
            Ordering::Greater => {
                merged.push(incoming[j]);
                j += 1;
            }
            Ordering::Equal => {
                merged.push(old[i]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&old[i..]);
    for k in &incoming[j..] {
        if merged.last().map(|l| cmp(l, k) == Ordering::Equal).unwrap_or(false) {
            continue;
        }
        merged.push(*k);
    }
    // Deduplicate incoming-side duplicates that interleaved with old entries.
    merged.dedup_by(|a, b| cmp(a, b) == Ordering::Equal);
    *base = merged;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::{Cardinality, Volatility};
    use crate::value::ValueKind;

    fn setup() -> (KnowledgeGraph, PredicateId, PredicateId, EntityId, EntityId, EntityId) {
        let mut o = Ontology::new();
        let person = o.add_type("person", None);
        let knows = o.add_predicate(
            "knows",
            "knows",
            ValueKind::Entity,
            Some(person),
            Cardinality::Multi,
            Volatility::Slow,
            false,
        );
        let name = o.add_predicate(
            "nickname",
            "nickname",
            ValueKind::Text,
            Some(person),
            Cardinality::Multi,
            Volatility::Stable,
            false,
        );
        let mut kg = KnowledgeGraph::new(o);
        let a = kg.add_entity(EntityBuilder::new("Alice", person));
        let b = kg.add_entity(EntityBuilder::new("Bob", person));
        let c = kg.add_entity(EntityBuilder::new("Carol", person));
        (kg, knows, name, a, b, c)
    }

    #[test]
    fn insert_commit_read_round_trip() {
        let (mut kg, knows, name, a, b, c) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.insert(Triple::new(a, knows, c));
        kg.insert(Triple::new(a, name, "Ally"));
        let d = kg.commit();
        assert_eq!(d.added.len(), 3);
        assert!(d.removed.is_empty());
        assert_eq!(kg.num_triples(), 3);
        assert!(kg.contains(&Triple::new(a, knows, b)));
        assert!(!kg.contains(&Triple::new(b, knows, a)));
        let objs = kg.objects(a, knows);
        assert_eq!(objs.len(), 2);
        assert_eq!(kg.object(a, name), Some(Value::from("Ally")));
        kg.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_refreshes_metadata() {
        let (mut kg, knows, _, a, b, _) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.commit();
        let m1 = kg.fact_meta(&Triple::new(a, knows, b)).unwrap();
        kg.insert(Triple::new(a, knows, b));
        let d = kg.commit();
        assert!(d.added.is_empty());
        assert_eq!(d.refreshed.len(), 1);
        let m2 = kg.fact_meta(&Triple::new(a, knows, b)).unwrap();
        assert!(m2.observed_at > m1.observed_at);
        assert_eq!(kg.num_triples(), 1);
        kg.check_invariants().unwrap();
    }

    #[test]
    fn removal_and_reinsert_in_one_commit_keeps_fact() {
        let (mut kg, knows, _, a, b, _) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.commit();
        kg.remove(&Triple::new(a, knows, b));
        kg.insert(Triple::new(a, knows, b));
        let d = kg.commit();
        assert!(d.removed.is_empty());
        assert!(kg.contains(&Triple::new(a, knows, b)));
        kg.check_invariants().unwrap();
    }

    #[test]
    fn removal_deletes_from_all_indexes() {
        let (mut kg, knows, _, a, b, c) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.insert(Triple::new(a, knows, c));
        kg.commit();
        kg.remove(&Triple::new(a, knows, b));
        let d = kg.commit();
        assert_eq!(d.removed.len(), 1);
        assert_eq!(kg.num_triples(), 1);
        assert!(!kg.contains(&Triple::new(a, knows, b)));
        assert_eq!(kg.subjects_with(knows, &Value::Entity(c)), vec![a]);
        assert!(kg.subjects_with(knows, &Value::Entity(b)).is_empty());
        kg.check_invariants().unwrap();
    }

    #[test]
    fn edge_queries_both_directions() {
        let (mut kg, knows, _, a, b, c) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.insert(Triple::new(c, knows, b));
        kg.commit();
        assert_eq!(kg.out_edges(a), vec![(knows, b)]);
        let mut incoming = kg.in_edges(b);
        incoming.sort();
        assert_eq!(incoming, vec![(a, knows), (c, knows)]);
        assert_eq!(kg.neighbors(b), vec![a, c]);
    }

    #[test]
    fn removing_absent_fact_is_noop() {
        let (mut kg, knows, _, a, b, _) = setup();
        kg.remove(&Triple::new(a, knows, b));
        let d = kg.commit();
        assert!(d.is_empty() || d.removed.is_empty());
        assert_eq!(kg.num_triples(), 0);
    }

    #[test]
    fn triples_with_predicate_scans_pos() {
        let (mut kg, knows, name, a, b, c) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.insert(Triple::new(b, knows, c));
        kg.insert(Triple::new(a, name, "Ally"));
        kg.commit();
        let found: Vec<_> = kg.triples_with_predicate(knows).collect();
        assert_eq!(found.len(), 2);
        assert!(found.iter().all(|t| t.predicate == knows));
    }

    #[test]
    fn provenance_is_recorded() {
        let (mut kg, knows, _, a, b, _) = setup();
        let src = kg.register_source("wiki-import");
        kg.insert_with(Triple::new(a, knows, b), src, 0.75);
        kg.commit();
        let m = kg.fact_meta(&Triple::new(a, knows, b)).unwrap();
        assert_eq!(m.source, src);
        assert!((m.confidence - 0.75).abs() < 1e-6);
        assert_eq!(kg.source_name(src), "wiki-import");
    }

    #[test]
    fn serde_round_trip_preserves_store() {
        let (mut kg, knows, name, a, b, _) = setup();
        kg.insert(Triple::new(a, knows, b));
        kg.insert(Triple::new(a, name, "Ally"));
        kg.commit();
        let json = serde_json::to_string(&kg).unwrap();
        let mut back: KnowledgeGraph = serde_json::from_str(&json).unwrap();
        back.rebuild_after_load();
        assert_eq!(back.num_triples(), 2);
        assert!(back.contains(&Triple::new(a, knows, b)));
        assert!(back.contains(&Triple::new(a, name, "Ally")));
        back.check_invariants().unwrap();
    }
}
