//! Persistent worker pool for fan-out on serving hot paths.
//!
//! Before this module, every `search_batch` call in `saga-ann` spawned a
//! fresh set of scoped threads — fine for offline index builds, but on a
//! serving front-end dispatching thousands of batches per second the spawn
//! cost (stack allocation, kernel thread setup) dominates small batches and
//! defeats the zero-allocation discipline of the underlying kernels. A
//! [`WorkerPool`] spawns its threads once; [`WorkerPool::run_scoped`]
//! dispatches a borrowed closure to them and blocks until every task index
//! has run, so steady-state fan-out performs **zero** thread spawns and zero
//! heap allocations inside the pool itself.
//!
//! The scoped-borrow trick: the task is published to workers as a thin raw
//! pointer to a stack-allocated [`RawTask`] (data pointer + monomorphized
//! call shim — a hand-rolled vtable, avoiding fat-pointer lifetime
//! transmutes). Safety rests on a completion latch: `run_scoped` returns
//! only after every claimed index has finished *and* every worker has
//! dropped its reference (`inside == 0`), so the borrow never outlives the
//! call. One job runs at a time; concurrent `run_scoped` callers queue on
//! the publish lock — acceptable for the intended use (coarse per-shard
//! fan-out), and callers always participate in their own job, so a queued
//! caller still makes progress even on a zero-thread pool.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;

/// Number of threads ever spawned by pools in this process — lets tests
/// assert that warm serving paths spawn nothing.
static SPAWNED_THREADS: AtomicU64 = AtomicU64::new(0);

/// Total threads spawned by all [`WorkerPool`]s since process start.
pub fn spawned_threads() -> u64 {
    SPAWNED_THREADS.load(Ordering::Relaxed)
}

/// A published job: type-erased closure plus claim/completion state.
struct RawTask {
    /// Pointer to the caller's closure (on the caller's stack).
    data: *const (),
    /// Monomorphized shim invoking `data` with a task index.
    call: unsafe fn(*const (), usize),
    /// Number of task indices.
    n: usize,
    /// Next unclaimed index (may overshoot `n`).
    next: AtomicUsize,
    /// Unfinished tasks; 0 = all `call`s returned.
    remaining: AtomicUsize,
    /// Workers currently holding a pointer to this task.
    inside: AtomicUsize,
}

// The raw pointers are only dereferenced while the publishing `run_scoped`
// frame is alive (enforced by the completion latch) and the closure is
// required to be `Sync`.
unsafe impl Send for RawTask {}
unsafe impl Sync for RawTask {}

/// Slot workers poll for the current job.
struct Slot {
    /// Bumped on every publish so a worker never re-enters a job it left.
    seq: u64,
    /// Current job, if any.
    task: Option<*const RawTask>,
    /// Pool is shutting down.
    shutdown: bool,
}

unsafe impl Send for Slot {}

struct Shared {
    state: Mutex<Slot>,
    /// Workers wait here for a new job (or shutdown).
    work_cv: Condvar,
    /// Callers wait here for the slot to free and for job completion.
    idle_cv: Condvar,
}

/// Fixed-size pool of persistent worker threads executing borrowed
/// fan-out jobs (see module docs).
pub struct WorkerPool {
    shared: std::sync::Arc<Shared>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` persistent workers. `threads == 0` is
    /// valid: jobs then run entirely on the calling thread.
    pub fn new(threads: usize) -> Self {
        let shared = std::sync::Arc::new(Shared {
            state: Mutex::new(Slot { seq: 0, task: None, shutdown: false }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = std::sync::Arc::clone(&shared);
                SPAWNED_THREADS.fetch_add(1, Ordering::Relaxed);
                thread::Builder::new()
                    .name(format!("saga-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Runs `f(0), f(1), …, f(n - 1)` across the pool (and the calling
    /// thread), returning once all have completed. Indices are claimed
    /// dynamically, so uneven tasks balance. Performs no heap allocation
    /// and spawns no threads.
    pub fn run_scoped(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // Hand-rolled vtable: `&dyn` is a fat pointer whose lifetime we
        // can't legally erase, so split it into thin data + call shim.
        unsafe fn shim(p: *const (), i: usize) {
            let f = &*(p as *const &(dyn Fn(usize) + Sync));
            f(i)
        }
        let task = RawTask {
            data: &f as *const &(dyn Fn(usize) + Sync) as *const (),
            call: shim,
            n,
            next: AtomicUsize::new(0),
            remaining: AtomicUsize::new(n),
            inside: AtomicUsize::new(0),
        };
        // Publish.
        {
            let mut slot = self.shared.state.lock().expect("pool lock");
            while slot.task.is_some() {
                slot = self.shared.idle_cv.wait(slot).expect("pool wait");
            }
            slot.task = Some(&task as *const RawTask);
            slot.seq += 1;
            self.shared.work_cv.notify_all();
        }
        // Participate: the caller is always one of the claimants.
        claim_loop(&self.shared, &task);
        // Completion latch: all tasks done AND no worker still holds the
        // pointer — only then is the stack borrow safe to release.
        let mut slot = self.shared.state.lock().expect("pool lock");
        while task.remaining.load(Ordering::Acquire) != 0
            || task.inside.load(Ordering::Acquire) != 0
        {
            slot = self.shared.idle_cv.wait(slot).expect("pool wait");
        }
        slot.task = None;
        // Wake queued publishers.
        self.shared.idle_cv.notify_all();
    }

    /// [`run_scoped`](Self::run_scoped) collecting one result per task
    /// index (allocates the output vector; the dispatch itself stays
    /// allocation-free).
    pub fn map_tasks<T: Send, F: Fn(usize) -> T + Sync>(&self, n: usize, f: F) -> Vec<T> {
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        struct SendPtr<T>(*mut Option<T>);
        unsafe impl<T: Send> Send for SendPtr<T> {}
        unsafe impl<T: Send> Sync for SendPtr<T> {}
        let slots = SendPtr(out.as_mut_ptr());
        let slots_ref = &slots;
        self.run_scoped(n, &move |i| {
            // Each index is claimed exactly once, so writes are disjoint.
            unsafe { *slots_ref.0.add(i) = Some(f(i)) };
        });
        out.into_iter().map(|o| o.expect("pool task completed")).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut slot = self.shared.state.lock().expect("pool lock");
            slot.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Claim and run task indices until none remain.
fn claim_loop(shared: &Shared, task: &RawTask) {
    loop {
        let i = task.next.fetch_add(1, Ordering::Relaxed);
        if i >= task.n {
            return;
        }
        unsafe { (task.call)(task.data, i) };
        if task.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task: wake the publisher. Lock first so the notify can't
            // land between its predicate check and its wait.
            let _guard = shared.state.lock().expect("pool lock");
            shared.idle_cv.notify_all();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut last_seq = 0u64;
    loop {
        let task_ptr = {
            let mut slot = shared.state.lock().expect("pool lock");
            loop {
                if slot.shutdown {
                    return;
                }
                if let Some(p) = slot.task {
                    if slot.seq != last_seq {
                        last_seq = slot.seq;
                        // Register interest while holding the lock: the
                        // publisher cannot observe `inside == 0` and free
                        // the task before this increment is visible.
                        unsafe { (*p).inside.fetch_add(1, Ordering::AcqRel) };
                        break p;
                    }
                }
                slot = shared.work_cv.wait(slot).expect("pool wait");
            }
        };
        let task = unsafe { &*task_ptr };
        claim_loop(shared, task);
        if task.inside.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = shared.state.lock().expect("pool lock");
            shared.idle_cv.notify_all();
        }
    }
}

/// Process-wide shared pool sized to the machine (capped at 16 — serving
/// fan-out is coarse). Spawned on first use, reused by every
/// `search_batch`-style caller thereafter.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let n = thread::available_parallelism().map_or(4, |p| p.get()).min(16);
        // The caller participates too, so n - 1 workers saturate n cores.
        WorkerPool::new(n.saturating_sub(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU32> = (0..100).map(|_| AtomicU32::new(0)).collect();
        pool.run_scoped(100, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_thread_pool_runs_on_caller() {
        let pool = WorkerPool::new(0);
        let sum = AtomicU32::new(0);
        pool.run_scoped(10, &|i| {
            sum.fetch_add(i as u32, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn map_tasks_collects_in_order() {
        let pool = WorkerPool::new(2);
        let out = pool.map_tasks(20, |i| i * i);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_jobs_reuse_threads() {
        let pool = WorkerPool::new(2);
        let before = spawned_threads();
        for round in 0..50 {
            let sum = AtomicU32::new(0);
            pool.run_scoped(8, &|i| {
                sum.fetch_add(i as u32, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 28, "round {round}");
        }
        assert_eq!(spawned_threads(), before, "steady state must not spawn");
    }

    #[test]
    fn concurrent_callers_serialize_without_deadlock() {
        let pool = std::sync::Arc::new(WorkerPool::new(2));
        let total = std::sync::Arc::new(AtomicU32::new(0));
        let mut joins = Vec::new();
        for _ in 0..4 {
            let pool = std::sync::Arc::clone(&pool);
            let total = std::sync::Arc::clone(&total);
            joins.push(thread::spawn(move || {
                for _ in 0..25 {
                    pool.run_scoped(4, &|_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * 25 * 4);
    }
}
