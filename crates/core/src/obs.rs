//! Unified observability substrate: sharded lock-free counters, log2 latency
//! histograms, span timers, and a hierarchical metric [`Registry`].
//!
//! Every pipeline crate records its progress through this module instead of
//! hand-rolled report structs. The legacy structs (`OdkeReport`,
//! `PipelineStats`, `TrainReport`, …) survive as thin views: pipelines record
//! counters and histograms into a [`Scope`], and the structs are derived from
//! (or recorded through) the resulting [`MetricsSnapshot`].
//!
//! Scope names mirror the existing fault-site naming (`odke/extract`,
//! `embeddings/train-bucket`, …) so fault statistics and latency metrics line
//! up in one tree.
//!
//! # Determinism rules
//!
//! Snapshots must be bit-identical across worker counts for a fixed seed:
//!
//! - [`Counter`] sums its shards — addition is commutative, so the total is
//!   independent of which thread landed on which shard.
//! - [`Histogram::merge_into`] adds buckets pairwise — associative and
//!   commutative, so per-worker shards can merge in any order at barriers.
//! - Time is read through the [`Clock`] trait. Production uses [`WallClock`];
//!   deterministic tests install a [`crate::fault::VirtualClock`] so recorded
//!   durations reproduce bit-for-bit under fault injection.
//! - Inside a parallel section, record *values* (counts, retries, sizes), not
//!   clock deltas: a shared virtual clock advanced by sibling workers makes
//!   in-section spans interleaving-dependent. Whole-pass spans (started before
//!   the fan-out, stopped after the join) remain deterministic.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::fault::VirtualClock;

/// Source of monotonic "ticks" for span timers.
///
/// The unit is clock-defined: [`WallClock`] ticks are microseconds,
/// [`crate::fault::VirtualClock`] ticks are its virtual milliseconds. Metrics
/// only ever compare ticks from the same clock, so the unit never needs to be
/// reconciled.
pub trait Clock: Send + Sync {
    /// Current tick count. Must be monotonic non-decreasing.
    fn now_ticks(&self) -> u64;
}

/// Wall-clock [`Clock`]: microseconds elapsed since the clock was created.
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Create a wall clock anchored at "now".
    pub fn new() -> Self {
        WallClock { origin: Instant::now() }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ticks(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

impl Clock for VirtualClock {
    fn now_ticks(&self) -> u64 {
        self.now_ms()
    }
}

/// Number of independent cache-line-padded shards per [`Counter`].
const COUNTER_SHARDS: usize = 16;

static NEXT_SHARD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SHARD_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Shard index for the calling thread: assigned round-robin on first use,
/// cached in a const-initialised thread-local (no allocation on any path).
#[inline]
fn shard_index() -> usize {
    SHARD_SLOT.with(|slot| {
        let cached = slot.get();
        if cached != usize::MAX {
            cached
        } else {
            let id = NEXT_SHARD_SLOT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
            slot.set(id);
            id
        }
    })
}

#[repr(align(64))]
struct CounterShard(AtomicU64);

/// Sharded lock-free monotonic counter.
///
/// Increments land on a per-thread shard (cache-line padded, so concurrent
/// writers do not false-share); [`Counter::value`] sums all shards. Addition
/// is commutative, so the observed total is deterministic regardless of how
/// threads were mapped to shards.
pub struct Counter {
    shards: [CounterShard; COUNTER_SHARDS],
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Counter { shards: std::array::from_fn(|_| CounterShard(AtomicU64::new(0))) }
    }

    /// Add `n` to the calling thread's shard. Lock-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Sum across all shards.
    pub fn value(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter").field("value", &self.value()).finish()
    }
}

/// Number of fixed log2 buckets in a [`Histogram`]: bucket `b` holds values
/// `v` with `64 - v.leading_zeros() == b`, i.e. bucket 0 is exactly `0` and
/// bucket `b >= 1` covers `[2^(b-1), 2^b - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket, used for quantile estimates.
fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Fixed-bucket log2 histogram. Recording is lock-free and allocation-free;
/// merging snapshots is associative and commutative (pairwise bucket sums).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }

    /// Record one observation. Lock-free, allocation-free.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Immutable copy of the current bucket counts and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).fold(0u64, u64::wrapping_add)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty. Unlike going through
    /// [`Histogram::snapshot`] this reads the atomic buckets into a stack
    /// array — no allocation — so admission-control paths can consult the
    /// live p99 per decision. Concurrent recorders may move individual
    /// buckets mid-scan; the result is a valid quantile of *some* recent
    /// state, which is all a shed policy needs.
    pub fn quantile_upper_bound_live(&self, q: f64) -> u64 {
        let mut counts = [0u64; HISTOGRAM_BUCKETS];
        let mut n = 0u64;
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
            n = n.wrapping_add(*c);
        }
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("sum", &self.sum()).finish()
    }
}

/// RAII span timer: records elapsed clock ticks into a histogram on drop.
///
/// Holds `Arc` handles (clone is a refcount bump, not an allocation), so hot
/// paths that pre-resolve their histogram stay allocation-free.
pub struct SpanTimer {
    hist: Arc<Histogram>,
    clock: Arc<dyn Clock>,
    start: u64,
}

impl SpanTimer {
    /// Start timing against `clock`; the elapsed ticks are recorded into
    /// `hist` when the timer drops.
    pub fn start(hist: Arc<Histogram>, clock: Arc<dyn Clock>) -> Self {
        let start = clock.now_ticks();
        SpanTimer { hist, clock, start }
    }

    /// Ticks elapsed so far without stopping the span.
    pub fn elapsed_ticks(&self) -> u64 {
        self.clock.now_ticks().saturating_sub(self.start)
    }

    /// Stop now, recording the elapsed ticks and returning them.
    pub fn stop(self) -> u64 {
        let elapsed = self.elapsed_ticks();
        self.hist.record(elapsed);
        std::mem::forget(self);
        elapsed
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        self.hist.record(self.elapsed_ticks());
    }
}

impl fmt::Debug for SpanTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanTimer").field("start", &self.start).finish()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Histogram(Arc<Histogram>),
}

struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
    clock: Arc<dyn Clock>,
}

/// Hierarchical metric registry.
///
/// Metric names are `/`-separated paths (mirroring fault-site names, e.g.
/// `odke/extract/latency_ticks`). The registry hands out shared handles:
/// resolve once, record many times without locking the registry again.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Registry over a fresh [`WallClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// Registry over an explicit clock (tests pass a
    /// [`crate::fault::VirtualClock`] for bit-reproducible spans).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry { inner: Arc::new(RegistryInner { metrics: Mutex::new(BTreeMap::new()), clock }) }
    }

    /// The registry clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        Arc::clone(&self.inner.clock)
    }

    /// Get or create the counter registered under `name`.
    ///
    /// If `name` is already registered as a histogram, a detached counter is
    /// returned (it records, but never appears in snapshots) — callers are
    /// expected to keep one kind per name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.inner.metrics.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => Arc::clone(c),
            Metric::Histogram(_) => Arc::new(Counter::new()),
        }
    }

    /// Get or create the histogram registered under `name`.
    ///
    /// Kind conflicts behave as in [`Registry::counter`]: the mismatched
    /// handle is detached rather than replacing the registered metric.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.inner.metrics.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            Metric::Counter(_) => Arc::new(Histogram::new()),
        }
    }

    /// Root scope (empty prefix).
    pub fn root(&self) -> Scope {
        Scope { registry: self.clone(), prefix: String::new() }
    }

    /// Scope with the given prefix.
    pub fn scope(&self, name: &str) -> Scope {
        self.root().child(name)
    }

    /// Deterministic point-in-time snapshot of every registered metric,
    /// ordered by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.metrics.lock();
        let mut metrics = BTreeMap::new();
        for (name, metric) in map.iter() {
            let value = match metric {
                Metric::Counter(c) => MetricValue::Counter(c.value()),
                Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            };
            metrics.insert(name.clone(), value);
        }
        MetricsSnapshot { metrics }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let map = self.inner.metrics.lock();
        f.debug_struct("Registry").field("metrics", &map.len()).finish()
    }
}

/// A named prefix into a [`Registry`]; child metric names are joined with `/`.
#[derive(Clone)]
pub struct Scope {
    registry: Registry,
    prefix: String,
}

impl Scope {
    /// Child scope `self.path()/name`.
    pub fn child(&self, name: &str) -> Scope {
        Scope { registry: self.registry.clone(), prefix: self.join(name) }
    }

    fn join(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_string()
        } else {
            format!("{}/{}", self.prefix, name)
        }
    }

    /// This scope's full path (empty for the root scope).
    pub fn path(&self) -> &str {
        &self.prefix
    }

    /// The owning registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The registry clock.
    pub fn clock(&self) -> Arc<dyn Clock> {
        self.registry.clock()
    }

    /// Counter handle under this scope.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.join(name))
    }

    /// Histogram handle under this scope.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.join(name))
    }

    /// Start a span timer recording into `<scope>/<name>` on drop.
    ///
    /// Resolves the histogram through the registry — coarse-grained use only;
    /// hot loops should pre-resolve via [`Scope::histogram`] and use
    /// [`SpanTimer::start`].
    pub fn span(&self, name: &str) -> SpanTimer {
        SpanTimer::start(self.histogram(name), self.clock())
    }
}

impl fmt::Debug for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scope").field("path", &self.prefix).finish()
    }
}

/// Immutable bucket counts of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// One count per log2 bucket ([`HISTOGRAM_BUCKETS`] entries).
    pub counts: Vec<u64>,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { counts: vec![0; HISTOGRAM_BUCKETS], sum: 0 }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.wrapping_add(c))
    }

    /// Mean recorded value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`); 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen = seen.wrapping_add(c);
            if seen >= rank {
                return bucket_upper_bound(b);
            }
        }
        bucket_upper_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Add `other`'s buckets into `self` (associative, commutative).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] = self.counts[b].wrapping_add(c);
        }
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Subtract `baseline`'s buckets from `self` (saturating).
    pub fn diff(&mut self, baseline: &HistogramSnapshot) {
        for (b, c) in self.counts.iter_mut().enumerate() {
            let base = baseline.counts.get(b).copied().unwrap_or(0);
            *c = c.saturating_sub(base);
        }
        self.sum = self.sum.saturating_sub(baseline.sum);
    }
}

/// One metric's value inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Histogram bucket counts.
    Histogram(HistogramSnapshot),
}

/// Deterministic, merge-associative snapshot of a [`Registry`].
///
/// Ordered by metric name (`BTreeMap`), so two snapshots of equal recorded
/// state are bit-identical — the acceptance criterion for reproducibility
/// across worker counts.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge `other` into `self`.
    ///
    /// Counters add; histograms add bucket-wise. In the degenerate case where
    /// the same name carries a counter on one side and a histogram on the
    /// other, the counter folds into the histogram's sum — this keeps the
    /// merge total, associative and commutative.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), value.clone());
                }
                Some(MetricValue::Counter(a)) => match value {
                    MetricValue::Counter(b) => *a = a.wrapping_add(*b),
                    MetricValue::Histogram(h) => {
                        let mut merged = h.clone();
                        merged.sum = merged.sum.wrapping_add(*a);
                        self.metrics.insert(name.clone(), MetricValue::Histogram(merged));
                    }
                },
                Some(MetricValue::Histogram(h)) => match value {
                    MetricValue::Counter(b) => h.sum = h.sum.wrapping_add(*b),
                    MetricValue::Histogram(other_h) => h.merge(other_h),
                },
            }
        }
    }

    /// Subtract `baseline` from `self`, yielding the delta recorded between
    /// the two snapshots (used to derive per-pass report structs).
    pub fn diff(&mut self, baseline: &MetricsSnapshot) {
        for (name, value) in &mut self.metrics {
            match (value, baseline.metrics.get(name)) {
                (MetricValue::Counter(a), Some(MetricValue::Counter(b))) => {
                    *a = a.saturating_sub(*b);
                }
                (MetricValue::Histogram(h), Some(MetricValue::Histogram(b))) => {
                    h.diff(b);
                }
                _ => {}
            }
        }
    }

    /// Counter total under `name` (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot under `name`, if registered as one.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Hand-rolled JSON encoding (no serde on the runtime path): an object
    /// mapping metric name to either a counter integer or a histogram object
    /// `{"type":"histogram","count":..,"sum":..,"buckets":[..]}` with trailing
    /// zero buckets trimmed.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, value) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n  \"{}\": ", escape_json(name));
            match value {
                MetricValue::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                MetricValue::Histogram(h) => {
                    let last = h.counts.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                        h.count(),
                        h.sum
                    );
                    for (i, c) in h.counts[..last].iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{c}");
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Render the snapshot as an indented tree, grouping metrics by their
    /// `/`-separated path segments.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let mut prev: Vec<&str> = Vec::new();
        for (name, value) in &self.metrics {
            let segs: Vec<&str> = name.split('/').collect();
            let dirs = segs.len() - 1;
            let mut common = 0;
            while common < dirs && common < prev.len() && prev[common] == segs[common] {
                common += 1;
            }
            for (depth, seg) in segs[..dirs].iter().enumerate().skip(common) {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                let _ = writeln!(out, "{seg}");
            }
            for _ in 0..dirs {
                out.push_str("  ");
            }
            let leaf = segs[dirs];
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{leaf}: {v}");
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(
                        out,
                        "{leaf}: histogram count={} sum={} mean={:.1} p50<={} p99<={}",
                        h.count(),
                        h.sum,
                        h.mean(),
                        h.quantile_upper_bound(0.5),
                        h.quantile_upper_bound(0.99),
                    );
                }
            }
            prev = segs[..dirs].to_vec();
        }
        out
    }
}

/// Records which kernel backend serves this process (and the CPU features
/// that drove the choice) into `registry` under the `kernels/backend/…` and
/// `kernels/cpu/…` scopes, returning the active backend name.
///
/// Presence counters (value 1) rather than values: the snapshot tree then
/// shows e.g. `kernels/backend/avx2 = 1` in `saga stats pipeline` output and
/// in every metrics artifact derived from the registry, so any recorded run
/// carries which kernel implementation produced its numbers.
pub fn record_kernel_backend(registry: &Registry) -> &'static str {
    let backend = crate::kernels::backend_name();
    let kernels = registry.scope("kernels");
    kernels.child("backend").counter(backend).inc();
    let cpu = kernels.child("cpu");
    for feature in crate::kernels::detected_cpu_features() {
        cpu.counter(feature).inc();
    }
    backend
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn kernel_backend_recorded_in_snapshot() {
        let registry = Registry::new();
        let backend = record_kernel_backend(&registry);
        assert_eq!(backend, crate::kernels::backend_name());
        let snap = registry.snapshot();
        assert_eq!(
            snap.metrics.get(&format!("kernels/backend/{backend}")),
            Some(&MetricValue::Counter(1))
        );
        // Every detected CPU feature appears as a presence counter.
        for feature in crate::kernels::detected_cpu_features() {
            assert_eq!(
                snap.metrics.get(&format!("kernels/cpu/{feature}")),
                Some(&MetricValue::Counter(1))
            );
        }
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn histogram_records_and_estimates() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        assert_eq!(snap.sum, 1106);
        assert!(snap.mean() > 184.0 && snap.mean() < 185.0);
        assert_eq!(snap.quantile_upper_bound(0.0), 0);
        assert!(snap.quantile_upper_bound(1.0) >= 1000);
    }

    #[test]
    fn live_quantile_matches_snapshot_quantile() {
        let h = Histogram::new();
        assert_eq!(h.quantile_upper_bound_live(0.99), 0);
        for v in [0u64, 1, 2, 3, 7, 100, 250, 1000, 4096] {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile_upper_bound_live(q), snap.quantile_upper_bound(q), "q={q}");
        }
    }

    #[test]
    fn snapshot_merge_counters_and_histograms() {
        let r1 = Registry::new();
        r1.counter("a/n").add(3);
        r1.histogram("a/h").record(5);
        let r2 = Registry::new();
        r2.counter("a/n").add(4);
        r2.histogram("a/h").record(9);
        let mut s = r1.snapshot();
        s.merge(&r2.snapshot());
        assert_eq!(s.counter("a/n"), 7);
        let h = s.histogram("a/h").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum, 14);
    }

    #[test]
    fn snapshot_diff_yields_per_pass_delta() {
        let r = Registry::new();
        let c = r.counter("docs");
        c.add(5);
        let before = r.snapshot();
        c.add(7);
        let mut after = r.snapshot();
        after.diff(&before);
        assert_eq!(after.counter("docs"), 7);
    }

    #[test]
    fn span_timer_records_virtual_elapsed() {
        let clock = Arc::new(VirtualClock::new());
        let reg = Registry::with_clock(clock.clone());
        let hist = reg.histogram("op/latency_ticks");
        {
            let span = SpanTimer::start(Arc::clone(&hist), reg.clock());
            clock.advance_ms(10);
            drop(span);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 1);
        assert_eq!(snap.sum, 10);
    }

    #[test]
    fn scope_paths_join_with_slash() {
        let reg = Registry::new();
        let scope = reg.scope("odke").child("extract");
        scope.counter("docs").inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("odke/extract/docs"), 1);
    }

    #[test]
    fn render_tree_groups_segments() {
        let reg = Registry::new();
        reg.counter("odke/extract/docs").add(2);
        reg.counter("odke/retries").add(1);
        reg.histogram("odke/extract/latency_ticks").record(4);
        let tree = reg.snapshot().render_tree();
        assert!(tree.contains("odke\n"));
        assert!(tree.contains("  extract\n"));
        assert!(tree.contains("    docs: 2"));
        assert!(tree.contains("  retries: 1"));
        assert!(tree.contains("latency_ticks: histogram count=1"));
    }

    #[test]
    fn json_is_hand_rolled_and_trims_buckets() {
        let reg = Registry::new();
        reg.counter("n").add(3);
        reg.histogram("h").record(2);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"n\": 3"));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"buckets\":[0,0,1]"));
    }

    #[test]
    fn detached_handles_on_kind_conflict() {
        let reg = Registry::new();
        reg.counter("x").add(1);
        let h = reg.histogram("x");
        h.record(9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 1);
        assert!(snap.histogram("x").is_none());
    }
}
