//! Deterministic Zipfian request traces for the serving load harness.
//!
//! The serving benchmarks (`saga-serve`, `saga serve-bench`, and the
//! standalone `tools/bench_serve.rs` harness) all replay the same synthetic
//! open-domain workload: a skewed mix of point lookups and ANN searches whose
//! popularity follows the [`zipf_popularity`] curve the synthetic KG uses for
//! entity popularity. Generating the trace up front — instead of sampling
//! inside the load generator — is what makes the harness reproducible: a
//! fixed seed yields a bit-identical request sequence regardless of how many
//! worker threads later replay it, so shed/served counts can be asserted
//! exactly across configurations.
//!
//! Like `kernels`, this module is deliberately dependency-free (`std` only,
//! hand-rolled SplitMix64/xorshift instead of the `rand` crate) so the
//! standalone serving harness can compile it directly via `#[path]` without
//! cargo.

/// One step of the SplitMix64 mixer: a high-quality 64→64 bit finalizer.
///
/// Used both as the PRNG state update and as a standalone hash (entity →
/// shard routing uses it so that sequential entity ids spread uniformly).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Minimal deterministic PRNG (SplitMix64 sequence). Not cryptographic;
/// statistically solid for workload synthesis and cheap enough to sit in a
/// generation loop.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// PRNG seeded so that nearby seeds produce uncorrelated streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: splitmix64(seed ^ 0x5851_f42d_4c95_7f2d) }
    }

    /// Next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n,
        // irrelevant at workload scale.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Popularity of the entity at `rank` (0 = most popular) among `n`: the
/// canonical skew curve shared by the synthetic KG generator
/// (`synth::generate` sets entity popularity from it) and the serving
/// workload sampler, so load tests hit the store with the same skew the data
/// was built with. Roughly Zipf with exponent 0.7 plus a linear tail fade.
pub fn zipf_popularity(rank: usize, n: usize) -> f32 {
    // popularity ∝ 1/rank, normalized so rank 0 ≈ 1.0.
    let r = rank as f32 + 1.0;
    (1.0 / r).powf(0.7).min(1.0) * (1.0 - (rank as f32 / (n as f32 * 4.0))).max(0.1)
}

/// Samples ranks `0..n` with probability proportional to
/// [`zipf_popularity`]. Builds the CDF once (one allocation); each sample is
/// then a binary search — allocation-free and O(log n).
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Sampler over `n` ranks; `n` must be non-zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += zipf_popularity(rank, n) as f64;
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw one rank. Allocation-free.
    pub fn sample(&self, rng: &mut SplitMix64) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = rng.next_f64() * total;
        // partition_point: first index whose cumulative mass exceeds u.
        self.cdf.partition_point(|&c| c <= u).min(self.cdf.len() - 1)
    }
}

/// What a request asks the serving layer to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Point lookup of one entity's facts; routed to the owning shard.
    Lookup {
        /// Entity key (dense rank hashed through [`splitmix64`] so routing
        /// sees uniformly spread keys with Zipf-skewed frequencies).
        entity: u64,
    },
    /// ANN search; fans out to every shard and merges top-k.
    Search {
        /// Seed for the deterministic query vector. Drawn from a small
        /// Zipf-skewed pool so hot queries repeat — the coalescing-friendly
        /// shape real serving traffic has.
        query_seed: u64,
    },
}

/// One request in a synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Position in the trace (stable across replays; used as the fault-plan
    /// key in brownout scenarios).
    pub id: u32,
    /// Lookup or search.
    pub kind: RequestKind,
    /// Open-loop arrival offset from trace start, in abstract ticks at the
    /// trace's native rate (exponential inter-arrivals, mean
    /// [`TraceConfig::mean_interarrival_ticks`]). Closed-loop replay ignores
    /// it; open-loop replay rescales it to the target rate with integer
    /// arithmetic so the schedule stays deterministic.
    pub arrival_ticks: u64,
}

/// Parameters for [`generate_trace`]. Everything is data — two equal configs
/// produce bit-identical traces.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// PRNG seed; the only source of randomness.
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: usize,
    /// Entity universe size for lookups (ranks `0..entities`).
    pub entities: usize,
    /// Distinct query identities for searches (hot queries repeat).
    pub query_pool: usize,
    /// Fraction of requests that are point lookups (rest are searches).
    pub lookup_fraction: f64,
    /// Mean exponential inter-arrival gap, in ticks.
    pub mean_interarrival_ticks: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            seed: 0xC0FFEE,
            requests: 10_000,
            entities: 100_000,
            query_pool: 1_000,
            lookup_fraction: 0.7,
            mean_interarrival_ticks: 1_000,
        }
    }
}

/// Generate a request trace. Deterministic in the config: same config ⇒
/// bit-identical `Vec<Request>` (see [`trace_fingerprint`]).
pub fn generate_trace(cfg: &TraceConfig) -> Vec<Request> {
    assert!(cfg.entities > 0 && cfg.query_pool > 0, "empty universes");
    let mut rng = SplitMix64::new(cfg.seed);
    let entity_zipf = ZipfSampler::new(cfg.entities);
    let query_zipf = ZipfSampler::new(cfg.query_pool);
    let mut out = Vec::with_capacity(cfg.requests);
    let mut clock = 0u64;
    for id in 0..cfg.requests {
        // Exponential inter-arrival; ceil keeps gaps >= 1 tick so arrival
        // order is strictly increasing and replay never divides by zero.
        let u = rng.next_f64();
        let gap = (-(1.0 - u).ln() * cfg.mean_interarrival_ticks as f64).ceil();
        clock += (gap as u64).max(1);
        let kind = if rng.next_f64() < cfg.lookup_fraction {
            let rank = entity_zipf.sample(&mut rng);
            RequestKind::Lookup { entity: splitmix64(rank as u64) }
        } else {
            let rank = query_zipf.sample(&mut rng);
            RequestKind::Search { query_seed: splitmix64(0x5EA2C4 ^ rank as u64) }
        };
        out.push(Request { id: id as u32, kind, arrival_ticks: clock });
    }
    out
}

/// Order-sensitive 64-bit fingerprint of a trace. Two traces fingerprint
/// equal iff every field of every request matches — the determinism tests
/// compare this instead of materializing both traces.
pub fn trace_fingerprint(trace: &[Request]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    let mut fold = |v: u64| {
        acc = splitmix64(acc ^ v);
    };
    for r in trace {
        fold(r.id as u64);
        match r.kind {
            RequestKind::Lookup { entity } => {
                fold(1);
                fold(entity);
            }
            RequestKind::Search { query_seed } => {
                fold(2);
                fold(query_seed);
            }
        }
        fold(r.arrival_ticks);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_and_seed_sensitive() {
        let cfg = TraceConfig { requests: 2_000, ..TraceConfig::default() };
        let a = generate_trace(&cfg);
        let b = generate_trace(&cfg);
        assert_eq!(a, b);
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&b));
        let c = generate_trace(&TraceConfig { seed: cfg.seed + 1, ..cfg });
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&c));
    }

    #[test]
    fn fingerprint_is_order_and_field_sensitive() {
        let cfg = TraceConfig { requests: 64, ..TraceConfig::default() };
        let a = generate_trace(&cfg);
        let mut swapped = a.clone();
        swapped.swap(0, 1);
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&swapped));
        let mut bumped = a.clone();
        bumped[10].arrival_ticks += 1;
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&bumped));
    }

    #[test]
    fn mix_and_skew_are_roughly_respected() {
        let cfg = TraceConfig { requests: 20_000, lookup_fraction: 0.7, ..TraceConfig::default() };
        let trace = generate_trace(&cfg);
        let lookups = trace.iter().filter(|r| matches!(r.kind, RequestKind::Lookup { .. })).count();
        let frac = lookups as f64 / trace.len() as f64;
        assert!((frac - 0.7).abs() < 0.02, "lookup fraction {frac}");
        // Zipf skew: the single hottest entity should absorb far more than a
        // uniform share of lookups.
        let hot = splitmix64(0);
        let hot_hits = trace
            .iter()
            .filter(|r| matches!(r.kind, RequestKind::Lookup { entity } if entity == hot))
            .count();
        assert!(
            hot_hits as f64 > 20.0 * lookups as f64 / cfg.entities as f64,
            "hot entity hits {hot_hits} of {lookups}"
        );
    }

    #[test]
    fn arrivals_strictly_increase_with_sane_mean() {
        let cfg = TraceConfig { requests: 5_000, ..TraceConfig::default() };
        let trace = generate_trace(&cfg);
        for w in trace.windows(2) {
            assert!(w[1].arrival_ticks > w[0].arrival_ticks);
        }
        let span = trace.last().unwrap().arrival_ticks as f64;
        let mean = span / trace.len() as f64;
        let target = cfg.mean_interarrival_ticks as f64;
        assert!(mean > 0.8 * target && mean < 1.2 * target, "mean gap {mean}");
    }

    #[test]
    fn zipf_sampler_orders_mass_by_rank() {
        let z = ZipfSampler::new(100);
        let mut rng = SplitMix64::new(7);
        let mut counts = [0u32; 100];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[60]);
        assert!(counts[0] > 1_500, "rank 0 drew {}", counts[0]);
    }
}
