//! NEON backend: explicit `core::arch` intrinsics for the scoring hot path
//! on `aarch64`.
//!
//! NEON is architecturally baseline on AArch64, so [`available`] is a
//! formality — but the backend still goes through the same runtime-dispatch
//! table as AVX2 so behavior (force hook, env override, provenance
//! recording) is uniform across architectures. The wins mirror the x86
//! backend's: hardware FMA chains (`vfmaq_f32`) with explicit register
//! accumulators, fused single-pass cosine, and widening i8 sequences
//! (`vmull_s8`/`vpadalq_s16` for the integer dot, `vmovl_s8`→`vmovl_s16`→
//! `vcvtq_f32_s32` feeding FMA for the mixed f32·i8 dot) that the
//! autovectorizer does not emit for the portable loop shapes.
//!
//! Integer kernels are exact and match the portable backend bit-for-bit;
//! f32 kernels differ only by reassociation/FMA rounding (pinned by the
//! property suite, same contract as [`super::x86`]).

use super::Backend;
use core::arch::aarch64::*;

/// True when the running CPU supports this backend.
pub fn available() -> bool {
    std::arch::is_aarch64_feature_detected!("neon")
}

/// The NEON kernel table. Must only be installed after [`available`]
/// returned true.
pub static BACKEND: Backend = Backend {
    name: "neon",
    dot,
    l2_sq,
    norm_sq,
    cosine,
    cosine_qnorm,
    dot3,
    translate_l2_sq,
    dot_i8i8,
    dot_f32i8,
    norm_sq_i8,
    l2_sq_f32i8_direct,
    dot_block,
    l2_sq_block,
    cosine_qnorm_block,
    dot_f32i8_block,
};

const _: () = assert!(super::ROW_TILE == 4, "tiled kernels are unrolled for 4 rows");

// Safe table wrappers. SAFETY (shared by all): `BACKEND` is only selected
// by the dispatcher (or the force hook) after `available()` confirmed neon
// on this CPU, so calling the `target_feature` impls is sound.

fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { dot_impl(a, b) }
}

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { l2_sq_impl(a, b) }
}

fn norm_sq(v: &[f32]) -> f32 {
    unsafe { norm_sq_impl(v) }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { cosine_impl(a, b) }
}

fn cosine_qnorm(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { cosine_qnorm_impl(q, q_norm, b) }
}

fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    unsafe { dot3_impl(a, b, c) }
}

fn translate_l2_sq(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert!(h.len() == r.len() && r.len() == t.len());
    unsafe { translate_l2_sq_impl(h, r, t) }
}

fn dot_i8i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { dot_i8i8_impl(a, b) }
}

fn dot_f32i8(q: &[f32], b: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { dot_f32i8_impl(q, b) }
}

fn norm_sq_i8(v: &[i8]) -> i32 {
    unsafe { norm_sq_i8_impl(v) }
}

fn l2_sq_f32i8_direct(q: &[f32], b: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { l2_sq_f32i8_direct_impl(q, b, scale) }
}

fn dot_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { dot_block_impl(q, block, out) }
}

fn l2_sq_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { l2_sq_block_impl(q, block, out) }
}

fn cosine_qnorm_block(q: &[f32], q_norm: f32, block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { cosine_qnorm_block_impl(q, q_norm, block, out) }
}

fn dot_f32i8_block(q: &[f32], block: &[i8], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { dot_f32i8_block_impl(q, block, out) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc2 = vfmaq_f32(acc2, vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
        acc3 = vfmaq_f32(acc3, vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
        i += 16;
    }
    while i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        i += 4;
    }
    let mut s = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
    while i < n {
        s += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    s
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        i += 8;
    }
    while i + 4 <= n {
        let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        s += d * d;
        i += 1;
    }
    s
}

#[target_feature(enable = "neon")]
unsafe fn norm_sq_impl(v: &[f32]) -> f32 {
    let n = v.len();
    let pv = v.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let x0 = vld1q_f32(pv.add(i));
        let x1 = vld1q_f32(pv.add(i + 4));
        acc0 = vfmaq_f32(acc0, x0, x0);
        acc1 = vfmaq_f32(acc1, x1, x1);
        i += 8;
    }
    while i + 4 <= n {
        let x = vld1q_f32(pv.add(i));
        acc0 = vfmaq_f32(acc0, x, x);
        i += 4;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let x = *pv.add(i);
        s += x * x;
        i += 1;
    }
    s
}

/// Fused single-pass cosine (see [`super::x86::cosine`] for why the fused
/// shape is viable with explicit register accumulators).
#[target_feature(enable = "neon")]
unsafe fn cosine_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut d0 = vdupq_n_f32(0.0);
    let mut na0 = vdupq_n_f32(0.0);
    let mut nb0 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        let x = vld1q_f32(pa.add(i));
        let y = vld1q_f32(pb.add(i));
        d0 = vfmaq_f32(d0, x, y);
        na0 = vfmaq_f32(na0, x, x);
        nb0 = vfmaq_f32(nb0, y, y);
        i += 4;
    }
    let mut d = vaddvq_f32(d0);
    let mut na = vaddvq_f32(na0);
    let mut nb = vaddvq_f32(nb0);
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        d += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

#[target_feature(enable = "neon")]
unsafe fn cosine_qnorm_impl(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let mut d0 = vdupq_n_f32(0.0);
    let mut d1 = vdupq_n_f32(0.0);
    let mut nb0 = vdupq_n_f32(0.0);
    let mut nb1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let x0 = vld1q_f32(pq.add(i));
        let y0 = vld1q_f32(pb.add(i));
        let x1 = vld1q_f32(pq.add(i + 4));
        let y1 = vld1q_f32(pb.add(i + 4));
        d0 = vfmaq_f32(d0, x0, y0);
        d1 = vfmaq_f32(d1, x1, y1);
        nb0 = vfmaq_f32(nb0, y0, y0);
        nb1 = vfmaq_f32(nb1, y1, y1);
        i += 8;
    }
    while i + 4 <= n {
        let x = vld1q_f32(pq.add(i));
        let y = vld1q_f32(pb.add(i));
        d0 = vfmaq_f32(d0, x, y);
        nb0 = vfmaq_f32(nb0, y, y);
        i += 4;
    }
    let mut d = vaddvq_f32(vaddq_f32(d0, d1));
    let mut nb = vaddvq_f32(vaddq_f32(nb0, nb1));
    while i < n {
        let x = *pq.add(i);
        let y = *pb.add(i);
        d += x * y;
        nb += y * y;
        i += 1;
    }
    if q_norm == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (q_norm * nb.sqrt())
    }
}

#[target_feature(enable = "neon")]
unsafe fn dot3_impl(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    let n = a.len().min(b.len()).min(c.len());
    let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let t0 = vmulq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        let t1 = vmulq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc0 = vfmaq_f32(acc0, t0, vld1q_f32(pc.add(i)));
        acc1 = vfmaq_f32(acc1, t1, vld1q_f32(pc.add(i + 4)));
        i += 8;
    }
    while i + 4 <= n {
        let t = vmulq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, t, vld1q_f32(pc.add(i)));
        i += 4;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        s += *pa.add(i) * *pb.add(i) * *pc.add(i);
        i += 1;
    }
    s
}

#[target_feature(enable = "neon")]
unsafe fn translate_l2_sq_impl(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    let n = h.len().min(r.len()).min(t.len());
    let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let d0 =
            vsubq_f32(vaddq_f32(vld1q_f32(ph.add(i)), vld1q_f32(pr.add(i))), vld1q_f32(pt.add(i)));
        let d1 = vsubq_f32(
            vaddq_f32(vld1q_f32(ph.add(i + 4)), vld1q_f32(pr.add(i + 4))),
            vld1q_f32(pt.add(i + 4)),
        );
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        i += 8;
    }
    while i + 4 <= n {
        let d =
            vsubq_f32(vaddq_f32(vld1q_f32(ph.add(i)), vld1q_f32(pr.add(i))), vld1q_f32(pt.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let d = *ph.add(i) + *pr.add(i) - *pt.add(i);
        s += d * d;
        i += 1;
    }
    s
}

/// Pure-integer dot: widening multiply (`vmull_s8`/`vmull_high_s8`) into
/// i16 products, pairwise-accumulated into i32 lanes (`vpadalq_s16`) —
/// exact, bit-identical to the portable backend.
#[target_feature(enable = "neon")]
unsafe fn dot_i8i8_impl(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = vdupq_n_s32(0);
    let mut i = 0usize;
    while i + 16 <= n {
        let va = vld1q_s8(pa.add(i));
        let vb = vld1q_s8(pb.add(i));
        let lo = vmull_s8(vget_low_s8(va), vget_low_s8(vb));
        let hi = vmull_high_s8(va, vb);
        acc = vpadalq_s16(acc, lo);
        acc = vpadalq_s16(acc, hi);
        i += 16;
    }
    let mut s = vaddvq_s32(acc);
    while i < n {
        s += *pa.add(i) as i32 * *pb.add(i) as i32;
        i += 1;
    }
    s
}

/// Mixed f32·i8 dot: sign-extend 8 bytes through i16 to two i32x4 lanes,
/// convert to f32 (`vcvtq_f32_s32`), FMA against the query.
#[target_feature(enable = "neon")]
unsafe fn dot_f32i8_impl(q: &[f32], b: &[i8]) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let bytes = vld1_s8(pb.add(i));
        let wide = vmovl_s8(bytes);
        let lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(wide)));
        let hi = vcvtq_f32_s32(vmovl_high_s16(wide));
        acc0 = vfmaq_f32(acc0, vld1q_f32(pq.add(i)), lo);
        acc1 = vfmaq_f32(acc1, vld1q_f32(pq.add(i + 4)), hi);
        i += 8;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        s += *pq.add(i) * *pb.add(i) as f32;
        i += 1;
    }
    s
}

#[target_feature(enable = "neon")]
unsafe fn norm_sq_i8_impl(v: &[i8]) -> i32 {
    let n = v.len();
    let pv = v.as_ptr();
    let mut acc = vdupq_n_s32(0);
    let mut i = 0usize;
    while i + 16 <= n {
        let x = vld1q_s8(pv.add(i));
        let lo = vmull_s8(vget_low_s8(x), vget_low_s8(x));
        let hi = vmull_high_s8(x, x);
        acc = vpadalq_s16(acc, lo);
        acc = vpadalq_s16(acc, hi);
        i += 16;
    }
    let mut s = vaddvq_s32(acc);
    while i < n {
        let x = *pv.add(i) as i32;
        s += x * x;
        i += 1;
    }
    s
}

/// Tiled batch dot: four rows share each resident 4-lane query load (see
/// [`super::x86::dot_block`] for the load-amortization argument; the NEON
/// shape is identical at half the vector width).
#[target_feature(enable = "neon")]
unsafe fn dot_block_impl(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= dim {
            let qv = vld1q_f32(pq.add(i));
            acc0 = vfmaq_f32(acc0, qv, vld1q_f32(r0.add(i)));
            acc1 = vfmaq_f32(acc1, qv, vld1q_f32(r1.add(i)));
            acc2 = vfmaq_f32(acc2, qv, vld1q_f32(r2.add(i)));
            acc3 = vfmaq_f32(acc3, qv, vld1q_f32(r3.add(i)));
            i += 4;
        }
        let mut s0 = vaddvq_f32(acc0);
        let mut s1 = vaddvq_f32(acc1);
        let mut s2 = vaddvq_f32(acc2);
        let mut s3 = vaddvq_f32(acc3);
        while i < dim {
            let qv = *pq.add(i);
            s0 += qv * *r0.add(i);
            s1 += qv * *r1.add(i);
            s2 += qv * *r2.add(i);
            s3 += qv * *r3.add(i);
            i += 1;
        }
        out[4 * t] = s0;
        out[4 * t + 1] = s1;
        out[4 * t + 2] = s2;
        out[4 * t + 3] = s3;
    }
    for r in tiles * 4..rows {
        out[r] = dot_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch squared Euclidean distance (see [`dot_block_impl`]).
#[target_feature(enable = "neon")]
unsafe fn l2_sq_block_impl(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= dim {
            let qv = vld1q_f32(pq.add(i));
            let d0 = vsubq_f32(qv, vld1q_f32(r0.add(i)));
            let d1 = vsubq_f32(qv, vld1q_f32(r1.add(i)));
            let d2 = vsubq_f32(qv, vld1q_f32(r2.add(i)));
            let d3 = vsubq_f32(qv, vld1q_f32(r3.add(i)));
            acc0 = vfmaq_f32(acc0, d0, d0);
            acc1 = vfmaq_f32(acc1, d1, d1);
            acc2 = vfmaq_f32(acc2, d2, d2);
            acc3 = vfmaq_f32(acc3, d3, d3);
            i += 4;
        }
        let mut s0 = vaddvq_f32(acc0);
        let mut s1 = vaddvq_f32(acc1);
        let mut s2 = vaddvq_f32(acc2);
        let mut s3 = vaddvq_f32(acc3);
        while i < dim {
            let qv = *pq.add(i);
            let (d0, d1, d2, d3) =
                (qv - *r0.add(i), qv - *r1.add(i), qv - *r2.add(i), qv - *r3.add(i));
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
            i += 1;
        }
        out[4 * t] = s0;
        out[4 * t + 1] = s1;
        out[4 * t + 2] = s2;
        out[4 * t + 3] = s3;
    }
    for r in tiles * 4..rows {
        out[r] = l2_sq_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch serving-shape cosine: dot and candidate norm fused per row,
/// four rows per tile.
#[target_feature(enable = "neon")]
unsafe fn cosine_qnorm_block_impl(q: &[f32], q_norm: f32, block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut d0 = vdupq_n_f32(0.0);
        let mut d1 = vdupq_n_f32(0.0);
        let mut d2 = vdupq_n_f32(0.0);
        let mut d3 = vdupq_n_f32(0.0);
        let mut n0 = vdupq_n_f32(0.0);
        let mut n1 = vdupq_n_f32(0.0);
        let mut n2 = vdupq_n_f32(0.0);
        let mut n3 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 4 <= dim {
            let qv = vld1q_f32(pq.add(i));
            let y0 = vld1q_f32(r0.add(i));
            let y1 = vld1q_f32(r1.add(i));
            let y2 = vld1q_f32(r2.add(i));
            let y3 = vld1q_f32(r3.add(i));
            d0 = vfmaq_f32(d0, qv, y0);
            d1 = vfmaq_f32(d1, qv, y1);
            d2 = vfmaq_f32(d2, qv, y2);
            d3 = vfmaq_f32(d3, qv, y3);
            n0 = vfmaq_f32(n0, y0, y0);
            n1 = vfmaq_f32(n1, y1, y1);
            n2 = vfmaq_f32(n2, y2, y2);
            n3 = vfmaq_f32(n3, y3, y3);
            i += 4;
        }
        let mut ds = [vaddvq_f32(d0), vaddvq_f32(d1), vaddvq_f32(d2), vaddvq_f32(d3)];
        let mut ns = [vaddvq_f32(n0), vaddvq_f32(n1), vaddvq_f32(n2), vaddvq_f32(n3)];
        while i < dim {
            let qv = *pq.add(i);
            let (y0, y1, y2, y3) = (*r0.add(i), *r1.add(i), *r2.add(i), *r3.add(i));
            ds[0] += qv * y0;
            ds[1] += qv * y1;
            ds[2] += qv * y2;
            ds[3] += qv * y3;
            ns[0] += y0 * y0;
            ns[1] += y1 * y1;
            ns[2] += y2 * y2;
            ns[3] += y3 * y3;
            i += 1;
        }
        for k in 0..4 {
            out[4 * t + k] =
                if q_norm == 0.0 || ns[k] == 0.0 { 0.0 } else { ds[k] / (q_norm * ns[k].sqrt()) };
        }
    }
    for r in tiles * 4..rows {
        out[r] = cosine_qnorm_impl(q, q_norm, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch mixed f32·i8 dot: two rows per tile — the 8-dim widening
/// step already needs two accumulators per row, so two rows keep the
/// accumulator count at four and each pair of query loads amortized.
#[target_feature(enable = "neon")]
unsafe fn dot_f32i8_block_impl(q: &[f32], block: &[i8], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 2;
    for t in 0..tiles {
        let r0 = pb.add(2 * t * dim);
        let r1 = r0.add(dim);
        let mut acc00 = vdupq_n_f32(0.0);
        let mut acc01 = vdupq_n_f32(0.0);
        let mut acc10 = vdupq_n_f32(0.0);
        let mut acc11 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 8 <= dim {
            let q0 = vld1q_f32(pq.add(i));
            let q1 = vld1q_f32(pq.add(i + 4));
            let w0 = vmovl_s8(vld1_s8(r0.add(i)));
            let w1 = vmovl_s8(vld1_s8(r1.add(i)));
            acc00 = vfmaq_f32(acc00, q0, vcvtq_f32_s32(vmovl_s16(vget_low_s16(w0))));
            acc01 = vfmaq_f32(acc01, q1, vcvtq_f32_s32(vmovl_high_s16(w0)));
            acc10 = vfmaq_f32(acc10, q0, vcvtq_f32_s32(vmovl_s16(vget_low_s16(w1))));
            acc11 = vfmaq_f32(acc11, q1, vcvtq_f32_s32(vmovl_high_s16(w1)));
            i += 8;
        }
        let mut s0 = vaddvq_f32(vaddq_f32(acc00, acc01));
        let mut s1 = vaddvq_f32(vaddq_f32(acc10, acc11));
        while i < dim {
            let qv = *pq.add(i);
            s0 += qv * *r0.add(i) as f32;
            s1 += qv * *r1.add(i) as f32;
            i += 1;
        }
        out[2 * t] = s0;
        out[2 * t + 1] = s1;
    }
    for r in tiles * 2..rows {
        out[r] = dot_f32i8_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_f32i8_direct_impl(q: &[f32], b: &[i8], scale: f32) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let vs = vdupq_n_f32(scale);
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 8 <= n {
        let bytes = vld1_s8(pb.add(i));
        let wide = vmovl_s8(bytes);
        let lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(wide)));
        let hi = vcvtq_f32_s32(vmovl_high_s16(wide));
        // d = q − scale·b via fused multiply-subtract, matching the fused
        // rounding of the accumulate below.
        let d0 = vfmsq_f32(vld1q_f32(pq.add(i)), vs, lo);
        let d1 = vfmsq_f32(vld1q_f32(pq.add(i + 4)), vs, hi);
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        i += 8;
    }
    let mut s = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        let d = *pq.add(i) - scale * *pb.add(i) as f32;
        s += d * d;
        i += 1;
    }
    s
}
