//! Shared dense-vector kernels — the single hot-path implementation of
//! dot/L2/cosine scoring used by every serving and training layer.
//!
//! The paper's serving stack leans on one primitive everywhere: dense
//! vector scoring (graph-embedding fact ranking, the cached-entity-embedding
//! contextual reranker, the low-latency kNN tier). Centralizing it here
//! keeps one fast implementation instead of N naive scalar loops.
//!
//! # Backend dispatch
//!
//! Three backends implement the same kernel table ([`Backend`]):
//!
//! - [`portable`] — autovectorized lane-unrolled loops; always compiled on
//!   every architecture and the reference the intrinsic backends are pinned
//!   against.
//! - [`x86`] — AVX2(+FMA) `core::arch` intrinsics, compiled on `x86_64`
//!   when the `simd` cargo feature (default-on) is enabled.
//! - [`neon`] — NEON intrinsics, compiled on `aarch64` under the same
//!   feature.
//!
//! Selection happens **once**, at first kernel call: runtime CPU-feature
//! detection (`is_x86_feature_detected!` / `is_aarch64_feature_detected!`)
//! resolves into a `OnceLock`'d table of function pointers, so the default
//! binary reaches native-target kernel speed without `-C target-cpu=native`
//! and the warm serving path pays one predictable indirect call per kernel
//! (batch variants resolve the table once per block, not per row). Building
//! with `--no-default-features` removes the intrinsic backends and the
//! dispatch indirection entirely — public functions compile to direct calls
//! into [`portable`], bit-for-bit today's behavior.
//!
//! Overrides, in precedence order: [`force_backend`] (test/bench hook),
//! the `SAGA_KERNEL_BACKEND` environment variable (`portable` / `avx2` /
//! `neon` / `auto`, read once at first dispatch), then auto-detection.
//!
//! Numerically: the i8 integer kernels are **bit-exact across backends**
//! (integer arithmetic has one right answer); f32 kernels differ only by
//! reduction order and FMA rounding, bounded by the property suite in
//! `tests/kernels_properties.rs`. The `*_batch` variants score one query
//! against a contiguous row-major block, writing into a caller-owned buffer
//! so steady-state serving performs no allocation.
//!
//! This module is deliberately std-only (no intra-crate dependencies) so
//! the standalone bench harness (`tools/bench_simd.rs`) can compile it
//! directly with `rustc` in environments without cargo.

pub mod portable;

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod x86;

#[cfg(all(feature = "simd", target_arch = "aarch64"))]
pub mod neon;

/// A complete kernel implementation: one function pointer per hot-path
/// primitive. Public so tests and benches can pin two backends against each
/// other without going through (and mutating) global dispatch state.
pub struct Backend {
    /// Stable identifier: `"portable"`, `"avx2"`, or `"neon"`.
    pub name: &'static str,
    /// Dot product of two f32 slices.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Squared Euclidean distance between two f32 slices.
    pub l2_sq: fn(&[f32], &[f32]) -> f32,
    /// Squared L2 norm of an f32 slice.
    pub norm_sq: fn(&[f32]) -> f32,
    /// Cosine similarity (0.0 when either input has zero norm).
    pub cosine: fn(&[f32], &[f32]) -> f32,
    /// Cosine with the query norm precomputed (serving shape).
    pub cosine_qnorm: fn(&[f32], f32, &[f32]) -> f32,
    /// Triple elementwise product sum (DistMult score).
    pub dot3: fn(&[f32], &[f32], &[f32]) -> f32,
    /// Squared L2 of `h + r - t` (TransE translation error).
    pub translate_l2_sq: fn(&[f32], &[f32], &[f32]) -> f32,
    /// Integer dot of two i8 rows (exact, i32 accumulation).
    pub dot_i8i8: fn(&[i8], &[i8]) -> i32,
    /// Mixed dot: f32 query against a raw i8 row (scale applied by caller).
    pub dot_f32i8: fn(&[f32], &[i8]) -> f32,
    /// Squared L2 norm of an i8 row (exact, i32 accumulation).
    pub norm_sq_i8: fn(&[i8]) -> i32,
    /// Fused one-pass squared L2 between an f32 query and a scaled i8 row.
    pub l2_sq_f32i8_direct: fn(&[f32], &[i8], f32) -> f32,
    /// Tiled batch dot: one score per row of a row-major block
    /// (`block.len() == q.len() * out.len()`), the query held resident
    /// across a [`ROW_TILE`]-row tile instead of re-streamed per row.
    pub dot_block: fn(&[f32], &[f32], &mut [f32]),
    /// Tiled batch squared Euclidean distance per row.
    pub l2_sq_block: fn(&[f32], &[f32], &mut [f32]),
    /// Tiled batch serving-shape cosine per row (query norm precomputed).
    pub cosine_qnorm_block: fn(&[f32], f32, &[f32], &mut [f32]),
    /// Tiled batch mixed f32·i8 dot per row (unscaled; caller folds scales).
    pub dot_f32i8_block: fn(&[f32], &[i8], &mut [f32]),
}

/// Rows scored per tile by the `*_block` batch kernels. Four is the
/// register-pressure sweet spot on both intrinsic backends: one resident
/// query vector + four row streams + four accumulators fit comfortably in
/// 16 vector registers, and each query load is amortized over four FMAs —
/// the single-row kernels are load-port bound, so this is where the batch
/// speedup comes from (measured in `BENCH_simd.json`, `*_batch` rows).
pub const ROW_TILE: usize = 4;

/// The always-available reference backend.
pub static PORTABLE: Backend = Backend {
    name: "portable",
    dot: portable::dot,
    l2_sq: portable::l2_sq,
    norm_sq: portable::norm_sq,
    cosine: portable::cosine,
    cosine_qnorm: portable::cosine_qnorm,
    dot3: portable::dot3,
    translate_l2_sq: portable::translate_l2_sq,
    dot_i8i8: portable::dot_i8i8,
    dot_f32i8: portable::dot_f32i8,
    norm_sq_i8: portable::norm_sq_i8,
    l2_sq_f32i8_direct: portable::l2_sq_f32i8_direct,
    dot_block: portable::dot_block,
    l2_sq_block: portable::l2_sq_block,
    cosine_qnorm_block: portable::cosine_qnorm_block,
    dot_f32i8_block: portable::dot_f32i8_block,
};

#[cfg(feature = "simd")]
mod dispatch {
    use super::*;
    use std::ptr;
    use std::sync::atomic::{AtomicPtr, Ordering};
    use std::sync::OnceLock;

    /// Auto-selected backend, resolved once at first kernel call.
    static AUTO: OnceLock<&'static Backend> = OnceLock::new();
    /// Test/bench override; null means "use AUTO". Stored as a raw pointer
    /// to a `'static` table so reads are a single relaxed atomic load.
    static OVERRIDE: AtomicPtr<Backend> = AtomicPtr::new(ptr::null_mut());

    #[inline]
    pub(super) fn active() -> &'static Backend {
        let forced = OVERRIDE.load(Ordering::Relaxed);
        if !forced.is_null() {
            // SAFETY: OVERRIDE is only ever set (in `force`) to a pointer
            // derived from a `&'static Backend`.
            return unsafe { &*forced };
        }
        AUTO.get_or_init(select_auto)
    }

    fn select_auto() -> &'static Backend {
        if let Ok(requested) = std::env::var("SAGA_KERNEL_BACKEND") {
            if !requested.is_empty() && requested != "auto" {
                for be in super::available_backends() {
                    if be.name == requested {
                        return be;
                    }
                }
                // Unknown/unavailable name: fall through to detection
                // rather than silently changing numerics mid-fleet.
            }
        }
        best_available()
    }

    pub(super) fn best_available() -> &'static Backend {
        #[cfg(target_arch = "x86_64")]
        if x86::available() {
            return &x86::BACKEND;
        }
        #[cfg(target_arch = "aarch64")]
        if neon::available() {
            return &neon::BACKEND;
        }
        &PORTABLE
    }

    pub(super) fn force(backend: Option<&'static Backend>) {
        let p = backend.map_or(ptr::null_mut(), |be| be as *const Backend as *mut Backend);
        OVERRIDE.store(p, Ordering::Relaxed);
    }
}

#[cfg(feature = "simd")]
use dispatch::active;

/// Every backend usable on this CPU with this build, portable first. The
/// equivalence test suite iterates this to pin intrinsic backends against
/// the reference without touching global dispatch state.
pub fn available_backends() -> Vec<&'static Backend> {
    let mut backends = vec![&PORTABLE];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if x86::available() {
        backends.push(&x86::BACKEND);
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    if neon::available() {
        backends.push(&neon::BACKEND);
    }
    backends
}

/// Name of the backend the next kernel call will dispatch to.
pub fn backend_name() -> &'static str {
    #[cfg(feature = "simd")]
    {
        active().name
    }
    #[cfg(not(feature = "simd"))]
    {
        PORTABLE.name
    }
}

/// True when the intrinsic backends were compiled in (`simd` feature).
pub const fn simd_compiled() -> bool {
    cfg!(feature = "simd")
}

/// Scoring-relevant CPU features detected at runtime, independent of which
/// backend is active — recorded in bench provenance so artifacts from
/// different hosts are comparable.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[allow(unused_mut)]
    let mut features: Vec<&'static str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::is_x86_feature_detected!("fma") {
            features.push("fma");
        }
        if std::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            features.push("neon");
        }
    }
    features
}

/// Pin dispatch to the named backend (`"portable"`, `"avx2"`, `"neon"`) or
/// restore auto-detection with `"auto"`. Returns `false` (and changes
/// nothing) when the name is unknown or unavailable on this CPU/build.
///
/// A test/bench hook: it swaps one `'static` table pointer atomically, so
/// it is safe (if confusing) to race, but production code should rely on
/// auto-detection or `SAGA_KERNEL_BACKEND`.
pub fn force_backend(name: &str) -> bool {
    #[cfg(feature = "simd")]
    {
        if name == "auto" {
            dispatch::force(None);
            return true;
        }
        for be in available_backends() {
            if be.name == name {
                dispatch::force(Some(be));
                return true;
            }
        }
        false
    }
    #[cfg(not(feature = "simd"))]
    {
        // Without the intrinsic backends there is nothing to switch; accept
        // the two names that describe the only possible state.
        name == "auto" || name == "portable"
    }
}

/// Expands to a dispatched call under `simd`, a direct (inlinable) portable
/// call without it — so `--no-default-features` carries zero dispatch
/// overhead and is bit-for-bit the pre-dispatch build.
macro_rules! dispatched {
    ($field:ident, $($arg:expr),*) => {{
        #[cfg(feature = "simd")]
        let r = (active().$field)($($arg),*);
        #[cfg(not(feature = "simd"))]
        let r = portable::$field($($arg),*);
        r
    }};
}

/// Inner product `Σ a·b`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatched!(dot, a, b)
}

/// Squared Euclidean distance `Σ (a−b)²`.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatched!(l2_sq, a, b)
}

/// Squared L2 norm `Σ v²`.
#[inline]
pub fn norm_sq(v: &[f32]) -> f32 {
    dispatched!(norm_sq, v)
}

/// L2 norm of a vector.
#[inline]
pub fn l2_norm(v: &[f32]) -> f32 {
    norm_sq(v).sqrt()
}

/// Cosine similarity (0.0 when either vector is zero).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    dispatched!(cosine, a, b)
}

/// Cosine similarity with the query norm precomputed (`q_norm = l2_norm(q)`)
/// — the shape the contextual reranker wants when one query is scored
/// against many cached entity embeddings.
#[inline]
pub fn cosine_qnorm(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    dispatched!(cosine_qnorm, q, q_norm, b)
}

/// Triple product `Σ a·b·c` — the DistMult scoring kernel.
#[inline]
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    dispatched!(dot3, a, b, c)
}

/// Translation error `Σ (h + r − t)²` — the TransE scoring kernel
/// (`score = −translate_l2_sq`).
#[inline]
pub fn translate_l2_sq(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert!(h.len() == r.len() && r.len() == t.len());
    dispatched!(translate_l2_sq, h, r, t)
}

/// Integer inner product `Σ a·b` over i8 lanes with i32 accumulation.
/// Bit-exact across backends; see [`portable::dot_i8i8`] for the overflow
/// headroom argument.
#[inline]
pub fn dot_i8i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    dispatched!(dot_i8i8, a, b)
}

/// Mixed inner product `Σ q·b` of an f32 query against an i8 row — the
/// asymmetric serving shape (full-precision query, quantized store). The
/// caller multiplies the row's scale into the result once.
#[inline]
pub fn dot_f32i8(q: &[f32], b: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    dispatched!(dot_f32i8, q, b)
}

/// Squared L2 norm `Σ v²` of an i8 row, in integer units. Bit-exact across
/// backends.
#[inline]
pub fn norm_sq_i8(v: &[i8]) -> i32 {
    dispatched!(norm_sq_i8, v)
}

/// Below this dimension the fused one-pass distance beats the
/// norm-expansion algebra even with both norms precomputed: the expansion's
/// fixed cost (a separate dot kernel call plus the scalar algebra) is not
/// amortized until the row is long enough for the dot's wider loop to
/// dominate. Measured with `tools/bench_simd.rs` (see `BENCH_simd.json`,
/// `l2_f32i8_crossover` row).
pub const L2_F32I8_DIRECT_MAX_DIM: usize = 32;

/// Squared Euclidean distance between an f32 query and a dequantized i8
/// row with caller-precomputed norms (`q_norm_sq = norm_sq(q)`,
/// `b_norm = scale · sqrt(norm_sq_i8(b))`).
///
/// Thin wrapper over one canonical implementation per regime: at small
/// dims (≤ [`L2_F32I8_DIRECT_MAX_DIM`]) the precomputed norms cannot pay
/// for the expansion's fixed cost, so this routes to the fused
/// [`l2_sq_f32i8_direct`] sweep and ignores the norms; above it, the
/// norm-expansion `‖q−s·b‖² = ‖q‖² − 2s(q·b) + (s‖b‖)²` reuses them and
/// only pays one dot kernel. Clamped at zero: the expansion can go
/// slightly negative under f32 rounding when the vectors nearly coincide.
#[inline]
pub fn l2_sq_f32i8(q: &[f32], q_norm_sq: f32, b: &[i8], scale: f32, b_norm: f32) -> f32 {
    if q.len() <= L2_F32I8_DIRECT_MAX_DIM {
        return l2_sq_f32i8_direct(q, b, scale);
    }
    let d = dot_f32i8(q, b);
    (q_norm_sq - 2.0 * scale * d + b_norm * b_norm).max(0.0)
}

/// One-pass squared Euclidean distance between an f32 query and a
/// dequantized i8 row: fuses the dequantize-multiply into the difference,
/// `Σ (q − s·b)²`. The canonical f32·i8 distance; [`l2_sq_f32i8`] is the
/// norm-reusing wrapper.
#[inline]
pub fn l2_sq_f32i8_direct(q: &[f32], b: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    dispatched!(l2_sq_f32i8_direct, q, b, scale)
}

/// Expands a batch kernel body resolving the dispatch table once per block
/// — rows then go through the already-loaded function pointer, keeping the
/// per-row cost identical to a single-kernel call. Used by the batch
/// kernels that have no tiled `*_block` variant.
macro_rules! batch_body {
    ($field:ident, $q:ident, $block:ident, $out:ident, |$f:ident, $row:ident| $call:expr) => {{
        assert!(!$q.is_empty(), "query must be non-empty");
        debug_assert_eq!($block.len() % $q.len(), 0);
        #[cfg(feature = "simd")]
        let $f = active().$field;
        #[cfg(not(feature = "simd"))]
        let $f = portable::$field;
        $out.clear();
        $out.extend($block.chunks_exact($q.len()).map(|$row| $call));
    }};
}

/// Expands a tiled batch kernel body: sizes `out` to the row count (clear +
/// resize, so a warm buffer never reallocates) and hands the whole block to
/// the backend's `*_block` kernel, which keeps the query resident across a
/// [`ROW_TILE`]-row tile instead of looping the single-row kernel.
macro_rules! block_body {
    ($field:ident, $q:ident, $block:ident, $out:ident, $($arg:expr),*) => {{
        assert!(!$q.is_empty(), "query must be non-empty");
        debug_assert_eq!($block.len() % $q.len(), 0);
        let rows = $block.len() / $q.len();
        $out.clear();
        $out.resize(rows, Default::default());
        #[cfg(feature = "simd")]
        (active().$field)($($arg),*);
        #[cfg(not(feature = "simd"))]
        portable::$field($($arg),*);
    }};
}

/// Scores `q` against every row of a contiguous row-major `block`
/// (`block.len()` must be a multiple of `q.len()`), writing one dot
/// product per row into `out` after clearing it. Reuses `out`'s capacity —
/// no allocation once the buffer has grown to the block's row count. Rows
/// go through the tiled [`Backend::dot_block`] kernel, so a batch is
/// faster than looping [`dot`] (query loads amortized across a row tile).
pub fn dot_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    block_body!(dot_block, q, block, out, q, block, out);
}

/// Batch counterpart of [`l2_sq`]: squared distance per row of `block`.
pub fn l2_sq_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    block_body!(l2_sq_block, q, block, out, q, block, out);
}

/// Batch counterpart of [`cosine`]: the query norm is computed once and
/// each row costs a fused tiled sweep instead of a full three-norm
/// recomputation.
pub fn cosine_batch(q: &[f32], block: &[f32], out: &mut Vec<f32>) {
    let q_norm = l2_norm(q);
    block_body!(cosine_qnorm_block, q, block, out, q, q_norm, block, out);
}

/// Batch counterpart of [`dot_i8i8`]: one i32 inner product per row of a
/// contiguous i8 `block`, written into a caller-owned buffer (same
/// contract as [`dot_batch`]).
pub fn dot_i8i8_batch(q: &[i8], block: &[i8], out: &mut Vec<i32>) {
    batch_body!(dot_i8i8, q, block, out, |f, row| f(q, row));
}

/// Batch counterpart of [`dot_f32i8`]: raw (unscaled) mixed inner product
/// per row; the caller folds in each row's scale. Tiled like [`dot_batch`]
/// — this is the quantized table's full-scan scoring shape.
pub fn dot_f32i8_batch(q: &[f32], block: &[i8], out: &mut Vec<f32>) {
    block_body!(dot_f32i8_block, q, block, out, q, block, out);
}

/// JSON object recording the execution environment every bench artifact
/// should carry: the kernel backend that served the run, the CPU features
/// runtime dispatch saw, and whether the intrinsic backends were compiled
/// in at all. Numbers from an `avx2` run and a `portable` run are not
/// comparable, so the distinction must travel with the artifact. Lives
/// here (std-only) so the standalone `rustc` harnesses emit the same
/// provenance block as the cargo bench binaries.
pub fn provenance_json(indent: &str) -> String {
    format!(
        "{{\n{indent}  \"kernel_backend\": \"{}\",\n{indent}  \"cpu_features\": \"{}\",\n{indent}  \"simd_compiled\": {}\n{indent}}}",
        backend_name(),
        detected_cpu_features().join(","),
        simd_compiled(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    fn naive_cosine(a: &[f32], b: &[f32]) -> f32 {
        let (mut d, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
        for (x, y) in a.iter().zip(b) {
            d += x * y;
            na += x * x;
            nb += y * y;
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            d / (na.sqrt() * nb.sqrt())
        }
    }

    fn seq(n: usize, seed: u64) -> Vec<f32> {
        // Cheap deterministic pseudo-random values in [-1, 1).
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 11) as f32 / (1u64 << 52) as f32 * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_naive_across_dims() {
        for dim in [1, 3, 7, 8, 9, 16, 31, 64, 127, 128, 200] {
            let a = seq(dim, 1 + dim as u64);
            let b = seq(dim, 1000 + dim as u64);
            assert!(
                (dot(&a, &b) - naive_dot(&a, &b)).abs() < 1e-4,
                "dim {dim}: {} vs {}",
                dot(&a, &b),
                naive_dot(&a, &b)
            );
        }
    }

    #[test]
    fn l2_and_norms_match_naive() {
        for dim in [1, 5, 8, 13, 64, 129] {
            let a = seq(dim, dim as u64);
            let b = seq(dim, 7 * dim as u64);
            let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
            assert!((l2_sq(&a, &b) - naive).abs() < 1e-4, "dim {dim}");
            let nn: f32 = a.iter().map(|x| x * x).sum();
            assert!((norm_sq(&a) - nn).abs() < 1e-4);
            assert!((l2_norm(&a) - nn.sqrt()).abs() < 1e-4);
        }
    }

    #[test]
    fn cosine_matches_naive_and_handles_zero() {
        for dim in [1, 4, 6, 12, 48, 100] {
            let a = seq(dim, 3 * dim as u64);
            let b = seq(dim, 11 * dim as u64);
            assert!((cosine(&a, &b) - naive_cosine(&a, &b)).abs() < 1e-5, "dim {dim}");
            let qn = l2_norm(&a);
            assert!((cosine_qnorm(&a, qn, &b) - naive_cosine(&a, &b)).abs() < 1e-5);
        }
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_qnorm(&[0.0, 0.0], 0.0, &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn triple_kernels_match_naive() {
        for dim in [1, 2, 8, 9, 32, 65] {
            let h = seq(dim, dim as u64);
            let r = seq(dim, 2 * dim as u64 + 1);
            let t = seq(dim, 3 * dim as u64 + 2);
            let nd3: f32 = (0..dim).map(|i| h[i] * r[i] * t[i]).sum();
            assert!((dot3(&h, &r, &t) - nd3).abs() < 1e-4, "dot3 dim {dim}");
            let ntr: f32 = (0..dim)
                .map(|i| {
                    let d = h[i] + r[i] - t[i];
                    d * d
                })
                .sum();
            assert!((translate_l2_sq(&h, &r, &t) - ntr).abs() < 1e-4, "transe dim {dim}");
        }
    }

    fn seq_i8(n: usize, seed: u64) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 32) as i8
            })
            .collect()
    }

    #[test]
    fn i8_dot_and_norm_match_naive_across_dims() {
        for dim in [1, 3, 7, 8, 9, 16, 31, 64, 127, 128, 200] {
            let a = seq_i8(dim, 1 + dim as u64);
            let b = seq_i8(dim, 1000 + dim as u64);
            let nd: i32 = a.iter().zip(&b).map(|(x, y)| *x as i32 * *y as i32).sum();
            assert_eq!(dot_i8i8(&a, &b), nd, "dim {dim}");
            let nn: i32 = a.iter().map(|x| *x as i32 * *x as i32).sum();
            assert_eq!(norm_sq_i8(&a), nn, "dim {dim}");
        }
    }

    #[test]
    fn i8_dot_saturated_rows_do_not_overflow() {
        // 4096 dims of ±127 is the worst case at realistic sizes.
        let a = vec![127i8; 4096];
        let b = vec![-127i8; 4096];
        assert_eq!(dot_i8i8(&a, &b), -127 * 127 * 4096);
        assert_eq!(norm_sq_i8(&a), 127 * 127 * 4096);
    }

    #[test]
    fn mixed_dot_matches_dequantized_reference() {
        for dim in [1, 5, 8, 13, 48, 129] {
            let q = seq(dim, 3 * dim as u64);
            let b = seq_i8(dim, 7 * dim as u64);
            let scale = 0.013f32;
            let deq: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
            let want = naive_dot(&q, &deq);
            let got = scale * dot_f32i8(&q, &b);
            assert!((got - want).abs() < 1e-4, "dim {dim}: {got} vs {want}");
        }
    }

    #[test]
    fn l2_expansion_matches_direct_distance() {
        for dim in [1, 4, 8, 17, 64, 130] {
            let q = seq(dim, 11 * dim as u64);
            let b = seq_i8(dim, 13 * dim as u64);
            let scale = 0.0077f32;
            let deq: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
            let want = l2_sq(&q, &deq);
            let b_norm = scale * (norm_sq_i8(&b) as f32).sqrt();
            let got = l2_sq_f32i8(&q, norm_sq(&q), &b, scale, b_norm);
            assert!((got - want).abs() < 1e-3, "dim {dim}: {got} vs {want}");
            let direct = l2_sq_f32i8_direct(&q, &b, scale);
            assert!((direct - want).abs() < 1e-3, "dim {dim}: direct {direct} vs {want}");
        }
        // Identical vectors: expansion may dip below zero in f32; clamped.
        // (dim 64 > L2_F32I8_DIRECT_MAX_DIM, so this exercises the
        // expansion path, not the fused fallback.)
        let b = seq_i8(64, 5);
        let scale = 0.01f32;
        let q: Vec<f32> = b.iter().map(|x| *x as f32 * scale).collect();
        let b_norm = scale * (norm_sq_i8(&b) as f32).sqrt();
        let got = l2_sq_f32i8(&q, norm_sq(&q), &b, scale, b_norm);
        assert!((0.0..1e-3).contains(&got));
    }

    #[test]
    fn i8_batch_kernels_match_single_calls() {
        let dim = 24;
        let rows = 17;
        let qi = seq_i8(dim, 5);
        let qf = seq(dim, 5);
        let block: Vec<i8> = (0..rows).flat_map(|i| seq_i8(dim, 100 + i as u64)).collect();
        let mut out_i = Vec::new();
        dot_i8i8_batch(&qi, &block, &mut out_i);
        assert_eq!(out_i.len(), rows);
        for (i, s) in out_i.iter().enumerate() {
            assert_eq!(*s, dot_i8i8(&qi, &block[i * dim..(i + 1) * dim]));
        }
        let mut out_f = Vec::new();
        dot_f32i8_batch(&qf, &block, &mut out_f);
        assert_eq!(out_f.len(), rows);
        // The tiled block kernel accumulates in a different order than the
        // single-row kernel, so f32 results agree within tolerance, not
        // bitwise (integer dot_i8i8 above stays exact — order-free).
        for (i, s) in out_f.iter().enumerate() {
            assert!((s - dot_f32i8(&qf, &block[i * dim..(i + 1) * dim])).abs() < 1e-3);
        }
        let cap = out_i.capacity();
        dot_i8i8_batch(&qi, &block, &mut out_i);
        assert_eq!(out_i.capacity(), cap);
    }

    #[test]
    fn batch_kernels_match_single_calls() {
        let dim = 24;
        let q = seq(dim, 5);
        let rows = 17;
        let block: Vec<f32> = (0..rows).flat_map(|i| seq(dim, 100 + i as u64)).collect();
        let mut out = Vec::new();
        // Tiled block kernels accumulate in a different order than the
        // single-row kernels, so agreement is within tolerance, not bitwise
        // (same bound as block_kernels_match_single_rows_on_every_backend).
        dot_batch(&q, &block, &mut out);
        assert_eq!(out.len(), rows);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - dot(&q, row)).abs() < 1e-4);
        }
        cosine_batch(&q, &block, &mut out);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - cosine_qnorm(&q, l2_norm(&q), row)).abs() < 1e-4);
        }
        l2_sq_batch(&q, &block, &mut out);
        for (i, s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            assert!((s - l2_sq(&q, row)).abs() < 1e-4);
        }
        // Buffer is reused: capacity survives clears.
        let cap = out.capacity();
        dot_batch(&q, &block, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    /// The tiled block kernels must agree with the single-row kernels on
    /// every backend, including remainder rows (`rows % ROW_TILE != 0`)
    /// and remainder dims — the serving layer depends on batched results
    /// being interchangeable with per-request results.
    #[test]
    fn block_kernels_match_single_rows_on_every_backend() {
        for be in available_backends() {
            for (dim, rows) in [(1, 1), (7, 3), (8, 4), (24, 17), (64, 5), (129, 9)] {
                let q = seq(dim, 5);
                let qn = l2_norm(&q);
                let block: Vec<f32> = (0..rows).flat_map(|i| seq(dim, 100 + i as u64)).collect();
                let bi8: Vec<i8> = (0..rows).flat_map(|i| seq_i8(dim, 100 + i as u64)).collect();
                let mut out = vec![0.0f32; rows];
                (be.dot_block)(&q, &block, &mut out);
                for (i, s) in out.iter().enumerate() {
                    let row = &block[i * dim..(i + 1) * dim];
                    assert!(
                        (s - (be.dot)(&q, row)).abs() < 1e-4,
                        "{} dot_block dim {dim} row {i}",
                        be.name
                    );
                }
                (be.l2_sq_block)(&q, &block, &mut out);
                for (i, s) in out.iter().enumerate() {
                    let row = &block[i * dim..(i + 1) * dim];
                    assert!(
                        (s - (be.l2_sq)(&q, row)).abs() < 1e-4,
                        "{} l2_sq_block dim {dim} row {i}",
                        be.name
                    );
                }
                (be.cosine_qnorm_block)(&q, qn, &block, &mut out);
                for (i, s) in out.iter().enumerate() {
                    let row = &block[i * dim..(i + 1) * dim];
                    assert!(
                        (s - (be.cosine_qnorm)(&q, qn, row)).abs() < 1e-4,
                        "{} cosine_qnorm_block dim {dim} row {i}",
                        be.name
                    );
                }
                (be.dot_f32i8_block)(&q, &bi8, &mut out);
                for (i, s) in out.iter().enumerate() {
                    let row = &bi8[i * dim..(i + 1) * dim];
                    assert!(
                        (s - (be.dot_f32i8)(&q, row)).abs() < 1e-3,
                        "{} dot_f32i8_block dim {dim} row {i}",
                        be.name
                    );
                }
            }
        }
        // Zero-norm rows keep the cosine convention through the tiled path.
        let q = seq(16, 3);
        let mut out = vec![1.0f32; 4];
        let block = vec![0.0f32; 64];
        for be in available_backends() {
            (be.cosine_qnorm_block)(&q, l2_norm(&q), &block, &mut out);
            assert_eq!(out, [0.0; 4], "{}", be.name);
        }
    }

    #[test]
    fn dispatch_introspection_is_consistent() {
        let backends = available_backends();
        assert_eq!(backends[0].name, "portable");
        // The active backend is always one of the available ones.
        assert!(backends.iter().any(|be| be.name == backend_name()));
        if !simd_compiled() {
            assert_eq!(backend_name(), "portable");
            assert_eq!(backends.len(), 1);
        }
        // On x86_64 with avx2+fma detected, the simd build must pick avx2.
        #[cfg(target_arch = "x86_64")]
        if simd_compiled()
            && std::is_x86_feature_detected!("avx2")
            && std::is_x86_feature_detected!("fma")
        {
            assert!(backends.iter().any(|be| be.name == "avx2"));
        }
    }

    /// Single test for the force hook (global state: keep the round trip in
    /// one test so parallel test threads never observe a half-forced
    /// state... they would still compute correct results — all backends
    /// agree within test tolerances — but the assertion set stays simple).
    #[test]
    fn force_backend_round_trip() {
        assert!(force_backend("portable"));
        assert_eq!(backend_name(), "portable");
        assert!(!force_backend("no-such-backend"));
        assert_eq!(backend_name(), "portable");
        for be in available_backends() {
            assert!(force_backend(be.name));
            assert_eq!(backend_name(), be.name);
            // Kernels stay correct under every forced backend.
            let a = seq(67, 1);
            let b = seq(67, 2);
            assert!((dot(&a, &b) - naive_dot(&a, &b)).abs() < 1e-4);
        }
        assert!(force_backend("auto"));
        assert!(available_backends().iter().any(|be| be.name == backend_name()));
    }
}
