//! AVX2(+FMA) backend: explicit `core::arch` intrinsics for the scoring hot
//! path on `x86_64`.
//!
//! Selected by the dispatcher in [`super`] only after
//! [`available`] confirmed both `avx2` and `fma` at runtime, so the default
//! binary reaches native-target kernel speed without `-C target-cpu=native`.
//! Two families of wins over the autovectorized portable lanes on a
//! default-feature build:
//!
//! - **f32 reductions** run 256-bit with hardware FMA (the portable build is
//!   limited to 128-bit SSE2 and separate mul+add), and the multi-output
//!   loops (`cosine`, `cosine_qnorm`) fuse into a single pass — explicit
//!   register accumulators sidestep the 3-accumulator-array shape that
//!   defeats LLVM's autovectorizer.
//! - **i8 kernels** use the sign-extend+convert sequence the autovectorizer
//!   never emits on a default target: `vpmovsxbd`+`vcvtdq2ps` feeding FMA
//!   for the mixed f32·i8 dot, and `vpmovsxbw`+`vpmaddwd` for the pure
//!   integer dot. Integer results are exact, so they match the portable
//!   backend bit-for-bit; f32 results differ only by reassociation/FMA
//!   rounding (ULP-bounded, pinned by the property suite).
//!
//! Every `_impl` below is an `unsafe fn` carrying
//! `#[target_feature(enable = "avx2,fma")]`; the safe table wrappers are the
//! only entry points and are reachable solely through a [`super::Backend`]
//! selected after the feature check.

use super::Backend;
use core::arch::x86_64::*;

/// True when the running CPU supports this backend (AVX2 and FMA).
pub fn available() -> bool {
    std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
}

/// The AVX2(+FMA) kernel table. Must only be installed after [`available`]
/// returned true — the wrappers assume the target features are present.
pub static BACKEND: Backend = Backend {
    name: "avx2",
    dot,
    l2_sq,
    norm_sq,
    cosine,
    cosine_qnorm,
    dot3,
    translate_l2_sq,
    dot_i8i8,
    dot_f32i8,
    norm_sq_i8,
    l2_sq_f32i8_direct,
    dot_block,
    l2_sq_block,
    cosine_qnorm_block,
    dot_f32i8_block,
};

const _: () = assert!(super::ROW_TILE == 4, "tiled kernels are unrolled for 4 rows");

// Safe table wrappers. SAFETY (shared by all): `BACKEND` is only selected by
// the dispatcher (or the test/bench force hook) after `available()` confirmed
// avx2+fma on this CPU, so calling the `target_feature` impls is sound.

fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { dot_impl(a, b) }
}

fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { l2_sq_impl(a, b) }
}

fn norm_sq(v: &[f32]) -> f32 {
    unsafe { norm_sq_impl(v) }
}

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { cosine_impl(a, b) }
}

fn cosine_qnorm(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { cosine_qnorm_impl(q, q_norm, b) }
}

fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    unsafe { dot3_impl(a, b, c) }
}

fn translate_l2_sq(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert!(h.len() == r.len() && r.len() == t.len());
    unsafe { translate_l2_sq_impl(h, r, t) }
}

fn dot_i8i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    unsafe { dot_i8i8_impl(a, b) }
}

fn dot_f32i8(q: &[f32], b: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { dot_f32i8_impl(q, b) }
}

fn norm_sq_i8(v: &[i8]) -> i32 {
    unsafe { norm_sq_i8_impl(v) }
}

fn l2_sq_f32i8_direct(q: &[f32], b: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    unsafe { l2_sq_f32i8_direct_impl(q, b, scale) }
}

fn dot_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { dot_block_impl(q, block, out) }
}

fn l2_sq_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { l2_sq_block_impl(q, block, out) }
}

fn cosine_qnorm_block(q: &[f32], q_norm: f32, block: &[f32], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { cosine_qnorm_block_impl(q, q_norm, block, out) }
}

fn dot_f32i8_block(q: &[f32], block: &[i8], out: &mut [f32]) {
    debug_assert_eq!(block.len(), q.len() * out.len());
    unsafe { dot_f32i8_block_impl(q, block, out) }
}

/// Horizontal sum of 8 f32 lanes.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum_ps(v: __m256) -> f32 {
    let s = _mm_add_ps(_mm256_castps256_ps128(v), _mm256_extractf128_ps(v, 1));
    let s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    let s = _mm_add_ss(s, _mm_movehdup_ps(s));
    _mm_cvtss_f32(s)
}

/// Horizontal sum of 8 i32 lanes (wrapping — callers stay below overflow).
#[target_feature(enable = "avx2")]
unsafe fn hsum_epi32(v: __m256i) -> i32 {
    let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_11_10));
    let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
    _mm_cvtsi128_si32(s)
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 =
            _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)), acc1);
        acc2 =
            _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i + 16)), _mm256_loadu_ps(pb.add(i + 16)), acc2);
        acc3 =
            _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i + 24)), _mm256_loadu_ps(pb.add(i + 24)), acc3);
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3)));
    while i < n {
        s += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    s
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        let d1 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        i += 16;
    }
    while i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        s += d * d;
        i += 1;
    }
    s
}

#[target_feature(enable = "avx2,fma")]
unsafe fn norm_sq_impl(v: &[f32]) -> f32 {
    let n = v.len();
    let pv = v.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_loadu_ps(pv.add(i));
        let x1 = _mm256_loadu_ps(pv.add(i + 8));
        acc0 = _mm256_fmadd_ps(x0, x0, acc0);
        acc1 = _mm256_fmadd_ps(x1, x1, acc1);
        i += 16;
    }
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pv.add(i));
        acc0 = _mm256_fmadd_ps(x, x, acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        let x = *pv.add(i);
        s += x * x;
        i += 1;
    }
    s
}

/// Fused single-pass cosine: dot and both norms in one sweep over the data.
///
/// This is the loop shape the portable backend had to reject (three
/// accumulator arrays defeat the autovectorizer); with explicit register
/// accumulators the three FMA chains issue independently and the data is
/// touched once instead of three times.
#[target_feature(enable = "avx2,fma")]
unsafe fn cosine_impl(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut d0 = _mm256_setzero_ps();
    let mut d1 = _mm256_setzero_ps();
    let mut na0 = _mm256_setzero_ps();
    let mut na1 = _mm256_setzero_ps();
    let mut nb0 = _mm256_setzero_ps();
    let mut nb1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_loadu_ps(pa.add(i));
        let y0 = _mm256_loadu_ps(pb.add(i));
        let x1 = _mm256_loadu_ps(pa.add(i + 8));
        let y1 = _mm256_loadu_ps(pb.add(i + 8));
        d0 = _mm256_fmadd_ps(x0, y0, d0);
        d1 = _mm256_fmadd_ps(x1, y1, d1);
        na0 = _mm256_fmadd_ps(x0, x0, na0);
        na1 = _mm256_fmadd_ps(x1, x1, na1);
        nb0 = _mm256_fmadd_ps(y0, y0, nb0);
        nb1 = _mm256_fmadd_ps(y1, y1, nb1);
        i += 16;
    }
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pa.add(i));
        let y = _mm256_loadu_ps(pb.add(i));
        d0 = _mm256_fmadd_ps(x, y, d0);
        na0 = _mm256_fmadd_ps(x, x, na0);
        nb0 = _mm256_fmadd_ps(y, y, nb0);
        i += 8;
    }
    let mut d = hsum_ps(_mm256_add_ps(d0, d1));
    let mut na = hsum_ps(_mm256_add_ps(na0, na1));
    let mut nb = hsum_ps(_mm256_add_ps(nb0, nb1));
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        d += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

/// Fused two-output serving-shape cosine: dot and candidate norm in one pass
/// (the query norm is precomputed by the caller).
#[target_feature(enable = "avx2,fma")]
unsafe fn cosine_qnorm_impl(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let mut d0 = _mm256_setzero_ps();
    let mut d1 = _mm256_setzero_ps();
    let mut nb0 = _mm256_setzero_ps();
    let mut nb1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_loadu_ps(pq.add(i));
        let y0 = _mm256_loadu_ps(pb.add(i));
        let x1 = _mm256_loadu_ps(pq.add(i + 8));
        let y1 = _mm256_loadu_ps(pb.add(i + 8));
        d0 = _mm256_fmadd_ps(x0, y0, d0);
        d1 = _mm256_fmadd_ps(x1, y1, d1);
        nb0 = _mm256_fmadd_ps(y0, y0, nb0);
        nb1 = _mm256_fmadd_ps(y1, y1, nb1);
        i += 16;
    }
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pq.add(i));
        let y = _mm256_loadu_ps(pb.add(i));
        d0 = _mm256_fmadd_ps(x, y, d0);
        nb0 = _mm256_fmadd_ps(y, y, nb0);
        i += 8;
    }
    let mut d = hsum_ps(_mm256_add_ps(d0, d1));
    let mut nb = hsum_ps(_mm256_add_ps(nb0, nb1));
    while i < n {
        let x = *pq.add(i);
        let y = *pb.add(i);
        d += x * y;
        nb += y * y;
        i += 1;
    }
    if q_norm == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (q_norm * nb.sqrt())
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot3_impl(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    let n = a.len().min(b.len()).min(c.len());
    let (pa, pb, pc) = (a.as_ptr(), b.as_ptr(), c.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let t0 = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        let t1 = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i + 8)), _mm256_loadu_ps(pb.add(i + 8)));
        acc0 = _mm256_fmadd_ps(t0, _mm256_loadu_ps(pc.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(t1, _mm256_loadu_ps(pc.add(i + 8)), acc1);
        i += 16;
    }
    while i + 8 <= n {
        let t = _mm256_mul_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(t, _mm256_loadu_ps(pc.add(i)), acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        s += *pa.add(i) * *pb.add(i) * *pc.add(i);
        i += 1;
    }
    s
}

#[target_feature(enable = "avx2,fma")]
unsafe fn translate_l2_sq_impl(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    let n = h.len().min(r.len()).min(t.len());
    let (ph, pr, pt) = (h.as_ptr(), r.as_ptr(), t.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = _mm256_sub_ps(
            _mm256_add_ps(_mm256_loadu_ps(ph.add(i)), _mm256_loadu_ps(pr.add(i))),
            _mm256_loadu_ps(pt.add(i)),
        );
        let d1 = _mm256_sub_ps(
            _mm256_add_ps(_mm256_loadu_ps(ph.add(i + 8)), _mm256_loadu_ps(pr.add(i + 8))),
            _mm256_loadu_ps(pt.add(i + 8)),
        );
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        i += 16;
    }
    while i + 8 <= n {
        let d = _mm256_sub_ps(
            _mm256_add_ps(_mm256_loadu_ps(ph.add(i)), _mm256_loadu_ps(pr.add(i))),
            _mm256_loadu_ps(pt.add(i)),
        );
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        let d = *ph.add(i) + *pr.add(i) - *pt.add(i);
        s += d * d;
        i += 1;
    }
    s
}

/// Pure-integer dot: 16 i8 sign-extend to i16 (`vpmovsxbw`), multiply-add
/// pairs into i32 lanes (`vpmaddwd`) — exact, so it matches the portable
/// backend bit-for-bit. Per-lane accumulation stays far below i32 overflow
/// for the same reason the portable kernel's does (127²·n < 2³¹).
#[target_feature(enable = "avx2")]
unsafe fn dot_i8i8_impl(a: &[i8], b: &[i8]) -> i32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= n {
        let va0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
        let vb0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
        let va1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i + 16) as *const __m128i));
        let vb1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i + 16) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va0, vb0));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va1, vb1));
        i += 32;
    }
    while i + 16 <= n {
        let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
        let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, vb));
        i += 16;
    }
    let mut s = hsum_epi32(_mm256_add_epi32(acc0, acc1));
    while i < n {
        s += *pa.add(i) as i32 * *pb.add(i) as i32;
        i += 1;
    }
    s
}

/// The headline mixed-precision sequence: 16 i8 sign-extend to two 8-lane
/// i32 vectors (`vpmovsxbd`), convert to f32 (`vcvtdq2ps`), FMA against the
/// f32 query — the ~2.4× the default-target autovectorized form leaves on
/// the table (`BENCH_quant.json`).
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f32i8_impl(q: &[f32], b: &[i8]) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let bytes = _mm_loadu_si128(pb.add(i) as *const __m128i);
        let lo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        let hi = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8)));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), lo, acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i + 8)), hi, acc1);
        i += 16;
    }
    if i + 8 <= n {
        let bytes = _mm_loadl_epi64(pb.add(i) as *const __m128i);
        let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pq.add(i)), f, acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        s += *pq.add(i) * *pb.add(i) as f32;
        i += 1;
    }
    s
}

#[target_feature(enable = "avx2")]
unsafe fn norm_sq_i8_impl(v: &[i8]) -> i32 {
    let n = v.len();
    let pv = v.as_ptr();
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 32 <= n {
        let x0 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pv.add(i) as *const __m128i));
        let x1 = _mm256_cvtepi8_epi16(_mm_loadu_si128(pv.add(i + 16) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(x0, x0));
        acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(x1, x1));
        i += 32;
    }
    while i + 16 <= n {
        let x = _mm256_cvtepi8_epi16(_mm_loadu_si128(pv.add(i) as *const __m128i));
        acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(x, x));
        i += 16;
    }
    let mut s = hsum_epi32(_mm256_add_epi32(acc0, acc1));
    while i < n {
        let x = *pv.add(i) as i32;
        s += x * x;
        i += 1;
    }
    s
}

/// Tiled batch dot: four rows stream against one resident query. The
/// single-row kernel issues two loads (query + row) per FMA and saturates
/// the load ports at one FMA per cycle; here each 8-lane query load is
/// amortized over four row FMAs (1.25 loads/FMA), which is where the batch
/// speedup in `BENCH_simd.json` comes from. Remainder rows (`out.len() %
/// 4`) fall back to the single-row kernel.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_block_impl(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= dim {
            let qv = _mm256_loadu_ps(pq.add(i));
            acc0 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r0.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r1.add(i)), acc1);
            acc2 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r2.add(i)), acc2);
            acc3 = _mm256_fmadd_ps(qv, _mm256_loadu_ps(r3.add(i)), acc3);
            i += 8;
        }
        let mut s0 = hsum_ps(acc0);
        let mut s1 = hsum_ps(acc1);
        let mut s2 = hsum_ps(acc2);
        let mut s3 = hsum_ps(acc3);
        while i < dim {
            let qv = *pq.add(i);
            s0 += qv * *r0.add(i);
            s1 += qv * *r1.add(i);
            s2 += qv * *r2.add(i);
            s3 += qv * *r3.add(i);
            i += 1;
        }
        out[4 * t] = s0;
        out[4 * t + 1] = s1;
        out[4 * t + 2] = s2;
        out[4 * t + 3] = s3;
    }
    for r in tiles * 4..rows {
        out[r] = dot_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch squared Euclidean distance (see [`dot_block_impl`]).
#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_block_impl(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= dim {
            let qv = _mm256_loadu_ps(pq.add(i));
            let d0 = _mm256_sub_ps(qv, _mm256_loadu_ps(r0.add(i)));
            let d1 = _mm256_sub_ps(qv, _mm256_loadu_ps(r1.add(i)));
            let d2 = _mm256_sub_ps(qv, _mm256_loadu_ps(r2.add(i)));
            let d3 = _mm256_sub_ps(qv, _mm256_loadu_ps(r3.add(i)));
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            acc2 = _mm256_fmadd_ps(d2, d2, acc2);
            acc3 = _mm256_fmadd_ps(d3, d3, acc3);
            i += 8;
        }
        let mut s0 = hsum_ps(acc0);
        let mut s1 = hsum_ps(acc1);
        let mut s2 = hsum_ps(acc2);
        let mut s3 = hsum_ps(acc3);
        while i < dim {
            let qv = *pq.add(i);
            let (d0, d1, d2, d3) =
                (qv - *r0.add(i), qv - *r1.add(i), qv - *r2.add(i), qv - *r3.add(i));
            s0 += d0 * d0;
            s1 += d1 * d1;
            s2 += d2 * d2;
            s3 += d3 * d3;
            i += 1;
        }
        out[4 * t] = s0;
        out[4 * t + 1] = s1;
        out[4 * t + 2] = s2;
        out[4 * t + 3] = s3;
    }
    for r in tiles * 4..rows {
        out[r] = l2_sq_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch serving-shape cosine: dot and candidate norm fused per row,
/// four rows per tile (8 accumulators + the resident query = 9 of 16 ymm
/// registers, still no spill).
#[target_feature(enable = "avx2,fma")]
unsafe fn cosine_qnorm_block_impl(q: &[f32], q_norm: f32, block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut d0 = _mm256_setzero_ps();
        let mut d1 = _mm256_setzero_ps();
        let mut d2 = _mm256_setzero_ps();
        let mut d3 = _mm256_setzero_ps();
        let mut n0 = _mm256_setzero_ps();
        let mut n1 = _mm256_setzero_ps();
        let mut n2 = _mm256_setzero_ps();
        let mut n3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= dim {
            let qv = _mm256_loadu_ps(pq.add(i));
            let y0 = _mm256_loadu_ps(r0.add(i));
            let y1 = _mm256_loadu_ps(r1.add(i));
            let y2 = _mm256_loadu_ps(r2.add(i));
            let y3 = _mm256_loadu_ps(r3.add(i));
            d0 = _mm256_fmadd_ps(qv, y0, d0);
            d1 = _mm256_fmadd_ps(qv, y1, d1);
            d2 = _mm256_fmadd_ps(qv, y2, d2);
            d3 = _mm256_fmadd_ps(qv, y3, d3);
            n0 = _mm256_fmadd_ps(y0, y0, n0);
            n1 = _mm256_fmadd_ps(y1, y1, n1);
            n2 = _mm256_fmadd_ps(y2, y2, n2);
            n3 = _mm256_fmadd_ps(y3, y3, n3);
            i += 8;
        }
        let mut ds = [hsum_ps(d0), hsum_ps(d1), hsum_ps(d2), hsum_ps(d3)];
        let mut ns = [hsum_ps(n0), hsum_ps(n1), hsum_ps(n2), hsum_ps(n3)];
        while i < dim {
            let qv = *pq.add(i);
            let (y0, y1, y2, y3) = (*r0.add(i), *r1.add(i), *r2.add(i), *r3.add(i));
            ds[0] += qv * y0;
            ds[1] += qv * y1;
            ds[2] += qv * y2;
            ds[3] += qv * y3;
            ns[0] += y0 * y0;
            ns[1] += y1 * y1;
            ns[2] += y2 * y2;
            ns[3] += y3 * y3;
            i += 1;
        }
        for k in 0..4 {
            out[4 * t + k] =
                if q_norm == 0.0 || ns[k] == 0.0 { 0.0 } else { ds[k] / (q_norm * ns[k].sqrt()) };
        }
    }
    for r in tiles * 4..rows {
        out[r] = cosine_qnorm_impl(q, q_norm, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

/// Tiled batch mixed f32·i8 dot: four quantized rows widen
/// (`vpmovsxbd`+`vcvtdq2ps`) against one resident query load per step.
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f32i8_block_impl(q: &[f32], block: &[i8], out: &mut [f32]) {
    let dim = q.len();
    let rows = out.len();
    let (pq, pb) = (q.as_ptr(), block.as_ptr());
    let tiles = rows / 4;
    for t in 0..tiles {
        let r0 = pb.add(4 * t * dim);
        let r1 = r0.add(dim);
        let r2 = r1.add(dim);
        let r3 = r2.add(dim);
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 8 <= dim {
            let qv = _mm256_loadu_ps(pq.add(i));
            let f0 =
                _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(r0.add(i) as *const _)));
            let f1 =
                _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(r1.add(i) as *const _)));
            let f2 =
                _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(r2.add(i) as *const _)));
            let f3 =
                _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_loadl_epi64(r3.add(i) as *const _)));
            acc0 = _mm256_fmadd_ps(qv, f0, acc0);
            acc1 = _mm256_fmadd_ps(qv, f1, acc1);
            acc2 = _mm256_fmadd_ps(qv, f2, acc2);
            acc3 = _mm256_fmadd_ps(qv, f3, acc3);
            i += 8;
        }
        let mut s0 = hsum_ps(acc0);
        let mut s1 = hsum_ps(acc1);
        let mut s2 = hsum_ps(acc2);
        let mut s3 = hsum_ps(acc3);
        while i < dim {
            let qv = *pq.add(i);
            s0 += qv * *r0.add(i) as f32;
            s1 += qv * *r1.add(i) as f32;
            s2 += qv * *r2.add(i) as f32;
            s3 += qv * *r3.add(i) as f32;
            i += 1;
        }
        out[4 * t] = s0;
        out[4 * t + 1] = s1;
        out[4 * t + 2] = s2;
        out[4 * t + 3] = s3;
    }
    for r in tiles * 4..rows {
        out[r] = dot_f32i8_impl(q, core::slice::from_raw_parts(pb.add(r * dim), dim));
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_f32i8_direct_impl(q: &[f32], b: &[i8], scale: f32) -> f32 {
    let n = q.len().min(b.len());
    let (pq, pb) = (q.as_ptr(), b.as_ptr());
    let vs = _mm256_set1_ps(scale);
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let bytes = _mm_loadu_si128(pb.add(i) as *const __m128i);
        let lo = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        let hi = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(_mm_srli_si128(bytes, 8)));
        // d = q − scale·b via fnmadd (−(scale·b) + q), matching the fused
        // rounding of the accumulate below.
        let d0 = _mm256_fnmadd_ps(vs, lo, _mm256_loadu_ps(pq.add(i)));
        let d1 = _mm256_fnmadd_ps(vs, hi, _mm256_loadu_ps(pq.add(i + 8)));
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        i += 16;
    }
    if i + 8 <= n {
        let bytes = _mm_loadl_epi64(pb.add(i) as *const __m128i);
        let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(bytes));
        let d = _mm256_fnmadd_ps(vs, f, _mm256_loadu_ps(pq.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut s = hsum_ps(_mm256_add_ps(acc0, acc1));
    while i < n {
        let d = *pq.add(i) - scale * *pb.add(i) as f32;
        s += d * d;
        i += 1;
    }
    s
}
