//! Portable autovectorized backend — the reference implementation every
//! intrinsic backend is pinned against.
//!
//! Each kernel unrolls into independent accumulator lanes so the loop body
//! carries no serial dependency chain — the shape LLVM autovectorizes into
//! SIMD without `-ffast-math` or explicit intrinsics. This backend is always
//! compiled (on every architecture, with or without the `simd` feature) and
//! is what `--no-default-features` builds dispatch to unconditionally.
//!
//! `f32::mul_add` is avoided throughout: without a guaranteed FMA target
//! feature it lowers to a libm call. The explicit-intrinsic backends
//! ([`super::x86`], [`super::neon`]) use hardware FMA instead, which is why
//! cross-backend comparisons need a reassociation/FMA tolerance while this
//! backend's results are bit-stable across builds.

/// Accumulator lanes for the unrolled f32 reductions.
const LANES: usize = 8;

#[inline]
fn sum8(acc: [f32; 8]) -> f32 {
    ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))
}

/// Inner product `Σ a·b`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    for (x, y) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += x[l] * y[l];
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        tail += x * y;
    }
    sum8(acc) + tail
}

/// Squared Euclidean distance `Σ (a−b)²`.
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    for (x, y) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = x[l] - y[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in ra.iter().zip(rb) {
        let d = x - y;
        tail += d * d;
    }
    sum8(acc) + tail
}

/// Squared L2 norm `Σ v²`.
#[inline]
pub fn norm_sq(v: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let rv = v.chunks_exact(LANES).remainder();
    for x in v.chunks_exact(LANES) {
        for l in 0..LANES {
            acc[l] += x[l] * x[l];
        }
    }
    let mut tail = 0.0f32;
    for x in rv {
        tail += x * x;
    }
    sum8(acc) + tail
}

/// Cosine similarity (0.0 when either vector is zero).
///
/// Composed of three single-reduction passes rather than one fused loop: a
/// loop updating three accumulator arrays defeats LLVM's vectorizer, while
/// each single reduction autovectorizes cleanly — measured ~35% faster at
/// dim 128 despite touching the data three times (it stays in L1). The
/// intrinsic backends fuse all three reductions into one pass instead:
/// explicit register accumulators make the 3-output loop viable there.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let d = dot(a, b);
    let na = norm_sq(a);
    let nb = norm_sq(b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

/// Cosine similarity with the query norm precomputed (`q_norm = l2_norm(q)`)
/// — the shape the contextual reranker wants when one query is scored
/// against many cached entity embeddings: two vectorized passes per
/// candidate instead of three.
#[inline]
pub fn cosine_qnorm(q: &[f32], q_norm: f32, b: &[f32]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let d = dot(q, b);
    let nb = norm_sq(b);
    if q_norm == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (q_norm * nb.sqrt())
    }
}

/// Triple product `Σ a·b·c` — the DistMult scoring kernel.
#[inline]
pub fn dot3(a: &[f32], b: &[f32], c: &[f32]) -> f32 {
    debug_assert!(a.len() == b.len() && b.len() == c.len());
    let mut acc = [0.0f32; LANES];
    let ra = a.chunks_exact(LANES).remainder();
    let rb = b.chunks_exact(LANES).remainder();
    let rc = c.chunks_exact(LANES).remainder();
    for ((x, y), z) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)).zip(c.chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += x[l] * y[l] * z[l];
        }
    }
    let mut tail = 0.0f32;
    for ((x, y), z) in ra.iter().zip(rb).zip(rc) {
        tail += x * y * z;
    }
    sum8(acc) + tail
}

/// Translation error `Σ (h + r − t)²` — the TransE scoring kernel
/// (`score = −translate_l2_sq`).
#[inline]
pub fn translate_l2_sq(h: &[f32], r: &[f32], t: &[f32]) -> f32 {
    debug_assert!(h.len() == r.len() && r.len() == t.len());
    let mut acc = [0.0f32; LANES];
    let rh = h.chunks_exact(LANES).remainder();
    let rr = r.chunks_exact(LANES).remainder();
    let rt = t.chunks_exact(LANES).remainder();
    for ((x, y), z) in h.chunks_exact(LANES).zip(r.chunks_exact(LANES)).zip(t.chunks_exact(LANES)) {
        for l in 0..LANES {
            let d = x[l] + y[l] - z[l];
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for ((x, y), z) in rh.iter().zip(rr).zip(rt) {
        let d = x + y - z;
        tail += d * d;
    }
    sum8(acc) + tail
}

/// Lane count for the i8 kernels. Wider than the f32 kernels' [`LANES`]:
/// sixteen i8 values fill one 128-bit vector, so the conversion-heavy
/// mixed loop needs the extra unroll depth before the multiply-add chain
/// saturates the pipeline (measured ~1.7× over 8 lanes at dim 128).
const LANES_I8: usize = 16;

// Both 16-lane reductions use the plain sequential-fold idiom: LLVM
// recognizes it and keeps the accumulator in vector registers, whereas an
// explicit pairwise tree (as in `sum8`) forces the 16-wide accumulator to
// memory and defeats vectorization of the main loop (~1.7× slower).

#[inline]
fn sum16(acc: [f32; LANES_I8]) -> f32 {
    let mut s = 0.0f32;
    for a in acc {
        s += a;
    }
    s
}

#[inline]
fn sum16i(acc: [i32; LANES_I8]) -> i32 {
    let mut s = 0i32;
    for a in acc {
        s += a;
    }
    s
}

/// Integer inner product `Σ a·b` over i8 lanes with i32 accumulation.
///
/// The accumulator cannot overflow below ~133k dimensions
/// (127² · n < 2³¹), far beyond any embedding dimension used here, so the
/// loop carries no saturation checks and autovectorizes like its f32
/// sibling. Callers apply the two quantization scales once to the final
/// sum — never per element — which is what makes the quantized serving
/// path dequantize-free.
#[inline]
pub fn dot_i8i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0i32; LANES_I8];
    let ra = a.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in a.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] as i32 * y[l] as i32;
        }
    }
    let mut tail = 0i32;
    for (x, y) in ra.iter().zip(rb) {
        tail += *x as i32 * *y as i32;
    }
    sum16i(acc) + tail
}

/// Mixed inner product `Σ q·b` of an f32 query against an i8 row — the
/// asymmetric serving shape (full-precision query, quantized store). The
/// caller multiplies the row's scale into the result once.
#[inline]
pub fn dot_f32i8(q: &[f32], b: &[i8]) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let mut acc = [0.0f32; LANES_I8];
    let rq = q.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in q.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] * y[l] as f32;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in rq.iter().zip(rb) {
        tail += x * *y as f32;
    }
    sum16(acc) + tail
}

/// Squared L2 norm `Σ v²` of an i8 row, in integer units. Dequantized
/// norm = `scale · sqrt(norm_sq_i8(v))`; tables precompute this once per
/// row at build time so cosine/euclidean scoring needs only a dot product
/// per candidate.
#[inline]
pub fn norm_sq_i8(v: &[i8]) -> i32 {
    let mut acc = [0i32; LANES_I8];
    let rv = v.chunks_exact(LANES_I8).remainder();
    for x in v.chunks_exact(LANES_I8) {
        for l in 0..LANES_I8 {
            acc[l] += x[l] as i32 * x[l] as i32;
        }
    }
    let mut tail = 0i32;
    for x in rv {
        tail += *x as i32 * *x as i32;
    }
    sum16i(acc) + tail
}

// The `*_block` batch kernels: on this backend they are canonical row
// loops over the single-row kernels, NOT register tiles. Holding the query
// resident across a [`super::ROW_TILE`]-row tile requires explicit register
// accumulators; expressed as scalar accumulator arrays the tile body
// defeats LLVM's autovectorizer and measures *slower* than the row loop
// (0.66–0.86× at dim 128 × 256 rows, `BENCH_simd.json`
// `batch_tiling_dim128_rows256`) — the same rule that keeps [`cosine`]
// composed of single-reduction passes. The intrinsic backends
// ([`super::x86`], [`super::neon`]) implement the true tiles.

/// Batch dot per row of a row-major `block`
/// (`block.len() == q.len() * out.len()`); row loop — see the block-kernel
/// note above for why this backend does not tile.
#[inline]
pub fn dot_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    debug_assert_eq!(block.len(), dim * out.len());
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot(q, &block[r * dim..(r + 1) * dim]);
    }
}

/// Batch squared Euclidean distance per row (row loop; see [`dot_block`]).
#[inline]
pub fn l2_sq_block(q: &[f32], block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    debug_assert_eq!(block.len(), dim * out.len());
    for (r, o) in out.iter_mut().enumerate() {
        *o = l2_sq(q, &block[r * dim..(r + 1) * dim]);
    }
}

/// Batch serving-shape cosine per row (row loop; see [`dot_block`]).
#[inline]
pub fn cosine_qnorm_block(q: &[f32], q_norm: f32, block: &[f32], out: &mut [f32]) {
    let dim = q.len();
    debug_assert_eq!(block.len(), dim * out.len());
    for (r, o) in out.iter_mut().enumerate() {
        *o = cosine_qnorm(q, q_norm, &block[r * dim..(r + 1) * dim]);
    }
}

/// Batch mixed f32·i8 dot per row, unscaled (row loop; see [`dot_block`]).
#[inline]
pub fn dot_f32i8_block(q: &[f32], block: &[i8], out: &mut [f32]) {
    let dim = q.len();
    debug_assert_eq!(block.len(), dim * out.len());
    for (r, o) in out.iter_mut().enumerate() {
        *o = dot_f32i8(q, &block[r * dim..(r + 1) * dim]);
    }
}

/// One-pass squared Euclidean distance between an f32 query and a
/// dequantized i8 row: fuses the dequantize-multiply into the difference,
/// `Σ (q − s·b)²`, so a single sweep replaces the norm pass plus the
/// norm-expansion algebra. This is the canonical f32·i8 distance; the
/// norm-expansion form lives in [`super::l2_sq_f32i8`] as a thin wrapper.
#[inline]
pub fn l2_sq_f32i8_direct(q: &[f32], b: &[i8], scale: f32) -> f32 {
    debug_assert_eq!(q.len(), b.len());
    let mut acc = [0.0f32; LANES_I8];
    let rq = q.chunks_exact(LANES_I8).remainder();
    let rb = b.chunks_exact(LANES_I8).remainder();
    for (x, y) in q.chunks_exact(LANES_I8).zip(b.chunks_exact(LANES_I8)) {
        for l in 0..LANES_I8 {
            let d = x[l] - scale * y[l] as f32;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for (x, y) in rq.iter().zip(rb) {
        let d = x - scale * *y as f32;
        tail += d * d;
    }
    sum16(acc) + tail
}
