//! Property tests: the unrolled kernels must agree with the naive scalar
//! loops they replaced (within float-reassociation tolerance) for arbitrary
//! inputs — lengths straddling the unroll width, zero vectors, tiny and
//! large magnitudes.
//!
//! The second half pins every available intrinsic backend against the
//! portable reference (`backend_equivalence_*`): dims 0–257 cover
//! non-multiple-of-lane tails, sub-slicing at a random offset covers
//! unaligned loads, and the special-value tests check NaN/inf propagation.
//! These iterate [`kernels::available_backends`] directly — no global
//! dispatch state is mutated, so they are safe under the parallel test
//! runner. Integer kernels must be bit-exact; f32 kernels get the same
//! scaled reassociation/FMA tolerance as the scalar comparisons.

use proptest::prelude::*;
use saga_core::kernels;

fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn naive_l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn naive_cosine(a: &[f32], b: &[f32]) -> f32 {
    let d = naive_dot(a, b);
    let na = naive_dot(a, a);
    let nb = naive_dot(b, b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

/// Tolerance scaled by the magnitude of the terms being summed: unrolled
/// kernels reassociate the reduction, so the bound must grow with the sum
/// of absolute terms (it reduces to the plain 1e-5 for unit-scale data).
fn tol(terms: impl Iterator<Item = f32>) -> f32 {
    1e-5 * (1.0 + terms.map(f32::abs).sum::<f32>())
}

/// A pair of equal-length vectors with lengths around the unroll widths.
fn vec_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..96).prop_flat_map(|n| {
        (proptest::collection::vec(-1.0f32..1.0, n), proptest::collection::vec(-1.0f32..1.0, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_matches_scalar((a, b) in vec_pair()) {
        let t = tol(a.iter().zip(&b).map(|(x, y)| x * y));
        prop_assert!((kernels::dot(&a, &b) - naive_dot(&a, &b)).abs() <= t);
    }

    #[test]
    fn l2_sq_matches_scalar((a, b) in vec_pair()) {
        let t = tol(a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)));
        prop_assert!((kernels::l2_sq(&a, &b) - naive_l2_sq(&a, &b)).abs() <= t);
        let tn = tol(a.iter().map(|x| x * x));
        prop_assert!((kernels::norm_sq(&a) - naive_dot(&a, &a)).abs() <= tn);
    }

    /// Cosine is bounded in [-1, 1]; the plain 1e-5 applies. Both the full
    /// kernel and the precomputed-query-norm variant must agree with the
    /// scalar reference.
    #[test]
    fn cosine_matches_scalar((a, b) in vec_pair()) {
        let reference = naive_cosine(&a, &b);
        prop_assert!((kernels::cosine(&a, &b) - reference).abs() <= 1e-5);
        let qn = kernels::l2_norm(&a);
        prop_assert!((kernels::cosine_qnorm(&a, qn, &b) - reference).abs() <= 1e-5);
    }

    #[test]
    fn triple_kernels_match_scalar((a, b) in vec_pair(), seed in 0u64..1000) {
        // Third vector derived deterministically from the pair.
        let c: Vec<f32> = a
            .iter()
            .zip(&b)
            .enumerate()
            .map(|(i, (x, y))| (x - y) * ((seed + i as u64) % 7) as f32 / 7.0)
            .collect();
        let nd3: f32 = (0..a.len()).map(|i| a[i] * b[i] * c[i]).sum();
        let t3 = tol((0..a.len()).map(|i| a[i] * b[i] * c[i]));
        prop_assert!((kernels::dot3(&a, &b, &c) - nd3).abs() <= t3);
        let ntr: f32 = (0..a.len())
            .map(|i| {
                let d = a[i] + b[i] - c[i];
                d * d
            })
            .sum();
        let tt = tol((0..a.len()).map(|i| {
            let d = a[i] + b[i] - c[i];
            d * d
        }));
        prop_assert!((kernels::translate_l2_sq(&a, &b, &c) - ntr).abs() <= tt);
    }

    /// Batch kernels must agree with row-at-a-time single calls within the
    /// reassociation tolerance: the tiled block kernels keep the query
    /// resident across a row tile and accumulate in a different order than
    /// the single-row kernels, so f32 results match to `tol`, not bitwise.
    #[test]
    fn batch_matches_single(q in proptest::collection::vec(-1.0f32..1.0, 1..48), rows in 0usize..12, seed in 0u64..1000) {
        let dim = q.len();
        let block: Vec<f32> = (0..rows * dim)
            .map(|i| (((seed + i as u64) % 17) as f32 / 8.5) - 1.0)
            .collect();
        let mut out = Vec::new();
        kernels::dot_batch(&q, &block, &mut out);
        prop_assert_eq!(out.len(), rows);
        for (i, &s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            let t = tol(q.iter().zip(row).map(|(x, y)| x * y));
            prop_assert!((s - kernels::dot(&q, row)).abs() <= t);
        }
        kernels::l2_sq_batch(&q, &block, &mut out);
        for (i, &s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            let t = tol(q.iter().zip(row).map(|(x, y)| (x - y) * (x - y)));
            prop_assert!((s - kernels::l2_sq(&q, row)).abs() <= t);
        }
        let qn = kernels::l2_norm(&q);
        kernels::cosine_batch(&q, &block, &mut out);
        for (i, &s) in out.iter().enumerate() {
            let row = &block[i * dim..(i + 1) * dim];
            // Cosine divides by the norms, so the raw reassociation bound
            // on the dot is rescaled the same way.
            let rn = kernels::l2_norm(row);
            let denom = (qn * rn).max(f32::MIN_POSITIVE);
            let t = tol(q.iter().zip(row).map(|(x, y)| x * y)) / denom;
            prop_assert!((s - kernels::cosine_qnorm(&q, qn, row)).abs() <= t);
        }
    }
}

/// True when `x` and `y` agree as dispatch-equivalent results: identical
/// special-value class (NaN is NaN, infinities match exactly including
/// sign), otherwise within `tol`.
fn agree(x: f32, y: f32, tol: f32) -> bool {
    if x.is_nan() || y.is_nan() {
        return x.is_nan() && y.is_nan();
    }
    if x.is_infinite() || y.is_infinite() {
        return x == y;
    }
    (x - y).abs() <= tol
}

/// Equal-length vector pairs across the full tail-shape range (0–257),
/// plus an offset to test unaligned sub-slices.
fn backend_inputs() -> impl Strategy<Value = (Vec<f32>, Vec<f32>, usize)> {
    (0usize..258, 0usize..8).prop_flat_map(|(n, off)| {
        (
            proptest::collection::vec(-1.0f32..1.0, n),
            proptest::collection::vec(-1.0f32..1.0, n),
            Just(off.min(n)),
        )
    })
}

fn i8_inputs() -> impl Strategy<Value = (Vec<i8>, Vec<i8>, usize)> {
    (0usize..258, 0usize..8).prop_flat_map(|(n, off)| {
        (
            proptest::collection::vec(any::<i8>(), n),
            proptest::collection::vec(any::<i8>(), n),
            Just(off.min(n)),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every f32 kernel of every available intrinsic backend agrees with
    /// the portable reference, including on unaligned sub-slices.
    #[test]
    fn backend_equivalence_f32((a, b, off) in backend_inputs()) {
        let p = &kernels::PORTABLE;
        for be in kernels::available_backends() {
            for (x, y) in [(&a[..], &b[..]), (&a[off..], &b[off..])] {
                let t = tol(x.iter().chain(y).copied());
                prop_assert!(agree((be.dot)(x, y), (p.dot)(x, y), t), "dot {}", be.name);
                prop_assert!(agree((be.l2_sq)(x, y), (p.l2_sq)(x, y), t), "l2_sq {}", be.name);
                prop_assert!(agree((be.norm_sq)(x), (p.norm_sq)(x), t), "norm_sq {}", be.name);
                // Cosine is bounded in [-1, 1]; 2e-5 absorbs the worst-case
                // reduction-order drift at dim 257.
                prop_assert!(agree((be.cosine)(x, y), (p.cosine)(x, y), 2e-5), "cosine {}", be.name);
                let qn = (p.norm_sq)(x).sqrt();
                prop_assert!(
                    agree((be.cosine_qnorm)(x, qn, y), (p.cosine_qnorm)(x, qn, y), 2e-5),
                    "cosine_qnorm {}", be.name
                );
                prop_assert!(agree((be.dot3)(x, y, x), (p.dot3)(x, y, x), t), "dot3 {}", be.name);
                // With t == h the difference reduces to r elementwise, so
                // the summed terms are r² (identical across backends; only
                // accumulation order differs).
                let tt = tol(y.iter().map(|r| r * r));
                prop_assert!(
                    agree((be.translate_l2_sq)(x, y, x), (p.translate_l2_sq)(x, y, x), tt),
                    "translate_l2_sq {}", be.name
                );
            }
        }
    }

    /// Integer kernels are bit-exact across backends; the mixed f32·i8
    /// kernels carry the scaled f32 tolerance.
    #[test]
    fn backend_equivalence_i8((a, b, off) in i8_inputs()) {
        let p = &kernels::PORTABLE;
        let q: Vec<f32> = a.iter().map(|&v| v as f32 / 128.0).collect();
        for be in kernels::available_backends() {
            for (x, y, f) in [(&a[..], &b[..], &q[..]), (&a[off..], &b[off..], &q[off..])] {
                prop_assert_eq!((be.dot_i8i8)(x, y), (p.dot_i8i8)(x, y), "dot_i8i8 {}", be.name);
                prop_assert_eq!((be.norm_sq_i8)(x), (p.norm_sq_i8)(x), "norm_sq_i8 {}", be.name);
                let t = tol(f.iter().zip(y).map(|(qv, bv)| qv * *bv as f32));
                prop_assert!(
                    agree((be.dot_f32i8)(f, y), (p.dot_f32i8)(f, y), t),
                    "dot_f32i8 {}", be.name
                );
                let td = tol(f.iter().zip(y).map(|(qv, bv)| {
                    let d = qv - 0.013 * *bv as f32;
                    d * d
                }));
                prop_assert!(
                    agree(
                        (be.l2_sq_f32i8_direct)(f, y, 0.013),
                        (p.l2_sq_f32i8_direct)(f, y, 0.013),
                        td
                    ),
                    "l2_sq_f32i8_direct {}", be.name
                );
            }
        }
    }

    /// NaN/inf propagation: one special value injected per vector (so the
    /// result class is independent of accumulation order) must produce the
    /// same class on every backend.
    #[test]
    fn backend_equivalence_special_values(
        (a, b, _) in backend_inputs(),
        idx in 0usize..258,
        special in prop_oneof![Just(f32::NAN), Just(f32::INFINITY), Just(f32::NEG_INFINITY)],
    ) {
        prop_assume!(!a.is_empty());
        let mut a = a;
        let idx = idx % a.len();
        a[idx] = special;
        let p = &kernels::PORTABLE;
        for be in kernels::available_backends() {
            let t = tol(a.iter().chain(&b).copied());
            prop_assert!(agree((be.dot)(&a, &b), (p.dot)(&a, &b), t), "dot {}", be.name);
            prop_assert!(agree((be.l2_sq)(&a, &b), (p.l2_sq)(&a, &b), t), "l2_sq {}", be.name);
            prop_assert!(agree((be.norm_sq)(&a), (p.norm_sq)(&a), t), "norm_sq {}", be.name);
        }
    }
}

/// Dispatch surface invariants. Under `--no-default-features` this test
/// proves the build agrees with the portable path unconditionally; under
/// `simd` it proves the active backend is one of the detected ones. The
/// same binary data goes through the public (dispatched) API and the
/// portable table — on the portable backend results must be identical, on
/// intrinsic backends within tolerance (covered above).
#[test]
fn dispatch_agrees_with_portable_reference() {
    assert_eq!(kernels::simd_compiled(), cfg!(feature = "simd"));
    let names: Vec<&str> = kernels::available_backends().iter().map(|b| b.name).collect();
    assert!(names.contains(&kernels::backend_name()));
    if !kernels::simd_compiled() {
        assert_eq!(kernels::backend_name(), "portable");
        assert_eq!(names, ["portable"]);
        // Without intrinsic backends the public API must be bit-for-bit
        // the portable implementation.
        let a: Vec<f32> = (0..131).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..131).map(|i| (i as f32 * 0.53).cos()).collect();
        assert_eq!(kernels::dot(&a, &b).to_bits(), (kernels::PORTABLE.dot)(&a, &b).to_bits());
        assert_eq!(kernels::cosine(&a, &b).to_bits(), (kernels::PORTABLE.cosine)(&a, &b).to_bits());
    }
}
