//! Property tests: the unrolled kernels must agree with the naive scalar
//! loops they replaced (within float-reassociation tolerance) for arbitrary
//! inputs — lengths straddling the unroll width, zero vectors, tiny and
//! large magnitudes.

use proptest::prelude::*;
use saga_core::kernels;

fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn naive_l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn naive_cosine(a: &[f32], b: &[f32]) -> f32 {
    let d = naive_dot(a, b);
    let na = naive_dot(a, a);
    let nb = naive_dot(b, b);
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        d / (na.sqrt() * nb.sqrt())
    }
}

/// Tolerance scaled by the magnitude of the terms being summed: unrolled
/// kernels reassociate the reduction, so the bound must grow with the sum
/// of absolute terms (it reduces to the plain 1e-5 for unit-scale data).
fn tol(terms: impl Iterator<Item = f32>) -> f32 {
    1e-5 * (1.0 + terms.map(f32::abs).sum::<f32>())
}

/// A pair of equal-length vectors with lengths around the unroll widths.
fn vec_pair() -> impl Strategy<Value = (Vec<f32>, Vec<f32>)> {
    (1usize..96).prop_flat_map(|n| {
        (proptest::collection::vec(-1.0f32..1.0, n), proptest::collection::vec(-1.0f32..1.0, n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dot_matches_scalar((a, b) in vec_pair()) {
        let t = tol(a.iter().zip(&b).map(|(x, y)| x * y));
        prop_assert!((kernels::dot(&a, &b) - naive_dot(&a, &b)).abs() <= t);
    }

    #[test]
    fn l2_sq_matches_scalar((a, b) in vec_pair()) {
        let t = tol(a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)));
        prop_assert!((kernels::l2_sq(&a, &b) - naive_l2_sq(&a, &b)).abs() <= t);
        let tn = tol(a.iter().map(|x| x * x));
        prop_assert!((kernels::norm_sq(&a) - naive_dot(&a, &a)).abs() <= tn);
    }

    /// Cosine is bounded in [-1, 1]; the plain 1e-5 applies. Both the full
    /// kernel and the precomputed-query-norm variant must agree with the
    /// scalar reference.
    #[test]
    fn cosine_matches_scalar((a, b) in vec_pair()) {
        let reference = naive_cosine(&a, &b);
        prop_assert!((kernels::cosine(&a, &b) - reference).abs() <= 1e-5);
        let qn = kernels::l2_norm(&a);
        prop_assert!((kernels::cosine_qnorm(&a, qn, &b) - reference).abs() <= 1e-5);
    }

    #[test]
    fn triple_kernels_match_scalar((a, b) in vec_pair(), seed in 0u64..1000) {
        // Third vector derived deterministically from the pair.
        let c: Vec<f32> = a
            .iter()
            .zip(&b)
            .enumerate()
            .map(|(i, (x, y))| (x - y) * ((seed + i as u64) % 7) as f32 / 7.0)
            .collect();
        let nd3: f32 = (0..a.len()).map(|i| a[i] * b[i] * c[i]).sum();
        let t3 = tol((0..a.len()).map(|i| a[i] * b[i] * c[i]));
        prop_assert!((kernels::dot3(&a, &b, &c) - nd3).abs() <= t3);
        let ntr: f32 = (0..a.len())
            .map(|i| {
                let d = a[i] + b[i] - c[i];
                d * d
            })
            .sum();
        let tt = tol((0..a.len()).map(|i| {
            let d = a[i] + b[i] - c[i];
            d * d
        }));
        prop_assert!((kernels::translate_l2_sq(&a, &b, &c) - ntr).abs() <= tt);
    }

    /// Batch kernels must agree with row-at-a-time single calls exactly —
    /// they share the same per-row implementation.
    #[test]
    fn batch_matches_single(q in proptest::collection::vec(-1.0f32..1.0, 1..48), rows in 0usize..12, seed in 0u64..1000) {
        let dim = q.len();
        let block: Vec<f32> = (0..rows * dim)
            .map(|i| (((seed + i as u64) % 17) as f32 / 8.5) - 1.0)
            .collect();
        let mut out = Vec::new();
        kernels::dot_batch(&q, &block, &mut out);
        prop_assert_eq!(out.len(), rows);
        for (i, &s) in out.iter().enumerate() {
            prop_assert_eq!(s, kernels::dot(&q, &block[i * dim..(i + 1) * dim]));
        }
        kernels::l2_sq_batch(&q, &block, &mut out);
        for (i, &s) in out.iter().enumerate() {
            prop_assert_eq!(s, kernels::l2_sq(&q, &block[i * dim..(i + 1) * dim]));
        }
        let qn = kernels::l2_norm(&q);
        kernels::cosine_batch(&q, &block, &mut out);
        for (i, &s) in out.iter().enumerate() {
            prop_assert_eq!(s, kernels::cosine_qnorm(&q, qn, &block[i * dim..(i + 1) * dim]));
        }
    }
}
