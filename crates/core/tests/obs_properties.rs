//! Property-based tests for the observability substrate's merge algebra
//! and its determinism guarantees under thread contention.

use proptest::prelude::*;
use saga_core::fault::VirtualClock;
use saga_core::obs::{Counter, Histogram, MetricsSnapshot, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn record_all(values: &[u64]) -> saga_core::obs::HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    /// Histogram merge is commutative, associative, and equal to recording
    /// the concatenated value stream — the property that makes per-worker
    /// snapshots collapse into one deterministic total.
    #[test]
    fn histogram_merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..40),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..40),
    ) {
        let (ha, hb, hc) = (record_all(&a), record_all(&b), record_all(&c));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);

        let mut ab_c = ab.clone();
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &record_all(&all));
    }

    /// Snapshot merge inherits the same algebra across mixed counter and
    /// histogram registries.
    #[test]
    fn snapshot_merge_is_commutative(
        counts in proptest::collection::vec(0u64..1_000_000, 1..8),
        values in proptest::collection::vec(0u64..1_000_000, 0..20),
    ) {
        let build = |counts: &[u64], values: &[u64]| -> MetricsSnapshot {
            let r = Registry::new();
            for (i, &c) in counts.iter().enumerate() {
                r.counter(&format!("c{}", i % 3)).add(c);
            }
            let h = r.histogram("h");
            for &v in values {
                h.record(v);
            }
            r.snapshot()
        };
        let sa = build(&counts, &values);
        let sb = build(&values, &counts);
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }
}

/// One deterministic fan-out pass: `workers` scoped threads drain a shared
/// item queue, recording value-based metrics and advancing a shared virtual
/// clock; a whole-pass span brackets the fan-out.
fn run_workload(workers: usize) -> MetricsSnapshot {
    let clock = VirtualClock::default();
    let registry = Registry::with_clock(Arc::new(clock.clone()));
    let scope = registry.scope("pipeline");
    let items: Vec<u64> = (0..100u64).map(|i| (i * 7 + 3) % 23).collect();
    let counter = scope.counter("items");
    let hist = scope.histogram("value");
    let span = scope.span("pass_ticks");
    let next = AtomicUsize::new(0);
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                counter.inc();
                hist.record(items[i]);
                clock.advance_ms(items[i]);
            });
        }
    })
    .expect("workers must not panic");
    drop(span);
    registry.snapshot()
}

/// The acceptance criterion of the obs substrate: for a fixed workload the
/// snapshot is bit-identical at every worker count — counters commute,
/// value histograms are interleaving-independent, and the whole-pass span
/// charges the same total virtual time regardless of who advanced it.
#[test]
fn snapshots_identical_across_worker_counts() {
    let s1 = run_workload(1);
    let s2 = run_workload(2);
    let s8 = run_workload(8);
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);
    assert_eq!(s1.counter("pipeline/items"), 100);
    let pass = s1.histogram("pipeline/pass_ticks").expect("span recorded");
    let expected: u64 = (0..100u64).map(|i| (i * 7 + 3) % 23).sum();
    assert_eq!(pass.sum, expected);
}

/// Sharded counters never lose increments under scoped-thread contention.
#[test]
fn counter_shards_lose_no_increments() {
    let c = Counter::new();
    let threads = 8usize;
    let per_thread = 10_000u64;
    crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                for _ in 0..per_thread {
                    c.inc();
                }
            });
        }
    })
    .expect("threads must not panic");
    assert_eq!(c.value(), threads as u64 * per_thread);
}
