//! Crash-recovery proofs for the MVCC storage engine.
//!
//! The central claim of the engine is: **killing the process at any I/O
//! boundary — before or mid-way through any page write, log append, root
//! flip, or fsync — loses at most the in-flight transaction, and recovery
//! reproduces a byte-identical graph.** This suite proves it by brute
//! force: a discovery run counts every engine I/O operation for a
//! deterministic workload, then the workload is re-run once per operation
//! index × kill mode × seed with a [`KillSwitch`] armed at exactly that
//! operation, and the recovered state is compared byte-for-byte (via
//! [`KnowledgeGraph::canonical_bytes`]) against an oracle run that never
//! crashed.
//!
//! A separate sweep flips bits across the store file and asserts corruption
//! is always surfaced as a typed error or a clean prefix state — never a
//! panic, never silently wrong data.

use saga_core::fault::{crash_matrix, KillMode, KillSwitch};
use saga_core::{
    Cardinality, EngineOptions, EntityBuilder, EntityId, KgStore, KnowledgeGraph, Ontology,
    SagaError, Triple, ValueKind, Volatility,
};
use std::path::PathBuf;

const TXNS: u64 = 6;
const SEEDS: [u64; 5] = [3, 11, 23, 47, 91];

/// Small pages and a small log so the workload crosses every code path:
/// several plain log appends plus at least one auto-checkpoint (page
/// writes, manifest chain, root flip).
fn opts() -> EngineOptions {
    EngineOptions { page_size: 128, log_cap: 768 }
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("saga-crash-matrix");
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(format!("{}-{}", std::process::id(), name));
    let _ = std::fs::remove_file(&p);
    p
}

fn base_graph() -> KnowledgeGraph {
    let mut o = Ontology::new();
    let person = o.add_type("person", None);
    o.add_predicate(
        "knows",
        "knows",
        ValueKind::Entity,
        Some(person),
        Cardinality::Multi,
        Volatility::Slow,
        false,
    );
    o.add_predicate(
        "nickname",
        "nickname",
        ValueKind::Text,
        Some(person),
        Cardinality::Single,
        Volatility::Slow,
        false,
    );
    let mut kg = KnowledgeGraph::new(o);
    kg.add_entity(EntityBuilder::new("Alice", person));
    kg.add_entity(EntityBuilder::new("Bob", person));
    kg
}

/// Applies transaction `i` (1-based) of the deterministic workload. The
/// mutations depend only on `(seed, i)` and on state the previous
/// transactions created, so replaying any prefix is reproducible.
fn apply_txn(store: &mut KgStore, seed: u64, i: u64) -> Result<(), SagaError> {
    let knows = store.graph().ontology().predicate_by_name("knows").unwrap();
    let nickname = store.graph().ontology().predicate_by_name("nickname").unwrap();
    let person = store.graph().entity(EntityId(0)).entity_type;
    store
        .commit(|txn| {
            let e =
                txn.add_entity(EntityBuilder::new(format!("e{seed}-{i}"), person).popularity(0.25));
            let src = txn.register_source(&format!("src-{}", i % 3));
            txn.insert_with(Triple::new(EntityId(0), knows, e), src, 0.5 + (i as f32) * 0.05);
            txn.insert_with(
                Triple::new(e, nickname, format!("nick-{seed}-{i}").as_str()),
                src,
                0.9,
            );
            if i.is_multiple_of(3) {
                // Remove the `knows` edge added two transactions ago
                // (entity ids are dense: txn j adds entity 1 + j).
                txn.remove(&Triple::new(EntityId(0), knows, EntityId(1 + (i - 2))));
            }
            txn.set_popularity(e, 0.5);
        })
        .map(|_| ())
}

/// Runs the oracle (never-killed) workload for `seed`, returning the
/// canonical graph bytes after each commit: index `c` holds the expected
/// state at commit sequence `c`.
fn oracle_prefixes(seed: u64) -> Vec<Vec<u8>> {
    let p = tmp(&format!("oracle-{seed}.db"));
    let mut store = KgStore::create(&p, base_graph(), &opts()).unwrap();
    let mut prefixes = vec![store.graph().canonical_bytes()];
    for i in 1..=TXNS {
        apply_txn(&mut store, seed, i).unwrap();
        prefixes.push(store.graph().canonical_bytes());
    }
    let _ = std::fs::remove_file(&p);
    prefixes
}

/// Counts the engine I/O operations the full workload performs for `seed`.
fn discover_ops(seed: u64) -> u64 {
    let p = tmp(&format!("discover-{seed}.db"));
    let mut store = KgStore::create(&p, base_graph(), &opts()).unwrap();
    let observer = KillSwitch::observer();
    store.set_kill(observer.clone());
    for i in 1..=TXNS {
        apply_txn(&mut store, seed, i).unwrap();
    }
    let _ = std::fs::remove_file(&p);
    observer.ops_seen()
}

#[test]
fn kill_at_every_io_boundary_recovers_bit_identical() {
    let mut points: Vec<(u64, u64, KillMode)> = Vec::new();
    let mut oracles = std::collections::HashMap::new();
    for seed in SEEDS {
        let total = discover_ops(seed);
        assert!(total > 20, "workload too small to be a meaningful matrix ({total} ops)");
        oracles.insert(seed, oracle_prefixes(seed));
        for k in 0..total {
            points.push((seed, k, KillMode::Before));
            points.push((seed, k, KillMode::Torn));
        }
    }

    let report = crash_matrix(points, |&(seed, k, mode)| {
        let oracle = &oracles[&seed];
        let p = tmp(&format!("cm-{seed}-{k}-{mode:?}.db"));
        let mut store =
            KgStore::create(&p, base_graph(), &opts()).map_err(|e| format!("create: {e}"))?;
        store.set_kill(KillSwitch::armed(k, mode));

        // Run until the crash fires; count fully-acknowledged transactions.
        let mut acked = 0u64;
        let mut killed = false;
        for i in 1..=TXNS {
            match apply_txn(&mut store, seed, i) {
                Ok(()) => acked = i,
                Err(SagaError::Killed { .. }) => {
                    killed = true;
                    break;
                }
                Err(e) => return Err(format!("txn {i} failed with non-kill error: {e}")),
            }
        }
        if !killed {
            return Err(format!("switch at op {k} never fired (acked {acked})"));
        }
        drop(store);

        // Recovery must succeed and land on the acked transaction or the
        // in-flight one (durable iff its log frame was fully written).
        let mut store = KgStore::open(&p).map_err(|e| format!("recovery failed: {e}"))?;
        let c = store.last_commit();
        if c != acked && c != acked + 1 {
            return Err(format!("recovered commit {c}, expected {acked} or {}", acked + 1));
        }
        let got = store.graph().canonical_bytes();
        if got != oracle[c as usize] {
            return Err(format!("state at commit {c} is not bit-identical to oracle"));
        }
        let scrub = store.engine_mut().scrub().map_err(|e| format!("scrub: {e}"))?;
        if !scrub.is_clean() {
            return Err(format!("post-recovery scrub dirty: {:?}", scrub.problems));
        }

        // Finish the workload; the end state must match the oracle exactly.
        for i in (c + 1)..=TXNS {
            apply_txn(&mut store, seed, i).map_err(|e| format!("resume txn {i}: {e}"))?;
        }
        if store.graph().canonical_bytes() != oracle[TXNS as usize] {
            return Err("final state after resume diverges from oracle".into());
        }
        let _ = std::fs::remove_file(&p);
        Ok(())
    });
    report.assert_clean("kg-store crash matrix");
}

#[test]
fn bit_flips_anywhere_never_panic_and_never_serve_silent_corruption() {
    let seed = 7u64;
    let p = tmp("flip-base.db");
    let mut store = KgStore::create(&p, base_graph(), &opts()).unwrap();
    let mut valid_states: Vec<Vec<u8>> = vec![store.graph().canonical_bytes()];
    for i in 1..=TXNS {
        apply_txn(&mut store, seed, i).unwrap();
        valid_states.push(store.graph().canonical_bytes());
    }
    drop(store);
    let pristine = std::fs::read(&p).unwrap();

    // Flip one bit at a time: dense over the superblocks, sampled beyond.
    let offsets: Vec<usize> =
        (0..pristine.len()).filter(|&off| off < 1024 || off % 13 == 0).collect();
    let flip_path = tmp("flip-run.db");
    for off in offsets {
        let mut bytes = pristine.clone();
        bytes[off] ^= 0x10;
        std::fs::write(&flip_path, &bytes).unwrap();
        match KgStore::open(&flip_path) {
            // A successful open must land on *some* committed state —
            // a flip in the log tail legitimately truncates to a prefix.
            Ok(store) => {
                let got = store.graph().canonical_bytes();
                assert!(
                    valid_states.contains(&got),
                    "flip at byte {off} silently produced a state that never existed"
                );
            }
            // Typed error: exactly what corruption should produce.
            Err(SagaError::Corrupt(_)) | Err(SagaError::Io(_)) => {}
            Err(e) => panic!("flip at byte {off} surfaced unexpected error kind: {e}"),
        }
    }
    let _ = std::fs::remove_file(&p);
    let _ = std::fs::remove_file(&flip_path);
}

#[test]
fn recovery_cost_tracks_log_tail_not_database_size() {
    // Two stores with a 20x size difference but identical log tails: the
    // recovery byte counter (what open() actually reads beyond the
    // superblocks) must not scale with database size. Wall-clock timing is
    // asserted only loosely here (the CI bench gates it properly).
    let build = |name: &str, entities: u64| {
        let p = tmp(name);
        let mut store =
            KgStore::create(&p, base_graph(), &EngineOptions { page_size: 256, log_cap: 4096 })
                .unwrap();
        let person = store.graph().entity(EntityId(0)).entity_type;
        store
            .commit(|txn| {
                for e in 0..entities {
                    txn.add_entity(EntityBuilder::new(format!("bulk-{e}"), person));
                }
            })
            .unwrap();
        store.checkpoint().unwrap(); // put the bulk behind the checkpoint
                                     // Identical small tails on both stores.
        for i in 1..=3u64 {
            apply_txn(&mut store, 1, i).unwrap();
        }
        drop(store);
        p
    };
    let small = build("reco-small.db", 50);
    let large = build("reco-large.db", 1000);
    let small_store = KgStore::open(&small).unwrap();
    let large_store = KgStore::open(&large).unwrap();
    let s = small_store.engine().stats();
    let l = large_store.engine().stats();
    assert!(
        l.page_count > s.page_count * 4,
        "size difference did not materialize: {} vs {} pages",
        l.page_count,
        s.page_count
    );
    assert_eq!(s.tail_txns, l.tail_txns, "log tails must match for a fair comparison");
    assert_eq!(s.log_used, l.log_used, "recovery replay reads must depend on the tail alone");
    let _ = std::fs::remove_file(&small);
    let _ = std::fs::remove_file(&large);
}
