//! Property-based tests for the triple store's core invariants.

use proptest::prelude::*;
use saga_core::entity::EntityBuilder;
use saga_core::ontology::{Cardinality, Ontology, Volatility};
use saga_core::value::ValueKind;
use saga_core::{EntityId, KnowledgeGraph, Triple, Value};

/// A scripted store operation.
#[derive(Debug, Clone)]
enum Op {
    Insert { s: u8, p: u8, o: u8, literal: bool },
    Remove { s: u8, p: u8, o: u8, literal: bool },
    Commit,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16, 0u8..4, 0u8..16, any::<bool>()).prop_map(|(s, p, o, literal)| Op::Insert {
            s,
            p,
            o,
            literal
        }),
        (0u8..16, 0u8..4, 0u8..16, any::<bool>()).prop_map(|(s, p, o, literal)| Op::Remove {
            s,
            p,
            o,
            literal
        }),
        Just(Op::Commit),
    ]
}

fn build_graph() -> (KnowledgeGraph, Vec<EntityId>, Vec<saga_core::PredicateId>) {
    let mut o = Ontology::new();
    let t = o.add_type("thing", None);
    let preds: Vec<_> = (0..4)
        .map(|i| {
            o.add_predicate(
                &format!("p{i}"),
                &format!("p {i}"),
                ValueKind::Entity,
                None,
                Cardinality::Multi,
                Volatility::Stable,
                false,
            )
        })
        .collect();
    let mut kg = KnowledgeGraph::new(o);
    let ents: Vec<_> =
        (0..16).map(|i| kg.add_entity(EntityBuilder::new(format!("e{i}"), t))).collect();
    (kg, ents, preds)
}

fn make_triple(
    ents: &[EntityId],
    preds: &[saga_core::PredicateId],
    s: u8,
    p: u8,
    o: u8,
    literal: bool,
) -> Triple {
    let object =
        if literal { Value::Text(format!("lit{o}")) } else { Value::Entity(ents[o as usize]) };
    Triple { subject: ents[s as usize], predicate: preds[p as usize], object }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any op sequence, all three indexes agree and match a naive
    /// model (a HashSet of committed triples).
    #[test]
    fn indexes_agree_with_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let (mut kg, ents, preds) = build_graph();
        let mut model: std::collections::HashSet<String> = Default::default();
        let mut pending_add: Vec<String> = vec![];
        let mut pending_rm: Vec<String> = vec![];
        let keyof = |t: &Triple| format!("{:?}|{:?}|{}", t.subject, t.predicate, t.object.canonical());

        for op in &ops {
            match *op {
                Op::Insert { s, p, o, literal } => {
                    let t = make_triple(&ents, &preds, s, p, o, literal);
                    pending_add.push(keyof(&t));
                    kg.insert(t);
                }
                Op::Remove { s, p, o, literal } => {
                    let t = make_triple(&ents, &preds, s, p, o, literal);
                    pending_rm.push(keyof(&t));
                    kg.remove(&t);
                }
                Op::Commit => {
                    let adds: std::collections::HashSet<String> = pending_add.drain(..).collect();
                    for k in pending_rm.drain(..) {
                        if !adds.contains(&k) {
                            model.remove(&k);
                        }
                    }
                    model.extend(adds);
                    kg.commit();
                }
            }
        }
        kg.commit();
        let adds: std::collections::HashSet<String> = pending_add.drain(..).collect();
        for k in pending_rm.drain(..) {
            if !adds.contains(&k) {
                model.remove(&k);
            }
        }
        model.extend(adds);

        kg.check_invariants().unwrap();
        prop_assert_eq!(kg.num_triples(), model.len());
        for k in kg.keys() {
            let t = kg.decode(*k);
            prop_assert!(model.contains(&keyof(&t)));
            prop_assert!(kg.contains(&t));
        }
    }

    /// Serialization round-trips the full store state.
    #[test]
    fn serde_round_trip(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let (mut kg, ents, preds) = build_graph();
        for op in &ops {
            match *op {
                Op::Insert { s, p, o, literal } => kg.insert(make_triple(&ents, &preds, s, p, o, literal)),
                Op::Remove { s, p, o, literal } => kg.remove(&make_triple(&ents, &preds, s, p, o, literal)),
                Op::Commit => { kg.commit(); }
            }
        }
        kg.commit();
        let json = serde_json::to_string(&kg).unwrap();
        let mut back: KnowledgeGraph = serde_json::from_str(&json).unwrap();
        back.rebuild_after_load();
        back.check_invariants().unwrap();
        prop_assert_eq!(back.num_triples(), kg.num_triples());
        prop_assert_eq!(back.keys(), kg.keys());
        for k in kg.keys() {
            let t = kg.decode(*k);
            prop_assert!(back.contains(&t));
            prop_assert_eq!(back.fact_meta(&t).unwrap(), kg.fact_meta(&t).unwrap());
        }
    }

    /// Tokenizer: spans always slice to text whose normalization equals the
    /// token, and tokens are non-empty alphanumeric.
    #[test]
    fn tokenizer_spans_are_consistent(text in "\\PC{0,200}") {
        let toks = saga_core::text::tokenize(&text);
        for t in &toks {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.start < t.end && t.end <= text.len());
            let slice = &text[t.start..t.end];
            prop_assert_eq!(saga_core::text::normalize_phrase(slice), t.text.clone());
        }
        // Spans are ordered and non-overlapping.
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    /// Frame files round-trip arbitrary payload sequences.
    #[test]
    fn frames_round_trip(payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..256), 0..12)) {
        let dir = std::env::temp_dir().join("saga-core-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("frames-{}-{}.bin", std::process::id(), rand_suffix()));
        {
            let mut w = saga_core::persist::FrameWriter::create(&path).unwrap();
            for p in &payloads {
                w.write(p).unwrap();
            }
            w.flush().unwrap();
        }
        let mut r = saga_core::persist::FrameReader::open(&path).unwrap();
        let back = r.read_all().unwrap();
        prop_assert_eq!(back, payloads);
        std::fs::remove_file(&path).ok();
    }
}

/// Unique-per-call filename suffix: a fixed (env-overridable via
/// `SAGA_TEST_SEED`) base plus a process-local counter, so runs are
/// reproducible instead of seeded from the wall clock.
fn rand_suffix() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let base: u64 =
        std::env::var("SAGA_TEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5a6a_5eed);
    base.wrapping_add(NEXT.fetch_add(1, Ordering::Relaxed))
}
