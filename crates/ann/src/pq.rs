//! Product quantization (PQ): aggressive embedding compression for
//! on-device deployment, complementing the scalar quantizer.
//!
//! Vectors are split into `M` subspaces; each subspace is clustered with
//! k-means and vectors are stored as one centroid code per subspace
//! (`M` bytes per vector). Search uses asymmetric distance computation:
//! per-query lookup tables of query-to-centroid distances, summed per code.

use crate::flat::{select_top_k_into, Hit, WorstFirst};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use saga_core::kernels;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BinaryHeap;

/// PQ training parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PqConfig {
    /// Number of subspaces (must divide the dimension).
    pub subspaces: usize,
    /// Centroids per subspace (≤ 256 so codes fit a byte).
    pub centroids: usize,
    /// k-means iterations.
    pub iterations: usize,
    /// RNG seed for centroid initialization.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> Self {
        Self { subspaces: 8, centroids: 64, iterations: 10, seed: 0x9a }
    }
}

/// Trained per-subspace centroids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PqCodebook {
    dim: usize,
    subspaces: usize,
    sub_dim: usize,
    centroids: usize,
    /// `[subspace][centroid][sub_dim]`, flattened.
    table: Vec<f32>,
}

impl PqCodebook {
    /// Trains the codebook with k-means on `vectors`.
    ///
    /// # Panics
    /// Panics if `cfg.subspaces` does not divide the dimension, if
    /// `cfg.centroids > 256`, or if `vectors` is empty.
    pub fn train(vectors: &[Vec<f32>], cfg: &PqConfig) -> Self {
        assert!(!vectors.is_empty(), "cannot train on an empty set");
        let dim = vectors[0].len();
        assert_eq!(dim % cfg.subspaces, 0, "subspaces must divide dim");
        assert!(cfg.centroids <= 256, "codes must fit one byte");
        let sub_dim = dim / cfg.subspaces;
        let k = cfg.centroids.min(vectors.len());
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut table = vec![0.0f32; cfg.subspaces * k * sub_dim];

        for s in 0..cfg.subspaces {
            let lo = s * sub_dim;
            // Initialize centroids from random distinct vectors.
            let mut order: Vec<usize> = (0..vectors.len()).collect();
            order.shuffle(&mut rng);
            for (c, &vi) in order.iter().take(k).enumerate() {
                let dst = (s * k + c) * sub_dim;
                table[dst..dst + sub_dim].copy_from_slice(&vectors[vi][lo..lo + sub_dim]);
            }
            // Lloyd iterations.
            let mut assign = vec![0usize; vectors.len()];
            for _ in 0..cfg.iterations {
                // Assign.
                for (vi, v) in vectors.iter().enumerate() {
                    let sub = &v[lo..lo + sub_dim];
                    let mut best = 0usize;
                    let mut best_d = f32::INFINITY;
                    for c in 0..k {
                        let cent = &table[(s * k + c) * sub_dim..(s * k + c + 1) * sub_dim];
                        let d: f32 = sub.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    assign[vi] = best;
                }
                // Update.
                let mut sums = vec![0.0f32; k * sub_dim];
                let mut counts = vec![0usize; k];
                for (vi, v) in vectors.iter().enumerate() {
                    let c = assign[vi];
                    counts[c] += 1;
                    for (j, x) in v[lo..lo + sub_dim].iter().enumerate() {
                        sums[c * sub_dim + j] += x;
                    }
                }
                for c in 0..k {
                    if counts[c] > 0 {
                        let dst = (s * k + c) * sub_dim;
                        for j in 0..sub_dim {
                            table[dst + j] = sums[c * sub_dim + j] / counts[c] as f32;
                        }
                    }
                }
            }
        }
        Self { dim, subspaces: cfg.subspaces, sub_dim, centroids: k, table }
    }

    /// Encodes a vector as one code per subspace.
    pub fn encode(&self, v: &[f32]) -> Vec<u8> {
        assert_eq!(v.len(), self.dim);
        let mut codes = Vec::with_capacity(self.subspaces);
        for s in 0..self.subspaces {
            let lo = s * self.sub_dim;
            let sub = &v[lo..lo + self.sub_dim];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..self.centroids {
                let cent = self.centroid(s, c);
                let d: f32 = sub.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            codes.push(best as u8);
        }
        codes
    }

    /// Reconstructs the approximate vector from codes.
    pub fn decode(&self, codes: &[u8]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for (s, &c) in codes.iter().enumerate() {
            out.extend_from_slice(self.centroid(s, c as usize));
        }
        out
    }

    fn centroid(&self, s: usize, c: usize) -> &[f32] {
        let start = (s * self.centroids + c) * self.sub_dim;
        &self.table[start..start + self.sub_dim]
    }

    /// Per-query distance lookup table: `[subspace][centroid]` squared
    /// distances from the query's subvector to each centroid, written into
    /// a caller-owned buffer (cleared first) through the unrolled L2
    /// kernel — no allocation once `lut` has reached steady-state capacity.
    fn distance_table_into(&self, query: &[f32], lut: &mut Vec<f32>) {
        lut.clear();
        for s in 0..self.subspaces {
            let lo = s * self.sub_dim;
            let sub = &query[lo..lo + self.sub_dim];
            lut.extend((0..self.centroids).map(|c| kernels::l2_sq(sub, self.centroid(s, c))));
        }
    }
}

/// Reusable per-thread state for [`PqIndex`] queries: the per-query ADC
/// lookup table plus the bounded selection heap.
#[derive(Debug, Default)]
pub struct PqScratch {
    lut: Vec<f32>,
    heap: BinaryHeap<WorstFirst>,
}

impl PqScratch {
    /// Creates empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Backs the zero-allocation default search path.
    static PQ_SCRATCH: RefCell<PqScratch> = RefCell::new(PqScratch::new());
}

/// A PQ-compressed index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PqIndex {
    codebook: PqCodebook,
    ids: Vec<u64>,
    /// `subspaces` bytes per vector, concatenated.
    codes: Vec<u8>,
}

impl PqIndex {
    /// Trains a codebook on the data and encodes every vector.
    pub fn build(items: &[(u64, Vec<f32>)], cfg: &PqConfig) -> Self {
        let vectors: Vec<Vec<f32>> = items.iter().map(|(_, v)| v.clone()).collect();
        let codebook = PqCodebook::train(&vectors, cfg);
        let mut ids = Vec::with_capacity(items.len());
        let mut codes = Vec::with_capacity(items.len() * codebook.subspaces);
        for (id, v) in items {
            ids.push(*id);
            codes.extend(codebook.encode(v));
        }
        Self { codebook, ids, codes }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Code bytes + id bytes + codebook bytes.
    pub fn bytes(&self) -> usize {
        self.codes.len() + self.ids.len() * 8 + self.codebook.table.len() * 4
    }

    /// Approximate top-`k` nearest (squared-Euclidean) via asymmetric
    /// distance computation. Scores are negative distances (larger=closer).
    ///
    /// Uses a per-thread [`PqScratch`]; after warm-up the only allocation
    /// is the returned `Vec`. Use [`PqIndex::search_into`] for a fully
    /// allocation-free path.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        PQ_SCRATCH.with(|s| self.search_with(query, k, &mut s.borrow_mut()))
    }

    /// [`PqIndex::search`] with caller-owned scratch.
    pub fn search_with(&self, query: &[f32], k: usize, scratch: &mut PqScratch) -> Vec<Hit> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        self.search_into(query, k, scratch, &mut out);
        out
    }

    /// Zero-allocation ADC search: builds the lookup table in `scratch`,
    /// sums code distances per row, and selects into `out` (cleared
    /// first). Performs no heap allocation once scratch and `out` have
    /// reached steady-state capacity.
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut PqScratch,
        out: &mut Vec<Hit>,
    ) {
        let m = self.codebook.subspaces;
        let kc = self.codebook.centroids;
        self.codebook.distance_table_into(query, &mut scratch.lut);
        let lut = &scratch.lut;
        select_top_k_into(
            &mut scratch.heap,
            (0..self.len()).map(|i| {
                let codes = &self.codes[i * m..(i + 1) * m];
                let d: f32 = codes.iter().enumerate().map(|(s, &c)| lut[s * kc + c as usize]).sum();
                Hit { id: self.ids[i], score: -d }
            }),
            k,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;
    use crate::vector::Metric;

    fn clustered_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        // Clustered data (PQ shines on structured embeddings).
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> =
            (0..8).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        (0..n)
            .map(|i| {
                let c = &centers[i % centers.len()];
                c.iter().map(|x| x + rng.gen_range(-0.15f32..0.15)).collect()
            })
            .collect()
    }

    #[test]
    fn encode_decode_reduces_error_vs_random_codes() {
        let vecs = clustered_vectors(300, 16, 3);
        let cb = PqCodebook::train(
            &vecs,
            &PqConfig { subspaces: 4, centroids: 16, ..Default::default() },
        );
        let mut err = 0.0f32;
        for v in &vecs {
            let back = cb.decode(&cb.encode(v));
            err += v.iter().zip(&back).map(|(a, b)| (a - b) * (a - b)).sum::<f32>();
        }
        err /= vecs.len() as f32;
        assert!(err < 0.5, "mean reconstruction error {err}");
    }

    #[test]
    fn pq_search_recall_on_clustered_data() {
        let dim = 16;
        let vecs = clustered_vectors(500, dim, 7);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let pq =
            PqIndex::build(&items, &PqConfig { subspaces: 4, centroids: 32, ..Default::default() });
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        for (id, v) in &items {
            flat.add(*id, v);
        }
        let mut recall = 0.0;
        for q in vecs.iter().step_by(50) {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let got = pq.search(q, 10);
            recall += got.iter().filter(|h| truth.contains(&h.id)).count() as f64 / 10.0;
        }
        recall /= 10.0;
        assert!(recall > 0.5, "PQ recall {recall}");
    }

    #[test]
    fn pq_is_much_smaller_than_f32() {
        let vecs = clustered_vectors(1000, 32, 9);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let pq = PqIndex::build(&items, &PqConfig::default());
        let f32_bytes = 1000 * 32 * 4;
        assert!(pq.bytes() * 3 < f32_bytes, "PQ {} vs f32 {f32_bytes}", pq.bytes());
    }

    #[test]
    fn deterministic_training() {
        let vecs = clustered_vectors(200, 8, 5);
        let a = PqCodebook::train(
            &vecs,
            &PqConfig { subspaces: 2, centroids: 8, ..Default::default() },
        );
        let b = PqCodebook::train(
            &vecs,
            &PqConfig { subspaces: 2, centroids: 8, ..Default::default() },
        );
        assert_eq!(a.encode(&vecs[0]), b.encode(&vecs[0]));
    }

    #[test]
    fn scratch_reuse_matches_fresh_searches() {
        let dim = 16;
        let vecs = clustered_vectors(300, dim, 11);
        let items: Vec<(u64, Vec<f32>)> =
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
        let pq =
            PqIndex::build(&items, &PqConfig { subspaces: 4, centroids: 16, ..Default::default() });
        let mut warm = PqScratch::new();
        for q in vecs.iter().step_by(40) {
            let reused = pq.search_with(q, 7, &mut warm);
            let fresh = pq.search_with(q, 7, &mut PqScratch::new());
            assert_eq!(reused, fresh);
        }
    }

    #[test]
    #[should_panic(expected = "subspaces must divide dim")]
    fn bad_subspace_count_panics() {
        let vecs = clustered_vectors(50, 10, 1);
        PqCodebook::train(&vecs, &PqConfig { subspaces: 3, ..Default::default() });
    }
}
