//! A low-latency, versioned embedding key-value cache.
//!
//! The paper (Sec. 3.2) precomputes entity embeddings "and cache\[s\] the
//! results in a low-latency key-value store"; at query time only the query
//! embedding is computed. This is that store: sharded maps behind
//! `parking_lot::RwLock`, with hit/miss statistics used by experiment E4's
//! price/performance rows.

use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};

const SHARDS: usize = 16;

/// Statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Cache hits observed.
    pub hits: u64,
    /// Cache misses observed.
    pub misses: u64,
    /// Entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// Hit rate in `[0,1]`; 0 when never queried.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Record this snapshot through an obs scope (call once per snapshot —
    /// counters add): `hits`, `misses` and `entries` counters.
    pub fn record_to(&self, scope: &saga_core::obs::Scope) {
        scope.counter("hits").add(self.hits);
        scope.counter("misses").add(self.misses);
        scope.counter("entries").add(self.entries as u64);
    }
}

/// Sharded embedding cache keyed by `u64` (entity id).
pub struct EmbeddingCache {
    shards: Vec<RwLock<std::collections::HashMap<u64, (u64, Vec<f32>)>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Monotonic version stamp for refreshes.
    version: AtomicU64,
}

impl Default for EmbeddingCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EmbeddingCache {
    /// Creates a new instance.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(Default::default())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            version: AtomicU64::new(0),
        }
    }

    #[inline]
    fn shard(&self, key: u64) -> &RwLock<std::collections::HashMap<u64, (u64, Vec<f32>)>> {
        &self.shards[(key as usize) % SHARDS]
    }

    /// Stores `v` under `key`, stamping the current version.
    pub fn put(&self, key: u64, v: Vec<f32>) {
        let ver = self.version.load(Ordering::Relaxed);
        self.shard(key).write().insert(key, (ver, v));
    }

    /// Fetches the embedding for `key`, recording hit/miss.
    pub fn get(&self, key: u64) -> Option<Vec<f32>> {
        let out = self.shard(key).read().get(&key).map(|(_, v)| v.clone());
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Zero-copy read: runs `f` on the stored embedding while holding the
    /// shard read lock, recording hit/miss. The serving-path variant of
    /// [`EmbeddingCache::get`] — no per-lookup clone of the vector.
    pub fn with<R>(&self, key: u64, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        let out = self.shard(key).read().get(&key).map(|(_, v)| f(v));
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        out
    }

    /// Fetches with the stored version stamp (for freshness checks).
    pub fn get_versioned(&self, key: u64) -> Option<(u64, Vec<f32>)> {
        self.shard(key).read().get(&key).cloned()
    }

    /// Bumps the global version; newly-put entries carry the new stamp.
    pub fn bump_version(&self) -> u64 {
        self.version.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Current version stamp.
    pub fn current_version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Removes entries older than `min_version`, returning how many were
    /// evicted. Used when embeddings are retrained.
    pub fn evict_older_than(&self, min_version: u64) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut map = shard.write();
            let before = map.len();
            map.retain(|_, (ver, _)| *ver >= min_version);
            evicted += before - map.len();
        }
        evicted
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_and_stats() {
        let c = EmbeddingCache::new();
        c.put(1, vec![1.0, 2.0]);
        assert_eq!(c.get(1), Some(vec![1.0, 2.0]));
        assert_eq!(c.get(2), None);
        let s = c.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn with_reads_without_clone_and_counts() {
        let c = EmbeddingCache::new();
        c.put(7, vec![3.0, 4.0]);
        assert_eq!(c.with(7, saga_core::kernels::l2_norm), Some(5.0));
        assert_eq!(c.with(8, |v| v.len()), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn versioned_eviction() {
        let c = EmbeddingCache::new();
        c.put(1, vec![0.1]);
        c.put(2, vec![0.2]);
        let v1 = c.bump_version();
        c.put(3, vec![0.3]);
        let evicted = c.evict_older_than(v1);
        assert_eq!(evicted, 2);
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(3), Some(vec![0.3]));
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let c = Arc::new(EmbeddingCache::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        c.put(t * 1000 + i, vec![i as f32]);
                        c.get(t * 1000 + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().entries, 2000);
        assert_eq!(c.stats().hits, 2000);
    }
}
