//! Scalar quantization (f32 → i8), the paper's on-device model-compression
//! lever ("compressing learned models (e.g., by floating point precision
//! reduction)", Sec. 5 Resource Constraints).
//!
//! Scoring never dequantizes: rows are consumed as raw i8 through the
//! integer kernels in [`saga_core::kernels`], with each row's scale folded
//! into the final sum once. Cosine and Euclidean additionally need per-row
//! norms, which the table precomputes at build time (4 bytes per row), so
//! every candidate costs exactly one mixed-precision dot product. Top-k
//! search runs that dot over the whole slab in one tiled batch-kernel call
//! (`kernels::dot_f32i8_batch`) and folds scales/norms in during selection.

use crate::flat::{select_top_k_into, Hit, WorstFirst};
use crate::vector::Metric;
use saga_core::kernels;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::BinaryHeap;

/// A symmetrically-quantized vector: `value ≈ q * scale`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    /// Per-vector dequantization scale.
    pub scale: f32,
    /// Quantized payload.
    pub data: Vec<i8>,
}

impl QuantizedVector {
    /// Quantizes `v` with a per-vector scale (max-abs symmetric).
    pub fn quantize(v: &[f32]) -> Self {
        let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let data = v.iter().map(|x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
        Self { scale, data }
    }

    /// Reconstructs the approximate f32 vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Memory footprint in bytes (data + scale).
    pub fn bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<f32>()
    }

    /// Dequantized L2 norm `scale · ‖data‖`, computed without
    /// materializing the f32 vector.
    pub fn norm(&self) -> f32 {
        self.scale * (kernels::norm_sq_i8(&self.data) as f32).sqrt()
    }

    /// Similarity against an f32 query without materializing the
    /// dequantized vector — every metric runs on raw i8 data and performs
    /// no allocation.
    pub fn score(&self, metric: Metric, query: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), self.data.len());
        match metric {
            Metric::Dot => self.scale * kernels::dot_f32i8(query, &self.data),
            Metric::Cosine => {
                // The scale cancels between numerator and row norm, so
                // cosine needs only the integer row norm.
                let d = kernels::dot_f32i8(query, &self.data);
                let qn = kernels::norm_sq(query);
                let bn = kernels::norm_sq_i8(&self.data) as f32;
                if qn == 0.0 || bn == 0.0 {
                    0.0
                } else {
                    d / (qn.sqrt() * bn.sqrt())
                }
            }
            // One fused pass — a standalone row has no precomputed norm,
            // so the norm-expansion form would cost an extra sweep here.
            Metric::Euclidean => -kernels::l2_sq_f32i8_direct(query, &self.data, self.scale),
        }
    }
}

/// Reusable per-thread state for [`QuantizedTable`] queries: the bounded
/// selection heap plus the raw-dot buffer the tiled batch kernel writes
/// into (one f32 per row; scales and norms are folded in during selection).
#[derive(Debug, Default)]
pub struct QuantScratch {
    heap: BinaryHeap<WorstFirst>,
    scores: Vec<f32>,
}

impl QuantScratch {
    /// Creates empty scratch; the heap grows to k on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Backs the zero-allocation default search path.
    static QUANT_SCRATCH: RefCell<QuantScratch> = RefCell::new(QuantScratch::new());
}

/// Serialized form — per-row norms are an in-memory acceleration structure
/// rebuilt on load, keeping the wire format identical to older snapshots.
#[derive(Serialize, Deserialize)]
struct QuantizedTableData {
    dim: usize,
    ids: Vec<u64>,
    scales: Vec<f32>,
    data: Vec<i8>,
    /// Tombstone flags; absent in pre-mutation snapshots (all rows live).
    #[serde(default)]
    dead: Vec<bool>,
}

impl From<QuantizedTableData> for QuantizedTable {
    fn from(d: QuantizedTableData) -> Self {
        let mut t = QuantizedTable {
            dim: d.dim,
            ids: d.ids,
            scales: d.scales,
            data: d.data,
            dead: d.dead,
            tombstones: 0,
            pos: std::collections::HashMap::new(),
            norms: vec![],
        };
        t.dead.resize(t.ids.len(), false);
        t.tombstones = t.dead.iter().filter(|&&d| d).count();
        for (i, &id) in t.ids.iter().enumerate() {
            if !t.dead[i] {
                t.pos.entry(id).or_insert(i as u32);
            }
        }
        t.norms = (0..t.len())
            .map(|i| t.scales[i] * (kernels::norm_sq_i8(t.row(i)) as f32).sqrt())
            .collect();
        t
    }
}

/// A table of quantized vectors with shared dimension — the compressed
/// on-device embedding asset.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "QuantizedTableData")]
pub struct QuantizedTable {
    dim: usize,
    ids: Vec<u64>,
    scales: Vec<f32>,
    data: Vec<i8>,
    /// Tombstone flags for deleted/shadowed rows; slab bytes stay in place
    /// until [`compact`](Self::compact).
    dead: Vec<bool>,
    /// Live tombstone count (recomputed on load).
    #[serde(skip)]
    tombstones: usize,
    /// id → first live row, the upsert/remove lookup structure.
    #[serde(skip)]
    pos: std::collections::HashMap<u64, u32>,
    /// Dequantized row norms (`scale · ‖row‖`), precomputed so cosine and
    /// Euclidean scoring cost one dot product per candidate.
    #[serde(skip)]
    norms: Vec<f32>,
}

impl QuantizedTable {
    /// An empty table ready for incremental [`upsert`](Self::upsert)s.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            ids: Vec::new(),
            scales: Vec::new(),
            data: Vec::new(),
            dead: Vec::new(),
            tombstones: 0,
            pos: std::collections::HashMap::new(),
            norms: Vec::new(),
        }
    }

    /// Quantizes a set of `(id, vector)` pairs.
    pub fn build(dim: usize, items: impl IntoIterator<Item = (u64, Vec<f32>)>) -> Self {
        let mut t = Self::new(dim);
        for (id, v) in items {
            assert_eq!(v.len(), dim, "vector dimension mismatch");
            let q = QuantizedVector::quantize(&v);
            t.push_row(id, q);
        }
        t
    }

    fn push_row(&mut self, id: u64, q: QuantizedVector) {
        self.pos.entry(id).or_insert(self.ids.len() as u32);
        self.ids.push(id);
        self.scales.push(q.scale);
        self.norms.push(q.norm());
        self.data.extend_from_slice(&q.data);
        self.dead.push(false);
    }

    /// Assembles a table from already-quantized rows, e.g. rows that were
    /// staged through a memory-bounded spill sorter. No f32 vectors are
    /// materialized.
    pub fn from_quantized_rows(
        dim: usize,
        items: impl IntoIterator<Item = (u64, QuantizedVector)>,
    ) -> Self {
        let mut t = Self::new(dim);
        for (id, q) in items {
            assert_eq!(q.data.len(), dim, "row dimension mismatch");
            t.push_row(id, q);
        }
        t
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.ids.len() - self.tombstones
    }

    /// Number of tombstoned rows awaiting [`compact`](Self::compact).
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Re-quantizes `v` over an existing row for `id` in place, or appends
    /// a fresh row when `id` is new. Returns `true` if an existing row was
    /// replaced. Any shadowed duplicate rows are tombstoned so exactly one
    /// live row remains per upserted id.
    pub fn upsert(&mut self, id: u64, v: &[f32]) -> bool {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let q = QuantizedVector::quantize(v);
        match self.pos.get(&id).copied() {
            Some(i) => {
                let i = i as usize;
                for j in (i + 1)..self.ids.len() {
                    if self.ids[j] == id && !self.dead[j] {
                        self.dead[j] = true;
                        self.tombstones += 1;
                    }
                }
                self.scales[i] = q.scale;
                self.norms[i] = q.norm();
                self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(&q.data);
                true
            }
            None => {
                self.push_row(id, q);
                false
            }
        }
    }

    /// Tombstones every live row of `id`; slab bytes are reclaimed by the
    /// next [`compact`](Self::compact). Returns `true` if any row died.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.pos.remove(&id).is_none() {
            return false;
        }
        for i in 0..self.ids.len() {
            if self.ids[i] == id && !self.dead[i] {
                self.dead[i] = true;
                self.tombstones += 1;
            }
        }
        true
    }

    /// Drops tombstoned rows in place, preserving the relative order of
    /// live rows, and rebuilds the id lookup.
    pub fn compact(&mut self) {
        if self.tombstones == 0 {
            return;
        }
        let mut w = 0usize;
        for r in 0..self.ids.len() {
            if self.dead[r] {
                continue;
            }
            if w != r {
                self.ids[w] = self.ids[r];
                self.scales[w] = self.scales[r];
                self.norms[w] = self.norms[r];
                self.data.copy_within(r * self.dim..(r + 1) * self.dim, w * self.dim);
            }
            w += 1;
        }
        self.ids.truncate(w);
        self.scales.truncate(w);
        self.norms.truncate(w);
        self.data.truncate(w * self.dim);
        self.dead.clear();
        self.dead.resize(w, false);
        self.tombstones = 0;
        self.pos.clear();
        for (i, &id) in self.ids.iter().enumerate() {
            self.pos.entry(id).or_insert(i as u32);
        }
    }

    /// Total payload bytes (i8 data + scales + norms + ids).
    pub fn bytes(&self) -> usize {
        self.data.len() + (self.scales.len() + self.norms.len()) * 4 + self.ids.len() * 8
    }

    /// Raw quantized row `i`.
    fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Scores row `i` against an f32 query without dequantizing — the
    /// per-candidate path used by serving layers that pick their own
    /// candidate sets (e.g. the on-device assistant) instead of running a
    /// full top-k scan. Allocation-free.
    pub fn score_row(&self, metric: Metric, query: &[f32], i: usize) -> f32 {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        match metric {
            Metric::Dot => self.scales[i] * kernels::dot_f32i8(query, self.row(i)),
            Metric::Cosine => {
                let q_norm = kernels::norm_sq(query).sqrt();
                let n = self.norms[i];
                if q_norm == 0.0 || n == 0.0 {
                    0.0
                } else {
                    self.scales[i] * kernels::dot_f32i8(query, self.row(i)) / (q_norm * n)
                }
            }
            // The canonical distance kernel picks the fused sweep or the
            // norm-expansion per dimension regime.
            Metric::Euclidean => -kernels::l2_sq_f32i8(
                query,
                kernels::norm_sq(query),
                self.row(i),
                self.scales[i],
                self.norms[i],
            ),
        }
    }

    /// Dequantized vector for row `i`.
    pub fn dequantize_row(&self, i: usize) -> Vec<f32> {
        let s = self.scales[i];
        self.row(i).iter().map(|&q| q as f32 * s).collect()
    }

    /// Exact top-`k` search over the quantized table (bounded-heap
    /// selection, O(N + k log k)).
    ///
    /// Uses a per-thread [`QuantScratch`]; after warm-up the only
    /// allocation is the returned `Vec`. Use [`QuantizedTable::search_into`]
    /// for a fully allocation-free path.
    pub fn search(&self, metric: Metric, query: &[f32], k: usize) -> Vec<Hit> {
        QUANT_SCRATCH.with(|s| self.search_with(metric, query, k, &mut s.borrow_mut()))
    }

    /// [`QuantizedTable::search`] with caller-owned scratch.
    pub fn search_with(
        &self,
        metric: Metric,
        query: &[f32],
        k: usize,
        scratch: &mut QuantScratch,
    ) -> Vec<Hit> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        self.search_into(metric, query, k, scratch, &mut out);
        out
    }

    /// Zero-allocation search: one tiled batch-kernel pass over the whole
    /// i8 slab into the scratch dot buffer, then scales/norms folded in
    /// during bounded-heap selection — each candidate's raw dot is computed
    /// exactly once, with the query held register-resident across row tiles
    /// (`kernels::dot_f32i8_batch`). Small-dimension Euclidean keeps the
    /// fused per-row sweep, which beats the norm-expansion there (see
    /// `kernels::L2_F32I8_DIRECT_MAX_DIM`). Performs no heap allocation
    /// once scratch and `out` have reached steady-state capacity.
    pub fn search_into(
        &self,
        metric: Metric,
        query: &[f32],
        k: usize,
        scratch: &mut QuantScratch,
        out: &mut Vec<Hit>,
    ) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let q_norm_sq = kernels::norm_sq(query);
        let q_norm = q_norm_sq.sqrt();
        if matches!(metric, Metric::Euclidean) && self.dim <= kernels::L2_F32I8_DIRECT_MAX_DIM {
            let hits = self
                .ids
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.tombstones == 0 || !self.dead[i])
                .map(|(i, &id)| {
                    let score = -kernels::l2_sq_f32i8_direct(query, self.row(i), self.scales[i]);
                    Hit { id, score }
                });
            select_top_k_into(&mut scratch.heap, hits, k, out);
            return;
        }
        if self.is_empty() {
            out.clear();
            return;
        }
        kernels::dot_f32i8_batch(query, &self.data, &mut scratch.scores);
        let hits = self
            .ids
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.tombstones == 0 || !self.dead[i])
            .map(|(i, &id)| {
                let d = scratch.scores[i];
                let score = match metric {
                    Metric::Dot => self.scales[i] * d,
                    Metric::Cosine => {
                        let n = self.norms[i];
                        if q_norm == 0.0 || n == 0.0 {
                            0.0
                        } else {
                            self.scales[i] * d / (q_norm * n)
                        }
                    }
                    // Norm-expansion over the precomputed dequantized row
                    // norms: ‖q − s·b‖² = ‖q‖² − 2s·(q·b) + (s‖b‖)².
                    Metric::Euclidean => -(q_norm_sq - 2.0 * self.scales[i] * d
                        + self.norms[i] * self.norms[i])
                        .max(0.0),
                };
                Hit { id, score }
            });
        select_top_k_into(&mut scratch.heap, hits, k, out);
    }

    /// [`search_batch`](Self::search_batch) recording whole-batch latency
    /// into `hist` through `clock` — one lock-free, allocation-free
    /// `record` per call, so the warm search path stays zero-allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn search_batch_recorded(
        &self,
        metric: Metric,
        queries: &[Vec<f32>],
        k: usize,
        workers: usize,
        hist: &saga_core::obs::Histogram,
        clock: &dyn saga_core::obs::Clock,
    ) -> Vec<Vec<Hit>> {
        let start = clock.now_ticks();
        let out = self.search_batch(metric, queries, k, workers);
        hist.record(clock.now_ticks().saturating_sub(start));
        out
    }

    /// Exact top-`k` for a batch of queries fanned out as `workers` chunks
    /// over the shared persistent pool ([`saga_core::pool`]) — zero thread
    /// spawns in steady state. Each chunk gets its own scratch; results are
    /// in query order, identical to sequential [`QuantizedTable::search`]
    /// per query.
    pub fn search_batch(
        &self,
        metric: Metric,
        queries: &[Vec<f32>],
        k: usize,
        workers: usize,
    ) -> Vec<Vec<Hit>> {
        let workers = workers.max(1);
        if workers == 1 || queries.len() <= 1 {
            let mut scratch = QuantScratch::new();
            return queries.iter().map(|q| self.search_with(metric, q, k, &mut scratch)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        let tasks = queries.len().div_ceil(chunk);
        saga_core::pool::global()
            .map_tasks(tasks, |t| {
                let qs = &queries[t * chunk..((t + 1) * chunk).min(queries.len())];
                let mut scratch = QuantScratch::new();
                qs.iter().map(|q| self.search_with(metric, q, k, &mut scratch)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_error_is_small() {
        let v: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin()).collect();
        let q = QuantizedVector::quantize(&v);
        let back = q.dequantize();
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_vector_is_stable() {
        let q = QuantizedVector::quantize(&[0.0; 8]);
        assert_eq!(q.dequantize(), vec![0.0; 8]);
        // Zero-norm guards: cosine is 0, euclidean is plain −‖q‖².
        assert_eq!(q.score(Metric::Cosine, &[1.0; 8]), 0.0);
        assert!((q.score(Metric::Euclidean, &[1.0; 8]) + 8.0).abs() < 1e-5);
    }

    #[test]
    fn quantized_is_4x_smaller() {
        let v = vec![0.5f32; 128];
        let q = QuantizedVector::quantize(&v);
        assert!(q.bytes() * 3 < v.len() * 4, "{} vs {}", q.bytes(), v.len() * 4);
    }

    #[test]
    fn quantized_search_approximates_exact() {
        use crate::flat::FlatIndex;
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dim = 32;
        let vecs: Vec<Vec<f32>> =
            (0..200).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut flat = FlatIndex::new(dim, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
        }
        let table =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let exact: std::collections::HashSet<u64> =
            flat.search(&q, 10).into_iter().map(|h| h.id).collect();
        let approx = table.search(Metric::Cosine, &q, 10);
        let overlap = approx.iter().filter(|h| exact.contains(&h.id)).count();
        assert!(overlap >= 8, "quantized recall {overlap}/10");
    }

    #[test]
    fn dot_score_matches_dequantized_dot() {
        let v = vec![0.25f32, -0.5, 0.75, 1.0];
        let q = QuantizedVector::quantize(&v);
        let query = vec![1.0f32, 2.0, -1.0, 0.5];
        let fast = q.score(Metric::Dot, &query);
        let slow = Metric::Dot.score(&q.dequantize(), &query);
        assert!((fast - slow).abs() < 1e-4);
    }

    #[test]
    fn all_metrics_match_dequantized_reference() {
        let v: Vec<f32> = (0..48).map(|i| ((i as f32) * 0.23).sin()).collect();
        let q = QuantizedVector::quantize(&v);
        let query: Vec<f32> = (0..48).map(|i| ((i as f32) * 0.41).cos()).collect();
        let deq = q.dequantize();
        for m in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            let fast = q.score(m, &query);
            let slow = m.score(&query, &deq);
            assert!((fast - slow).abs() < 1e-3, "{m:?}: {fast} vs {slow}");
        }
    }

    #[test]
    fn table_search_matches_per_row_scoring() {
        let dim = 24;
        let vecs: Vec<Vec<f32>> = (0..50)
            .map(|i| (0..dim).map(|j| ((i * dim + j) as f32 * 0.17).sin()).collect())
            .collect();
        let table =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let query: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.31).cos()).collect();
        for m in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            let hits = table.search(m, &query, 5);
            for h in &hits {
                let qv = QuantizedVector {
                    scale: table.scales[h.id as usize],
                    data: table.row(h.id as usize).to_vec(),
                };
                assert!(
                    (h.score - qv.score(m, &query)).abs() < 1e-4,
                    "{m:?} id {}: {} vs {}",
                    h.id,
                    h.score,
                    qv.score(m, &query)
                );
            }
        }
    }

    #[test]
    fn score_row_matches_search_scores() {
        let dim = 20;
        let vecs: Vec<Vec<f32>> = (0..30)
            .map(|i| (0..dim).map(|j| ((i * 11 + j) as f32 * 0.19).sin()).collect())
            .collect();
        let table =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let query: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.43).cos()).collect();
        for m in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            for h in table.search(m, &query, table.len()) {
                let direct = table.score_row(m, &query, h.id as usize);
                // search_into scores through the tiled batch kernel,
                // score_row through the single-row kernel; they agree
                // within float-reassociation tolerance, not bit-exactly.
                let tol = 1e-5 * direct.abs().max(1.0);
                assert!((h.score - direct).abs() < tol, "{m:?} id {}", h.id);
            }
        }
    }

    #[test]
    fn from_quantized_rows_matches_build() {
        let dim = 12;
        let vecs: Vec<Vec<f32>> = (0..25)
            .map(|i| (0..dim).map(|j| ((i * 5 + j) as f32 * 0.27).sin()).collect())
            .collect();
        let built =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let assembled = QuantizedTable::from_quantized_rows(
            dim,
            vecs.iter().enumerate().map(|(i, v)| (i as u64, QuantizedVector::quantize(v))),
        );
        assert_eq!(built.ids, assembled.ids);
        assert_eq!(built.scales, assembled.scales);
        assert_eq!(built.data, assembled.data);
        assert_eq!(built.norms, assembled.norms);
    }

    #[test]
    fn upsert_remove_compact_track_live_rows() {
        let dim = 8;
        let v = |seed: u64| -> Vec<f32> {
            (0..dim).map(|j| ((seed * 13 + j as u64) as f32 * 0.21).sin()).collect()
        };
        let mut t = QuantizedTable::new(dim);
        assert!(!t.upsert(1, &v(1)));
        assert!(!t.upsert(2, &v(2)));
        assert!(!t.upsert(3, &v(3)));
        assert!(t.upsert(2, &v(20)), "existing row replaced in place");
        assert_eq!(t.len(), 3);
        assert!(t.remove(3));
        assert!(!t.remove(3));
        assert_eq!(t.live_len(), 2);
        for m in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            let hits = t.search(m, &v(0), 10);
            let ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
            assert!(!ids.contains(&3), "{m:?}: tombstoned id returned");
            assert_eq!(hits.len(), 2, "{m:?}");
        }
        // The replaced row scores like a fresh quantization of the new vector.
        let q = QuantizedVector::quantize(&v(20));
        let hits = t.search(Metric::Dot, &v(0), 10);
        let h2 = hits.iter().find(|h| h.id == 2).unwrap();
        assert!((h2.score - q.score(Metric::Dot, &v(0))).abs() < 1e-4);
        let before = t.search(Metric::Cosine, &v(0), 10);
        t.compact();
        assert_eq!(t.tombstones(), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.search(Metric::Cosine, &v(0), 10), before);
    }

    #[test]
    fn serde_round_trip_preserves_tombstones() {
        let dim = 4;
        let mut t = QuantizedTable::new(dim);
        t.upsert(1, &[1.0, 0.0, 0.0, 0.0]);
        t.upsert(2, &[0.0, 1.0, 0.0, 0.0]);
        t.remove(1);
        // Offline builds link a type-check-only serde stub; skip there.
        let Ok(json) = serde_json::to_string(&t) else { return };
        let back: QuantizedTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.live_len(), 1);
        assert_eq!(back.tombstones(), 1);
        let hits = back.search(Metric::Dot, &[1.0, 1.0, 0.0, 0.0], 5);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![2]);
        let mut back = back;
        back.upsert(1, &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(back.live_len(), 2, "post-load upsert reuses the lookup map");
    }

    #[test]
    fn search_batch_matches_sequential() {
        let dim = 16;
        let vecs: Vec<Vec<f32>> = (0..120)
            .map(|i| (0..dim).map(|j| ((i * 7 + j) as f32 * 0.13).sin()).collect())
            .collect();
        let table =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let queries: Vec<Vec<f32>> = (0..13)
            .map(|i| (0..dim).map(|j| ((i * 3 + j) as f32 * 0.29).cos()).collect())
            .collect();
        let seq: Vec<Vec<Hit>> =
            queries.iter().map(|q| table.search(Metric::Cosine, q, 5)).collect();
        for workers in [1, 3, 8] {
            assert_eq!(
                table.search_batch(Metric::Cosine, &queries, 5, workers),
                seq,
                "workers={workers}"
            );
        }
    }
}
