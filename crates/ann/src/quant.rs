//! Scalar quantization (f32 → i8), the paper's on-device model-compression
//! lever ("compressing learned models (e.g., by floating point precision
//! reduction)", Sec. 5 Resource Constraints).

use crate::vector::Metric;
use serde::{Deserialize, Serialize};

/// A symmetrically-quantized vector: `value ≈ q * scale`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedVector {
    /// Per-vector dequantization scale.
    pub scale: f32,
    /// Quantized payload.
    pub data: Vec<i8>,
}

impl QuantizedVector {
    /// Quantizes `v` with a per-vector scale (max-abs symmetric).
    pub fn quantize(v: &[f32]) -> Self {
        let max_abs = v.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let data = v.iter().map(|x| (x / scale).round().clamp(-127.0, 127.0) as i8).collect();
        Self { scale, data }
    }

    /// Reconstructs the approximate f32 vector.
    pub fn dequantize(&self) -> Vec<f32> {
        self.data.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Memory footprint in bytes (data + scale).
    pub fn bytes(&self) -> usize {
        self.data.len() + std::mem::size_of::<f32>()
    }

    /// Similarity against an f32 query without materializing the
    /// dequantized vector.
    pub fn score(&self, metric: Metric, query: &[f32]) -> f32 {
        debug_assert_eq!(query.len(), self.data.len());
        match metric {
            Metric::Dot => {
                let mut dot = 0.0f32;
                for (&q, &x) in self.data.iter().zip(query) {
                    dot += q as f32 * x;
                }
                dot * self.scale
            }
            Metric::Cosine | Metric::Euclidean => {
                let deq = self.dequantize();
                metric.score(query, &deq)
            }
        }
    }
}

/// A table of quantized vectors with shared dimension — the compressed
/// on-device embedding asset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuantizedTable {
    dim: usize,
    ids: Vec<u64>,
    scales: Vec<f32>,
    data: Vec<i8>,
}

impl QuantizedTable {
    /// Quantizes a set of `(id, vector)` pairs.
    pub fn build(dim: usize, items: impl IntoIterator<Item = (u64, Vec<f32>)>) -> Self {
        let mut t = Self { dim, ids: Vec::new(), scales: Vec::new(), data: Vec::new() };
        for (id, v) in items {
            assert_eq!(v.len(), dim, "vector dimension mismatch");
            let q = QuantizedVector::quantize(&v);
            t.ids.push(id);
            t.scales.push(q.scale);
            t.data.extend_from_slice(&q.data);
        }
        t
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Total payload bytes (i8 data + scales + ids).
    pub fn bytes(&self) -> usize {
        self.data.len() + self.scales.len() * 4 + self.ids.len() * 8
    }

    /// Dequantized vector for row `i`.
    pub fn dequantize_row(&self, i: usize) -> Vec<f32> {
        let s = self.scales[i];
        self.data[i * self.dim..(i + 1) * self.dim].iter().map(|&q| q as f32 * s).collect()
    }

    /// Exact top-`k` search over the quantized table (bounded-heap
    /// selection, O(N + k log k)).
    pub fn search(&self, metric: Metric, query: &[f32], k: usize) -> Vec<crate::flat::Hit> {
        crate::flat::select_top_k(
            (0..self.len()).map(|i| {
                let v = self.dequantize_row(i);
                crate::flat::Hit { id: self.ids[i], score: metric.score(query, &v) }
            }),
            k,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_round_trip_error_is_small() {
        let v: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.37).sin()).collect();
        let q = QuantizedVector::quantize(&v);
        let back = q.dequantize();
        for (a, b) in v.iter().zip(&back) {
            assert!((a - b).abs() < 0.01, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_vector_is_stable() {
        let q = QuantizedVector::quantize(&[0.0; 8]);
        assert_eq!(q.dequantize(), vec![0.0; 8]);
    }

    #[test]
    fn quantized_is_4x_smaller() {
        let v = vec![0.5f32; 128];
        let q = QuantizedVector::quantize(&v);
        assert!(q.bytes() * 3 < v.len() * 4, "{} vs {}", q.bytes(), v.len() * 4);
    }

    #[test]
    fn quantized_search_approximates_exact() {
        use crate::flat::FlatIndex;
        use rand::prelude::*;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let dim = 32;
        let vecs: Vec<Vec<f32>> =
            (0..200).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut flat = FlatIndex::new(dim, Metric::Cosine);
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
        }
        let table =
            QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let exact: std::collections::HashSet<u64> =
            flat.search(&q, 10).into_iter().map(|h| h.id).collect();
        let approx = table.search(Metric::Cosine, &q, 10);
        let overlap = approx.iter().filter(|h| exact.contains(&h.id)).count();
        assert!(overlap >= 8, "quantized recall {overlap}/10");
    }

    #[test]
    fn dot_score_matches_dequantized_dot() {
        let v = vec![0.25f32, -0.5, 0.75, 1.0];
        let q = QuantizedVector::quantize(&v);
        let query = vec![1.0f32, 2.0, -1.0, 0.5];
        let fast = q.score(Metric::Dot, &query);
        let slow = Metric::Dot.score(&q.dequantize(), &query);
        assert!((fast - slow).abs() < 1e-4);
    }
}
