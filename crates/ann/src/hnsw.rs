//! Hierarchical Navigable Small World (HNSW) approximate k-NN index,
//! implemented from scratch.
//!
//! This powers the paper's embedding service ("efficient
//! k-nearest-neighbour retrieval", Sec. 1/Fig. 1). Experiment E3 sweeps its
//! latency/recall trade-off against [`crate::flat::FlatIndex`].

use crate::flat::Hit;
use crate::vector::Metric;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HnswParams {
    /// Max connections per node per layer (M). Layer 0 allows `2 * m`.
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Default candidate-list width during search (overridable per query).
    pub ef_search: usize,
    /// RNG seed for level assignment (full determinism).
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 48, seed: 0x5a6a }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    id: u64,
    level: usize,
    /// Neighbour lists per layer, `neighbors[l]` valid for `l <= level`.
    neighbors: Vec<Vec<u32>>,
}

/// Candidate ordered by score descending (max-heap on score).
#[derive(PartialEq)]
struct Cand {
    score: f32,
    idx: u32,
}
impl Eq for Cand {}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.partial_cmp(&other.score).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry (worst of the result set on top) via reversed ordering.
struct RevCand(Cand);
impl PartialEq for RevCand {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for RevCand {}
impl Ord for RevCand {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}
impl PartialOrd for RevCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    params: HnswParams,
    nodes: Vec<Node>,
    data: Vec<f32>,
    entry: Option<u32>,
    max_level: usize,
    #[serde(skip, default = "default_rng")]
    rng: ChaCha8Rng,
}

fn default_rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5a6a)
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(dim: usize, metric: Metric, params: HnswParams) -> Self {
        assert!(dim > 0 && params.m >= 2, "invalid HNSW parameters");
        let rng = ChaCha8Rng::seed_from_u64(params.seed);
        Self { dim, metric, params, nodes: Vec::new(), data: Vec::new(), entry: None, max_level: 0, rng }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn vec_at(&self, i: u32) -> &[f32] {
        let i = i as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    fn score_to(&self, q: &[f32], i: u32) -> f32 {
        self.metric.score(q, self.vec_at(i))
    }

    fn random_level(&mut self) -> usize {
        let ml = 1.0 / (self.params.m as f64).ln();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-(u.ln()) * ml).floor() as usize
    }

    /// Greedy descent at one layer: move to the best neighbour until no
    /// improvement.
    fn greedy_at_layer(&self, q: &[f32], mut cur: u32, layer: usize) -> u32 {
        let mut cur_score = self.score_to(q, cur);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur as usize].neighbors[layer] {
                let s = self.score_to(q, nb);
                if s > cur_score {
                    cur = nb;
                    cur_score = s;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search at one layer returning up to `ef` best candidates.
    fn search_layer(&self, q: &[f32], entry: u32, ef: usize, layer: usize) -> Vec<Cand> {
        let mut visited = vec![false; self.nodes.len()];
        visited[entry as usize] = true;
        let e = Cand { score: self.score_to(q, entry), idx: entry };
        let mut results: BinaryHeap<RevCand> = BinaryHeap::new(); // min-heap
        let mut candidates: BinaryHeap<Cand> = BinaryHeap::new(); // max-heap
        results.push(RevCand(Cand { score: e.score, idx: e.idx }));
        candidates.push(e);

        while let Some(c) = candidates.pop() {
            let worst = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
            if c.score < worst && results.len() >= ef {
                break;
            }
            for &nb in &self.nodes[c.idx as usize].neighbors[layer] {
                if visited[nb as usize] {
                    continue;
                }
                visited[nb as usize] = true;
                let s = self.score_to(q, nb);
                let worst = results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
                if results.len() < ef || s > worst {
                    candidates.push(Cand { score: s, idx: nb });
                    results.push(RevCand(Cand { score: s, idx: nb }));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<Cand> = results.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        out
    }

    /// Inserts a vector under `id`.
    pub fn add(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        let idx = self.nodes.len() as u32;
        let level = self.random_level();
        self.data.extend_from_slice(v);
        self.nodes.push(Node { id, level, neighbors: vec![Vec::new(); level + 1] });

        let Some(mut cur) = self.entry else {
            self.entry = Some(idx);
            self.max_level = level;
            return;
        };

        // Descend through layers above the node's level.
        for l in (level + 1..=self.max_level).rev() {
            cur = self.greedy_at_layer(v, cur, l);
        }

        // Connect at each layer from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            let cands = self.search_layer(v, cur, self.params.ef_construction, l);
            cur = cands.first().map(|c| c.idx).unwrap_or(cur);
            let m_max = if l == 0 { self.params.m * 2 } else { self.params.m };
            let selected: Vec<u32> =
                cands.iter().take(self.params.m).map(|c| c.idx).collect();
            self.nodes[idx as usize].neighbors[l] = selected.clone();
            for nb in selected {
                let list = &mut self.nodes[nb as usize].neighbors[l];
                list.push(idx);
                if list.len() > m_max {
                    // Prune: keep the m_max closest to nb.
                    let nb_vec: Vec<f32> = self.vec_at(nb).to_vec();
                    let mut scored: Vec<(f32, u32)> = self.nodes[nb as usize].neighbors[l]
                        .iter()
                        .map(|&x| (self.metric.score(&nb_vec, self.vec_at(x)), x))
                        .collect();
                    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                    scored.truncate(m_max);
                    self.nodes[nb as usize].neighbors[l] = scored.into_iter().map(|(_, x)| x).collect();
                }
            }
        }

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(idx);
        }
    }

    /// Approximate top-`k` search with the default `ef_search`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_ef(query, k, self.params.ef_search.max(k))
    }

    /// Approximate top-`k` search with an explicit beam width.
    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let Some(mut cur) = self.entry else { return Vec::new() };
        for l in (1..=self.max_level).rev() {
            cur = self.greedy_at_layer(query, cur, l);
        }
        let cands = self.search_layer(query, cur, ef.max(k), 0);
        cands
            .into_iter()
            .take(k)
            .map(|c| Hit { id: self.nodes[c.idx as usize].id, score: c.score })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswParams::default());
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn single_element() {
        let mut idx = HnswIndex::new(2, Metric::Euclidean, HnswParams::default());
        idx.add(7, &[1.0, 2.0]);
        let hits = idx.search(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn recall_against_flat_baseline() {
        let dim = 16;
        let n = 800;
        let vecs = random_vectors(n, dim, 42);
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        let mut hnsw = HnswIndex::new(dim, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
            hnsw.add(i as u64, v);
        }
        let queries = random_vectors(30, dim, 99);
        let mut recall_sum = 0.0;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let approx = hnsw.search_ef(q, 10, 80);
            let got = approx.iter().filter(|h| truth.contains(&h.id)).count();
            recall_sum += got as f64 / 10.0;
        }
        let recall = recall_sum / queries.len() as f64;
        assert!(recall > 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let vecs = random_vectors(200, 8, 1);
        let build = || {
            let mut idx = HnswIndex::new(8, Metric::Cosine, HnswParams::default());
            for (i, v) in vecs.iter().enumerate() {
                idx.add(i as u64, v);
            }
            idx
        };
        let a = build();
        let b = build();
        let q = &vecs[3];
        let ha: Vec<u64> = a.search(q, 5).into_iter().map(|h| h.id).collect();
        let hb: Vec<u64> = b.search(q, 5).into_iter().map(|h| h.id).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn nearest_self_is_found() {
        let vecs = random_vectors(300, 8, 5);
        let mut idx = HnswIndex::new(8, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        let mut found = 0;
        for (i, v) in vecs.iter().enumerate().take(50) {
            let hits = idx.search(v, 1);
            if hits[0].id == i as u64 {
                found += 1;
            }
        }
        assert!(found >= 48, "self-recall {found}/50");
    }
}
