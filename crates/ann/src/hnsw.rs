//! Hierarchical Navigable Small World (HNSW) approximate k-NN index,
//! implemented from scratch.
//!
//! This powers the paper's embedding service ("efficient
//! k-nearest-neighbour retrieval", Sec. 1/Fig. 1). Experiment E3 sweeps its
//! latency/recall trade-off against [`crate::flat::FlatIndex`].
//!
//! The query path is allocation-free after warm-up: an epoch-stamped
//! [`SearchScratch`] (visited marks + reusable candidate/result heaps) is
//! threaded through `search_layer`, both for inserts (the index owns one)
//! and for queries (per-thread default, or caller-owned via
//! [`HnswIndex::search_ef_into`]). Before this, every `search_layer` call —
//! once per layer per insert — allocated an O(N) visited array, making
//! index build cost quadratic in allocations.

use crate::flat::Hit;
use crate::vector::Metric;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Build/search parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HnswParams {
    /// Max connections per node per layer (M). Layer 0 allows `2 * m`.
    pub m: usize,
    /// Candidate-list width during construction.
    pub ef_construction: usize,
    /// Default candidate-list width during search (overridable per query).
    pub ef_search: usize,
    /// RNG seed for level assignment (full determinism).
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        Self { m: 16, ef_construction: 100, ef_search: 48, seed: 0x5a6a }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    id: u64,
    level: usize,
    /// Neighbour lists per layer, `neighbors[l]` valid for `l <= level`.
    neighbors: Vec<Vec<u32>>,
}

/// Candidate ordered by score descending (max-heap on score).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Cand {
    score: f32,
    idx: u32,
}
impl Eq for Cand {}
impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.partial_cmp(&other.score).unwrap_or(Ordering::Equal)
    }
}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap entry (worst of the result set on top) via reversed ordering.
#[derive(Debug, Clone, Copy)]
struct RevCand(Cand);
impl PartialEq for RevCand {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}
impl Eq for RevCand {}
impl Ord for RevCand {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.cmp(&self.0)
    }
}
impl PartialOrd for RevCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Reusable beam-search state: epoch-stamped visited marks plus the
/// candidate/result heaps and buffers `search_layer` works in. One scratch
/// serves any number of queries against any index — `begin` grows the
/// visited array to the index size and bumps the epoch, so marks from
/// earlier queries are invalidated in O(1) instead of reallocated.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    /// Current epoch; `visited[i] == epoch` means "seen this query".
    epoch: u32,
    visited: Vec<u32>,
    candidates: BinaryHeap<Cand>,
    results: BinaryHeap<RevCand>,
    /// `search_layer` output, best first.
    layer_out: Vec<Cand>,
    /// Neighbour ids selected for a new node (insert path).
    selected: Vec<u32>,
    /// Scored neighbour list for pruning (insert path).
    prune: Vec<(f32, u32)>,
}

impl SearchScratch {
    /// Creates empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares for one `search_layer` pass over an index of `n` nodes.
    fn begin(&mut self, n: usize) {
        if self.visited.len() < n {
            self.visited.resize(n, 0);
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Epoch wrapped: clear stale marks once every 2^32 queries.
            self.visited.iter_mut().for_each(|v| *v = 0);
            self.epoch = 1;
        }
        self.candidates.clear();
        self.results.clear();
    }

    /// Marks `i` visited; true when this is the first visit this query.
    #[inline]
    fn visit(&mut self, i: u32) -> bool {
        let slot = &mut self.visited[i as usize];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }
}

thread_local! {
    /// Backs the zero-allocation default search path.
    static HNSW_SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// The HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    dim: usize,
    metric: Metric,
    params: HnswParams,
    nodes: Vec<Node>,
    data: Vec<f32>,
    entry: Option<u32>,
    max_level: usize,
    /// Tombstone flags parallel to `nodes`; dead nodes keep routing (their
    /// edges stay in the graph) but are filtered from results until
    /// [`compact`](Self::compact) rebuilds without them. Absent in
    /// pre-mutation snapshots (all nodes live).
    #[serde(default)]
    dead: Vec<bool>,
    /// Live tombstone count.
    #[serde(default)]
    tombstones: usize,
    /// id → first live node index; rebuilt lazily after deserialization.
    #[serde(skip)]
    by_id: std::collections::HashMap<u64, u32>,
    #[serde(skip, default = "default_rng")]
    rng: ChaCha8Rng,
    /// Insert-path scratch, reused across `add` calls.
    #[serde(skip)]
    scratch: SearchScratch,
}

fn default_rng() -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(0x5a6a)
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(dim: usize, metric: Metric, params: HnswParams) -> Self {
        assert!(dim > 0 && params.m >= 2, "invalid HNSW parameters");
        let rng = ChaCha8Rng::seed_from_u64(params.seed);
        Self {
            dim,
            metric,
            params,
            nodes: Vec::new(),
            data: Vec::new(),
            entry: None,
            max_level: 0,
            dead: Vec::new(),
            tombstones: 0,
            by_id: std::collections::HashMap::new(),
            rng,
            scratch: SearchScratch::new(),
        }
    }

    /// Number of elements (including tombstoned nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live (non-tombstoned) elements.
    pub fn live_len(&self) -> usize {
        self.nodes.len() - self.tombstones
    }

    /// Number of tombstoned nodes awaiting [`compact`](Self::compact).
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Sizes the tombstone array and lazily rebuilds the id lookup — both
    /// are auxiliary to the serialized graph (old snapshots carry neither).
    fn ensure_aux(&mut self) {
        self.dead.resize(self.nodes.len(), false);
        if self.by_id.is_empty() && !self.nodes.is_empty() {
            for (i, n) in self.nodes.iter().enumerate() {
                if !self.dead[i] {
                    self.by_id.entry(n.id).or_insert(i as u32);
                }
            }
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn vec_at(&self, i: u32) -> &[f32] {
        let i = i as usize;
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    #[inline]
    fn score_to(&self, q: &[f32], i: u32) -> f32 {
        self.metric.score(q, self.vec_at(i))
    }

    fn random_level(&mut self) -> usize {
        let ml = 1.0 / (self.params.m as f64).ln();
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-(u.ln()) * ml).floor() as usize
    }

    /// Greedy descent at one layer: move to the best neighbour until no
    /// improvement.
    fn greedy_at_layer(&self, q: &[f32], mut cur: u32, layer: usize) -> u32 {
        let mut cur_score = self.score_to(q, cur);
        loop {
            let mut improved = false;
            for &nb in &self.nodes[cur as usize].neighbors[layer] {
                let s = self.score_to(q, nb);
                if s > cur_score {
                    cur = nb;
                    cur_score = s;
                    improved = true;
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Beam search at one layer: leaves up to `ef` best candidates in
    /// `scratch.layer_out`, best first. Allocation-free at steady state.
    fn search_layer(
        &self,
        q: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        scratch: &mut SearchScratch,
    ) {
        scratch.begin(self.nodes.len());
        scratch.visit(entry);
        let e = Cand { score: self.score_to(q, entry), idx: entry };
        scratch.results.push(RevCand(e));
        scratch.candidates.push(e);

        while let Some(c) = scratch.candidates.pop() {
            let worst = scratch.results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
            if c.score < worst && scratch.results.len() >= ef {
                break;
            }
            for &nb in &self.nodes[c.idx as usize].neighbors[layer] {
                if !scratch.visit(nb) {
                    continue;
                }
                let s = self.score_to(q, nb);
                let worst = scratch.results.peek().map(|r| r.0.score).unwrap_or(f32::NEG_INFINITY);
                if scratch.results.len() < ef || s > worst {
                    scratch.candidates.push(Cand { score: s, idx: nb });
                    scratch.results.push(RevCand(Cand { score: s, idx: nb }));
                    if scratch.results.len() > ef {
                        scratch.results.pop();
                    }
                }
            }
        }
        scratch.layer_out.clear();
        scratch.layer_out.extend(scratch.results.drain().map(|r| r.0));
        scratch
            .layer_out
            .sort_unstable_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal));
    }

    /// Inserts a vector under `id`.
    pub fn add(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.ensure_aux();
        let idx = self.nodes.len() as u32;
        let level = self.random_level();
        self.data.extend_from_slice(v);
        self.nodes.push(Node { id, level, neighbors: vec![Vec::new(); level + 1] });
        self.dead.push(false);
        self.by_id.entry(id).or_insert(idx);

        let Some(mut cur) = self.entry else {
            self.entry = Some(idx);
            self.max_level = level;
            return;
        };

        // Take the owned scratch so `search_layer` can borrow `self`
        // immutably alongside it; returned at the end of the insert.
        let mut scratch = std::mem::take(&mut self.scratch);

        // Descend through layers above the node's level.
        for l in (level + 1..=self.max_level).rev() {
            cur = self.greedy_at_layer(v, cur, l);
        }

        // Connect at each layer from min(level, max_level) down to 0.
        for l in (0..=level.min(self.max_level)).rev() {
            self.search_layer(v, cur, self.params.ef_construction, l, &mut scratch);
            cur = scratch.layer_out.first().map(|c| c.idx).unwrap_or(cur);
            let m_max = if l == 0 { self.params.m * 2 } else { self.params.m };
            scratch.selected.clear();
            scratch.selected.extend(scratch.layer_out.iter().take(self.params.m).map(|c| c.idx));
            let node_list = &mut self.nodes[idx as usize].neighbors[l];
            node_list.clear();
            node_list.extend_from_slice(&scratch.selected);
            for &nb in &scratch.selected {
                let len_after = {
                    let list = &mut self.nodes[nb as usize].neighbors[l];
                    list.push(idx);
                    list.len()
                };
                if len_after > m_max {
                    // Prune: keep the m_max closest to nb.
                    scratch.prune.clear();
                    {
                        let nb_vec = self.vec_at(nb);
                        for &x in &self.nodes[nb as usize].neighbors[l] {
                            scratch.prune.push((self.metric.score(nb_vec, self.vec_at(x)), x));
                        }
                    }
                    scratch
                        .prune
                        .sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(Ordering::Equal));
                    scratch.prune.truncate(m_max);
                    let list = &mut self.nodes[nb as usize].neighbors[l];
                    list.clear();
                    list.extend(scratch.prune.iter().map(|&(_, x)| x));
                }
            }
        }

        self.scratch = scratch;

        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(idx);
        }
    }

    /// Replaces the vector for `id` (tombstone + re-insert, so the new
    /// vector gets fresh graph edges) or inserts it when new. Returns
    /// `true` if an existing element was replaced.
    pub fn upsert(&mut self, id: u64, v: &[f32]) -> bool {
        self.ensure_aux();
        let existed = self.remove(id);
        self.add(id, v);
        existed
    }

    /// Tombstones every live node carrying `id`. Dead nodes keep serving
    /// as routing waypoints (their edges survive) but never appear in
    /// results; [`compact`](Self::compact) rebuilds without them. Returns
    /// `true` if any node died.
    pub fn remove(&mut self, id: u64) -> bool {
        self.ensure_aux();
        if self.by_id.remove(&id).is_none() {
            return false;
        }
        for i in 0..self.nodes.len() {
            if self.nodes[i].id == id && !self.dead[i] {
                self.dead[i] = true;
                self.tombstones += 1;
            }
        }
        true
    }

    /// Deterministically rebuilds the graph from the live vectors in node
    /// order, dropping tombstones. The rebuild reseeds level assignment
    /// from `params.seed`, so compacting equal live sets yields equal
    /// graphs regardless of the mutation history that produced them.
    pub fn compact(&mut self) {
        if self.tombstones == 0 {
            return;
        }
        let mut fresh = HnswIndex::new(self.dim, self.metric, self.params);
        for (i, n) in self.nodes.iter().enumerate() {
            if !self.dead[i] {
                fresh.add(n.id, self.vec_at(i as u32));
            }
        }
        *self = fresh;
    }

    /// Approximate top-`k` search with the default `ef_search`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        self.search_ef(query, k, self.params.ef_search.max(k))
    }

    /// Approximate top-`k` search with an explicit beam width.
    ///
    /// Uses a per-thread [`SearchScratch`]; after warm-up the only
    /// allocation is the returned `Vec`. Use [`HnswIndex::search_ef_into`]
    /// for a fully allocation-free path.
    pub fn search_ef(&self, query: &[f32], k: usize, ef: usize) -> Vec<Hit> {
        HNSW_SCRATCH.with(|s| self.search_ef_with(query, k, ef, &mut s.borrow_mut()))
    }

    /// [`HnswIndex::search_ef`] with caller-owned scratch.
    pub fn search_ef_with(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
    ) -> Vec<Hit> {
        let mut out = Vec::with_capacity(k);
        self.search_ef_into(query, k, ef, scratch, &mut out);
        out
    }

    /// Zero-allocation search: hits are written into `out` (cleared
    /// first). Performs no heap allocation once `scratch` and `out` have
    /// reached steady-state capacity.
    pub fn search_ef_into(
        &self,
        query: &[f32],
        k: usize,
        ef: usize,
        scratch: &mut SearchScratch,
        out: &mut Vec<Hit>,
    ) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        out.clear();
        let Some(mut cur) = self.entry else { return };
        for l in (1..=self.max_level).rev() {
            cur = self.greedy_at_layer(query, cur, l);
        }
        // Widen the beam by the tombstone count so dead nodes filtered at
        // emission can't starve the live result set.
        self.search_layer(query, cur, ef.max(k).saturating_add(self.tombstones), 0, scratch);
        out.extend(
            scratch
                .layer_out
                .iter()
                .filter(|c| self.tombstones == 0 || !self.dead[c.idx as usize])
                .take(k)
                .map(|c| Hit { id: self.nodes[c.idx as usize].id, score: c.score }),
        );
    }

    /// [`search_batch`](Self::search_batch) recording whole-batch latency
    /// into `hist` through `clock` — one lock-free, allocation-free
    /// `record` per call, so the warm search path stays zero-allocation.
    pub fn search_batch_recorded(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        workers: usize,
        hist: &saga_core::obs::Histogram,
        clock: &dyn saga_core::obs::Clock,
    ) -> Vec<Vec<Hit>> {
        let start = clock.now_ticks();
        let out = self.search_batch(queries, k, workers);
        hist.record(clock.now_ticks().saturating_sub(start));
        out
    }

    /// Approximate top-`k` for a batch of queries fanned out as `workers`
    /// chunks over the shared persistent pool ([`saga_core::pool`]) — zero
    /// thread spawns in steady state. Each chunk gets its own scratch;
    /// results are in query order, identical to sequential
    /// [`HnswIndex::search`] per query.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize, workers: usize) -> Vec<Vec<Hit>> {
        let ef = self.params.ef_search.max(k);
        let workers = workers.max(1);
        if workers == 1 || queries.len() <= 1 {
            let mut scratch = SearchScratch::new();
            return queries.iter().map(|q| self.search_ef_with(q, k, ef, &mut scratch)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        let tasks = queries.len().div_ceil(chunk);
        saga_core::pool::global()
            .map_tasks(tasks, |t| {
                let qs = &queries[t * chunk..((t + 1) * chunk).min(queries.len())];
                let mut scratch = SearchScratch::new();
                qs.iter().map(|q| self.search_ef_with(q, k, ef, &mut scratch)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatIndex;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect()).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(4, Metric::Cosine, HnswParams::default());
        assert!(idx.search(&[1.0, 0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn single_element() {
        let mut idx = HnswIndex::new(2, Metric::Euclidean, HnswParams::default());
        idx.add(7, &[1.0, 2.0]);
        let hits = idx.search(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn recall_against_flat_baseline() {
        let dim = 16;
        let n = 800;
        let vecs = random_vectors(n, dim, 42);
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        let mut hnsw = HnswIndex::new(dim, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
            hnsw.add(i as u64, v);
        }
        let queries = random_vectors(30, dim, 99);
        let mut recall_sum = 0.0;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let approx = hnsw.search_ef(q, 10, 80);
            let got = approx.iter().filter(|h| truth.contains(&h.id)).count();
            recall_sum += got as f64 / 10.0;
        }
        let recall = recall_sum / queries.len() as f64;
        assert!(recall > 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn determinism_same_seed_same_results() {
        let vecs = random_vectors(200, 8, 1);
        let build = || {
            let mut idx = HnswIndex::new(8, Metric::Cosine, HnswParams::default());
            for (i, v) in vecs.iter().enumerate() {
                idx.add(i as u64, v);
            }
            idx
        };
        let a = build();
        let b = build();
        let q = &vecs[3];
        let ha: Vec<u64> = a.search(q, 5).into_iter().map(|h| h.id).collect();
        let hb: Vec<u64> = b.search(q, 5).into_iter().map(|h| h.id).collect();
        assert_eq!(ha, hb);
    }

    #[test]
    fn nearest_self_is_found() {
        let vecs = random_vectors(300, 8, 5);
        let mut idx = HnswIndex::new(8, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        let mut found = 0;
        for (i, v) in vecs.iter().enumerate().take(50) {
            let hits = idx.search(v, 1);
            if hits[0].id == i as u64 {
                found += 1;
            }
        }
        assert!(found >= 48, "self-recall {found}/50");
    }

    #[test]
    fn scratch_variants_agree_with_default_path() {
        let vecs = random_vectors(400, 12, 9);
        let mut idx = HnswIndex::new(12, Metric::Cosine, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        let mut scratch = SearchScratch::new();
        let mut out = Vec::new();
        for q in vecs.iter().take(25) {
            let a = idx.search_ef(q, 10, 64);
            let b = idx.search_ef_with(q, 10, 64, &mut scratch);
            idx.search_ef_into(q, 10, 64, &mut scratch, &mut out);
            assert_eq!(a, b);
            assert_eq!(a, out);
        }
    }

    #[test]
    fn upsert_remove_filter_results() {
        let vecs = random_vectors(100, 8, 11);
        let mut idx = HnswIndex::new(8, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        assert!(idx.remove(3));
        assert!(!idx.remove(3), "double remove is a no-op");
        assert!(idx.upsert(5, &vecs[3]), "existing id replaced");
        assert!(!idx.upsert(900, &vecs[7]), "new id inserted");
        assert_eq!(idx.live_len(), 100); // -1 removed, -1 upsert tombstone, +1 upsert, +1 new
        assert_eq!(idx.tombstones(), 2);
        // The removed id never surfaces; the upserted id scores at its new
        // position (exactly where vecs[3] used to be).
        let hits = idx.search_ef(&vecs[3], 3, 120);
        let ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        assert!(!ids.contains(&3), "tombstoned id returned: {ids:?}");
        assert_eq!(ids[0], 5, "upserted vector is its own nearest neighbour");
        let hits = idx.search_ef(&vecs[7], 3, 120);
        assert!(hits.iter().any(|h| h.id == 900));
    }

    #[test]
    fn churned_index_keeps_recall_and_compacts_clean() {
        let dim = 16;
        let vecs = random_vectors(600, dim, 303);
        let fresh_vecs = random_vectors(600, dim, 904);
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        let mut hnsw = HnswIndex::new(dim, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
            hnsw.add(i as u64, v);
        }
        // Churn 20%: half replacements, half deletions.
        for i in (0..120usize).map(|j| j * 5) {
            if i % 2 == 0 {
                flat.upsert(i as u64, &fresh_vecs[i]);
                hnsw.upsert(i as u64, &fresh_vecs[i]);
            } else {
                flat.remove(i as u64);
                hnsw.remove(i as u64);
            }
        }
        let queries = random_vectors(25, dim, 55);
        let recall = |hnsw: &HnswIndex| {
            let mut sum = 0.0;
            for q in &queries {
                let truth: std::collections::HashSet<u64> =
                    flat.search(q, 10).into_iter().map(|h| h.id).collect();
                let got =
                    hnsw.search_ef(q, 10, 80).iter().filter(|h| truth.contains(&h.id)).count();
                sum += got as f64 / 10.0;
            }
            sum / queries.len() as f64
        };
        let before = recall(&hnsw);
        assert!(before > 0.8, "post-churn recall@10 = {before}");
        hnsw.compact();
        assert_eq!(hnsw.tombstones(), 0);
        assert_eq!(hnsw.len(), flat.live_len());
        let after = recall(&hnsw);
        assert!(after > 0.8, "post-compact recall@10 = {after}");
    }

    #[test]
    fn compact_is_equivalent_to_scratch_build() {
        let vecs = random_vectors(150, 8, 77);
        let mut idx = HnswIndex::new(8, Metric::Cosine, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        for i in [10u64, 20, 30, 40] {
            idx.remove(i);
        }
        idx.compact();
        let mut scratch_built = HnswIndex::new(8, Metric::Cosine, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            if ![10, 20, 30, 40].contains(&(i as u64)) {
                scratch_built.add(i as u64, v);
            }
        }
        for q in vecs.iter().take(20) {
            assert_eq!(idx.search(q, 5), scratch_built.search(q, 5));
        }
    }

    #[test]
    fn search_batch_matches_sequential() {
        let vecs = random_vectors(500, 10, 23);
        let mut idx = HnswIndex::new(10, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            idx.add(i as u64, v);
        }
        let queries = random_vectors(13, 10, 77);
        let seq: Vec<Vec<Hit>> = queries.iter().map(|q| idx.search(q, 5)).collect();
        for workers in [1, 2, 4] {
            assert_eq!(idx.search_batch(&queries, 5, workers), seq, "workers={workers}");
        }
    }
}
