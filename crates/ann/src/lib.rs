//! # saga-ann
//!
//! The vector substrate behind the platform's embedding service (paper
//! Fig. 1): exact and approximate k-nearest-neighbour retrieval, scalar
//! quantization for on-device deployment, and the low-latency embedding
//! key-value cache used by the semantic annotation service.

#![warn(missing_docs)]
#![allow(clippy::len_without_is_empty)]

pub mod flat;
pub mod hnsw;
pub mod kv;
pub mod pq;
pub mod quant;
pub mod vector;

pub use flat::{FlatIndex, FlatScratch, Hit};
pub use hnsw::{HnswIndex, HnswParams, SearchScratch};
pub use kv::{CacheStats, EmbeddingCache};
pub use pq::{PqCodebook, PqConfig, PqIndex, PqScratch};
pub use quant::{QuantScratch, QuantizedTable, QuantizedVector};
pub use vector::{l2_norm, normalize, Metric};
