//! Dense vector math shared by the indexes.

use serde::{Deserialize, Serialize};

/// Distance/similarity metric for a vector index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity (vectors are compared after normalization).
    Cosine,
    /// Negative squared Euclidean distance (so larger = closer, uniformly).
    Euclidean,
    /// Inner product.
    Dot,
}

impl Metric {
    /// Similarity score; larger is more similar for every metric.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => {
                let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
                for (x, y) in a.iter().zip(b) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    0.0
                } else {
                    dot / (na.sqrt() * nb.sqrt())
                }
            }
            Metric::Euclidean => {
                let mut d = 0.0f32;
                for (x, y) in a.iter().zip(b) {
                    let diff = x - y;
                    d += diff * diff;
                }
                -d
            }
            Metric::Dot => a.iter().zip(b).map(|(x, y)| x * y).sum(),
        }
    }
}

/// L2 norm of a vector.
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Normalizes `v` to unit length in place (no-op for the zero vector).
pub fn normalize(v: &mut [f32]) {
    let n = l2_norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rank_consistently() {
        let a = [1.0, 0.0, 0.0];
        let close = [0.9, 0.1, 0.0];
        let far = [0.0, 0.0, 1.0];
        for m in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            assert!(m.score(&a, &close) > m.score(&a, &far), "{m:?}");
            // Self-similarity is maximal among the three candidates.
            assert!(m.score(&a, &a) >= m.score(&a, &close));
        }
    }

    #[test]
    fn euclidean_is_negative_distance() {
        assert_eq!(Metric::Euclidean.score(&[0.0], &[3.0]), -9.0);
        assert_eq!(Metric::Euclidean.score(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
