//! Dense vector math shared by the indexes, backed by the unrolled kernels
//! in [`saga_core::kernels`].

use saga_core::kernels;
use serde::{Deserialize, Serialize};

/// Distance/similarity metric for a vector index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Cosine similarity (vectors are compared after normalization).
    Cosine,
    /// Negative squared Euclidean distance (so larger = closer, uniformly).
    Euclidean,
    /// Inner product.
    Dot,
}

impl Metric {
    /// Similarity score; larger is more similar for every metric.
    #[inline]
    pub fn score(self, a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        match self {
            Metric::Cosine => kernels::cosine(a, b),
            Metric::Euclidean => -kernels::l2_sq(a, b),
            Metric::Dot => kernels::dot(a, b),
        }
    }

    /// Scores `q` against every row of a contiguous row-major `block`
    /// (`block.len()` must be a multiple of `q.len()`), one score per row
    /// appended to `out` after clearing it. Allocation-free once `out` has
    /// grown to the block's row count — the flat index's serving path.
    pub fn score_many(self, q: &[f32], block: &[f32], out: &mut Vec<f32>) {
        match self {
            Metric::Cosine => kernels::cosine_batch(q, block, out),
            Metric::Euclidean => {
                kernels::l2_sq_batch(q, block, out);
                for s in out.iter_mut() {
                    *s = -*s;
                }
            }
            Metric::Dot => kernels::dot_batch(q, block, out),
        }
    }
}

/// L2 norm of a vector.
pub fn l2_norm(v: &[f32]) -> f32 {
    kernels::l2_norm(v)
}

/// Normalizes `v` to unit length in place (no-op for the zero vector).
pub fn normalize(v: &mut [f32]) {
    let n = l2_norm(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rank_consistently() {
        let a = [1.0, 0.0, 0.0];
        let close = [0.9, 0.1, 0.0];
        let far = [0.0, 0.0, 1.0];
        for m in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            assert!(m.score(&a, &close) > m.score(&a, &far), "{m:?}");
            // Self-similarity is maximal among the three candidates.
            assert!(m.score(&a, &a) >= m.score(&a, &close));
        }
    }

    #[test]
    fn euclidean_is_negative_distance() {
        assert_eq!(Metric::Euclidean.score(&[0.0], &[3.0]), -9.0);
        assert_eq!(Metric::Euclidean.score(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn score_many_matches_score_per_row() {
        let dim = 5;
        let q = [0.3, -0.7, 0.2, 0.9, -0.1];
        let rows: Vec<[f32; 5]> =
            vec![[1.0, 0.0, 0.5, -0.5, 0.25], [0.0; 5], [-0.9, 0.4, 0.1, 0.2, 0.8]];
        let block: Vec<f32> = rows.iter().flatten().copied().collect();
        let mut out = Vec::new();
        for m in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            m.score_many(&q, &block, &mut out);
            assert_eq!(out.len(), rows.len());
            for (row, s) in rows.iter().zip(&out) {
                assert!((m.score(&q, row) - s).abs() < 1e-6, "{m:?}");
            }
        }
        assert_eq!(dim, q.len());
    }

    #[test]
    fn normalize_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((l2_norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }
}
