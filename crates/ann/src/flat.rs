//! Exact brute-force k-NN index: the recall=1.0 baseline the HNSW index is
//! benchmarked against (experiment E3).

use crate::vector::Metric;
use serde::{Deserialize, Serialize};

/// A scored search hit. `id` is caller-assigned (typically an entity id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Identifier.
    pub id: u64,
    /// Score; higher is better.
    pub score: f32,
}

/// Exact k-NN over a contiguous vector slab.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
}

impl FlatIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self { dim, metric, ids: Vec::new(), data: Vec::new() }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Adds a vector under `id`.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn add(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        self.ids.push(id);
        self.data.extend_from_slice(v);
    }

    /// Returns the stored vector for position `i`.
    fn vec_at(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Exact top-`k` most similar vectors to `query`.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        let mut hits: Vec<Hit> = (0..self.len())
            .map(|i| Hit { id: self.ids[i], score: self.metric.score(query, self.vec_at(i)) })
            .collect();
        hits.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.id.cmp(&b.id)));
        hits.truncate(k);
        hits
    }

    /// Looks up a vector by id (linear scan; the KV cache is the hot path).
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.ids.iter().position(|&x| x == id).map(|i| self.vec_at(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_search_finds_nearest() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        idx.add(1, &[0.0, 0.0]);
        idx.add(2, &[1.0, 0.0]);
        idx.add(3, &[5.0, 5.0]);
        let hits = idx.search(&[0.9, 0.1], 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(10, &[1.0]);
        let hits = idx.search(&[2.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].score, 2.0);
    }

    #[test]
    fn get_retrieves_by_id() {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        idx.add(42, &[1.0, 2.0, 3.0]);
        assert_eq!(idx.get(42), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(idx.get(99), None);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.add(1, &[1.0]);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(5, &[1.0]);
        idx.add(3, &[1.0]);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 5);
    }
}
