//! Exact brute-force k-NN index: the recall=1.0 baseline the HNSW index is
//! benchmarked against (experiment E3).
//!
//! The serving path is allocation-free after warm-up: scoring runs the
//! batch kernel over the contiguous slab into a reusable buffer, and top-k
//! selection uses a bounded min-heap (O(N + k log k) instead of a full
//! sort). Lookups by id are O(1) through a maintained position map.

use crate::vector::Metric;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A scored search hit. `id` is caller-assigned (typically an entity id).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Identifier.
    pub id: u64,
    /// Score; higher is better.
    pub score: f32,
}

/// Heap entry ordered so the *worst* hit (lowest score, then largest id) is
/// the maximum: a `BinaryHeap<WorstFirst>` of size k keeps the k best hits
/// with the eviction candidate on top. Shared with the quantized and PQ
/// tables so their scratch types can own a selection heap too.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorstFirst(Hit);

impl Ord for WorstFirst {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(Ordering::Equal)
            .then(self.0.id.cmp(&other.0.id))
    }
}
impl PartialOrd for WorstFirst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl PartialEq for WorstFirst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for WorstFirst {}

/// Bounded-heap top-k selection: keeps the k best hits from `hits` in
/// `out`, best first, ties broken by smaller id — identical to a full sort
/// by `(score desc, id asc)` followed by `truncate(k)`, in O(N + k log k).
/// `heap` is caller-owned scratch so steady-state selection allocates
/// nothing.
pub(crate) fn select_top_k_into(
    heap: &mut BinaryHeap<WorstFirst>,
    hits: impl Iterator<Item = Hit>,
    k: usize,
    out: &mut Vec<Hit>,
) {
    out.clear();
    heap.clear();
    if k == 0 {
        return;
    }
    for h in hits {
        if heap.len() < k {
            heap.push(WorstFirst(h));
        } else if let Some(&worst) = heap.peek() {
            if WorstFirst(h) < worst {
                heap.pop();
                heap.push(WorstFirst(h));
            }
        }
    }
    out.extend(heap.drain().map(|w| w.0));
    out.sort_unstable_by(|a, b| {
        b.score.partial_cmp(&a.score).unwrap_or(Ordering::Equal).then(a.id.cmp(&b.id))
    });
}

/// Reusable per-thread state for [`FlatIndex`] queries: the score buffer
/// the batch kernel writes into plus the bounded selection heap.
#[derive(Debug, Default)]
pub struct FlatScratch {
    scores: Vec<f32>,
    heap: BinaryHeap<WorstFirst>,
}

impl FlatScratch {
    /// Creates empty scratch; buffers grow to steady state on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    /// Backs the zero-allocation default search path.
    static FLAT_SCRATCH: RefCell<FlatScratch> = RefCell::new(FlatScratch::new());
}

/// Serialized form — the position map is an in-memory acceleration
/// structure rebuilt on load, keeping the wire format identical to older
/// snapshots.
#[derive(Serialize, Deserialize)]
struct FlatIndexData {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
    /// Tombstone marks; absent in older snapshots (all rows live).
    #[serde(default)]
    dead: Vec<bool>,
}

impl From<FlatIndexData> for FlatIndex {
    fn from(d: FlatIndexData) -> Self {
        let mut dead = d.dead;
        dead.resize(d.ids.len(), false);
        let tombstones = dead.iter().filter(|&&x| x).count();
        let mut idx = FlatIndex {
            dim: d.dim,
            metric: d.metric,
            ids: d.ids,
            data: d.data,
            dead,
            tombstones,
            pos: HashMap::new(),
        };
        for (i, &id) in idx.ids.iter().enumerate() {
            if !idx.dead[i] {
                idx.pos.entry(id).or_insert(i as u32);
            }
        }
        idx
    }
}

/// Exact k-NN over a contiguous vector slab.
///
/// Mutation model (incremental pipeline): [`upsert`](Self::upsert)
/// replaces a row in place, [`remove`](Self::remove) tombstones it (the
/// slab keeps the bytes; search skips them), and
/// [`compact`](Self::compact) reclaims tombstoned rows. An index
/// maintained through any upsert/remove sequence returns exactly the same
/// top-k (ties included) as one built from scratch on the surviving rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "FlatIndexData")]
pub struct FlatIndex {
    dim: usize,
    metric: Metric,
    ids: Vec<u64>,
    data: Vec<f32>,
    /// `dead[i]` — row `i` is tombstoned (skipped by search and `get`).
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    #[serde(skip)]
    tombstones: usize,
    /// id → first live position holding it (O(1) [`FlatIndex::get`]).
    #[serde(skip)]
    pos: HashMap<u64, u32>,
}

impl FlatIndex {
    /// Creates an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, metric: Metric) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            metric,
            ids: Vec::new(),
            data: Vec::new(),
            dead: Vec::new(),
            tombstones: 0,
            pos: HashMap::new(),
        }
    }

    /// Vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of physical rows, including tombstoned ones.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.ids.len() - self.tombstones
    }

    /// Number of tombstoned rows awaiting [`compact`](Self::compact).
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Adds a vector under `id`.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn add(&mut self, id: u64, v: &[f32]) {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        // First occurrence wins, matching the pre-map linear-scan `get`.
        self.pos.entry(id).or_insert(self.ids.len() as u32);
        self.ids.push(id);
        self.dead.push(false);
        self.data.extend_from_slice(v);
    }

    /// Inserts or replaces the vector under `id`. Replacement overwrites
    /// the row's slab bytes in place (no growth); any duplicate rows of
    /// the same id are tombstoned so exactly one live row remains. Returns
    /// true when an existing row was replaced.
    ///
    /// # Panics
    /// Panics if `v.len() != dim`.
    pub fn upsert(&mut self, id: u64, v: &[f32]) -> bool {
        assert_eq!(v.len(), self.dim, "vector dimension mismatch");
        match self.pos.get(&id).copied() {
            Some(i) => {
                // Tombstone shadowed duplicates beyond the canonical row.
                for j in (i as usize + 1)..self.ids.len() {
                    if self.ids[j] == id && !self.dead[j] {
                        self.dead[j] = true;
                        self.tombstones += 1;
                    }
                }
                let i = i as usize;
                self.data[i * self.dim..(i + 1) * self.dim].copy_from_slice(v);
                true
            }
            None => {
                self.add(id, v);
                false
            }
        }
    }

    /// Tombstone-deletes every live row under `id`: the slab keeps the
    /// bytes until [`compact`](Self::compact), but search and
    /// [`get`](Self::get) no longer see them. Returns true when at least
    /// one row was removed.
    pub fn remove(&mut self, id: u64) -> bool {
        if self.pos.remove(&id).is_none() {
            return false;
        }
        for i in 0..self.ids.len() {
            if self.ids[i] == id && !self.dead[i] {
                self.dead[i] = true;
                self.tombstones += 1;
            }
        }
        true
    }

    /// Reclaims tombstoned rows, preserving the relative order of live
    /// rows (so post-compaction results — including tie order beyond id
    /// tie-breaks — are identical to before).
    pub fn compact(&mut self) {
        if self.tombstones == 0 {
            return;
        }
        let mut w = 0usize;
        for r in 0..self.ids.len() {
            if self.dead[r] {
                continue;
            }
            if w != r {
                self.ids[w] = self.ids[r];
                self.data.copy_within(r * self.dim..(r + 1) * self.dim, w * self.dim);
            }
            w += 1;
        }
        self.ids.truncate(w);
        self.data.truncate(w * self.dim);
        self.dead.clear();
        self.dead.resize(w, false);
        self.tombstones = 0;
        self.pos.clear();
        for (i, &id) in self.ids.iter().enumerate() {
            self.pos.entry(id).or_insert(i as u32);
        }
    }

    /// Returns the stored vector for position `i`.
    fn vec_at(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Exact top-`k` most similar vectors to `query`.
    ///
    /// Uses a per-thread [`FlatScratch`]; after warm-up the only allocation
    /// is the returned `Vec`. Use [`FlatIndex::search_into`] for a fully
    /// allocation-free path.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        FLAT_SCRATCH.with(|s| self.search_with(query, k, &mut s.borrow_mut()))
    }

    /// [`FlatIndex::search`] with caller-owned scratch.
    pub fn search_with(&self, query: &[f32], k: usize, scratch: &mut FlatScratch) -> Vec<Hit> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        self.search_into(query, k, scratch, &mut out);
        out
    }

    /// Zero-allocation search: scores into `scratch`, selects into `out`
    /// (cleared first). Performs no heap allocation once both have reached
    /// steady-state capacity.
    pub fn search_into(
        &self,
        query: &[f32],
        k: usize,
        scratch: &mut FlatScratch,
        out: &mut Vec<Hit>,
    ) {
        assert_eq!(query.len(), self.dim, "query dimension mismatch");
        self.metric.score_many(query, &self.data, &mut scratch.scores);
        if self.tombstones == 0 {
            select_top_k_into(
                &mut scratch.heap,
                scratch.scores.iter().zip(&self.ids).map(|(&score, &id)| Hit { id, score }),
                k,
                out,
            );
        } else {
            select_top_k_into(
                &mut scratch.heap,
                scratch
                    .scores
                    .iter()
                    .zip(&self.ids)
                    .zip(&self.dead)
                    .filter(|(_, &dead)| !dead)
                    .map(|((&score, &id), _)| Hit { id, score }),
                k,
                out,
            );
        }
    }

    /// [`search_batch`](Self::search_batch) recording whole-batch latency
    /// into `hist` through `clock` — one lock-free, allocation-free
    /// `record` per call, so the warm search path stays zero-allocation.
    pub fn search_batch_recorded(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        workers: usize,
        hist: &saga_core::obs::Histogram,
        clock: &dyn saga_core::obs::Clock,
    ) -> Vec<Vec<Hit>> {
        let start = clock.now_ticks();
        let out = self.search_batch(queries, k, workers);
        hist.record(clock.now_ticks().saturating_sub(start));
        out
    }

    /// Exact top-`k` for a batch of queries fanned out as `workers` chunks
    /// over the shared persistent pool ([`saga_core::pool`]) — zero thread
    /// spawns in steady state. Each chunk gets its own scratch; results are
    /// in query order, identical to sequential [`FlatIndex::search`] per
    /// query.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize, workers: usize) -> Vec<Vec<Hit>> {
        let workers = workers.max(1);
        if workers == 1 || queries.len() <= 1 {
            let mut scratch = FlatScratch::new();
            return queries.iter().map(|q| self.search_with(q, k, &mut scratch)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        let tasks = queries.len().div_ceil(chunk);
        saga_core::pool::global()
            .map_tasks(tasks, |t| {
                let qs = &queries[t * chunk..((t + 1) * chunk).min(queries.len())];
                let mut scratch = FlatScratch::new();
                qs.iter().map(|q| self.search_with(q, k, &mut scratch)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Looks up a vector by id — O(1) via the maintained position map.
    pub fn get(&self, id: u64) -> Option<&[f32]> {
        self.pos.get(&id).map(|&i| self.vec_at(i as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_search_finds_nearest() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        idx.add(1, &[0.0, 0.0]);
        idx.add(2, &[1.0, 0.0]);
        idx.add(3, &[5.0, 5.0]);
        let hits = idx.search(&[0.9, 0.1], 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn k_larger_than_index_returns_all() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(10, &[1.0]);
        let hits = idx.search(&[2.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].score, 2.0);
    }

    #[test]
    fn get_retrieves_by_id() {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        idx.add(42, &[1.0, 2.0, 3.0]);
        assert_eq!(idx.get(42), Some(&[1.0, 2.0, 3.0][..]));
        assert_eq!(idx.get(99), None);
    }

    #[test]
    fn get_returns_first_occurrence_of_duplicate_id() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(7, &[1.0]);
        idx.add(7, &[2.0]);
        assert_eq!(idx.get(7), Some(&[1.0][..]));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut idx = FlatIndex::new(2, Metric::Cosine);
        idx.add(1, &[1.0]);
    }

    #[test]
    fn ties_break_by_id_for_determinism() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(5, &[1.0]);
        idx.add(3, &[1.0]);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits[0].id, 3);
        assert_eq!(hits[1].id, 5);
    }

    #[test]
    fn search_batch_matches_sequential() {
        let mut idx = FlatIndex::new(3, Metric::Cosine);
        for i in 0..200u64 {
            let f = i as f32;
            idx.add(i, &[(f * 0.37).sin(), (f * 0.11).cos(), (f * 0.71).sin()]);
        }
        let queries: Vec<Vec<f32>> =
            (0..17).map(|i| vec![(i as f32).sin(), 0.5, (i as f32).cos()]).collect();
        let seq: Vec<Vec<Hit>> = queries.iter().map(|q| idx.search(q, 5)).collect();
        for workers in [1, 3, 8] {
            assert_eq!(idx.search_batch(&queries, 5, workers), seq, "workers={workers}");
        }
    }

    #[test]
    fn upsert_replaces_and_remove_tombstones() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        assert!(!idx.upsert(1, &[0.0, 0.0])); // insert
        idx.add(2, &[1.0, 0.0]);
        idx.add(3, &[5.0, 5.0]);
        assert!(idx.upsert(3, &[0.1, 0.0])); // replace in place
        assert_eq!(idx.get(3), Some(&[0.1, 0.0][..]));
        assert_eq!(idx.len(), 3);
        let hits = idx.search(&[0.0, 0.0], 1);
        assert_eq!(hits[0].id, 1);
        assert!(idx.remove(1));
        assert!(!idx.remove(1), "double remove is a no-op");
        assert_eq!(idx.get(1), None);
        assert_eq!(idx.live_len(), 2);
        let hits = idx.search(&[0.0, 0.0], 3);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn compact_drops_tombstones_and_preserves_results() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        for i in 0..10u64 {
            idx.add(i, &[i as f32]);
        }
        for i in [0u64, 3, 7] {
            idx.remove(i);
        }
        idx.upsert(5, &[50.0]);
        let before = idx.search(&[1.0], 10);
        idx.compact();
        assert_eq!(idx.tombstones(), 0);
        assert_eq!(idx.len(), 7);
        assert_eq!(idx.search(&[1.0], 10), before);
        assert_eq!(idx.get(5), Some(&[50.0][..]));
        assert_eq!(idx.get(3), None);
    }

    #[test]
    fn upsert_of_duplicate_ids_leaves_one_live_row() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(7, &[1.0]);
        idx.add(7, &[2.0]);
        assert!(idx.upsert(7, &[3.0]));
        let hits = idx.search(&[1.0], 5);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].score, 3.0);
        assert!(idx.remove(7));
        assert!(idx.search(&[1.0], 5).is_empty());
    }

    #[test]
    fn serde_round_trip_preserves_tombstones() {
        let mut idx = FlatIndex::new(1, Metric::Dot);
        idx.add(1, &[1.0]);
        idx.add(2, &[2.0]);
        idx.remove(1);
        // Offline builds link a type-check-only serde stub; skip there.
        let Ok(json) = serde_json::to_string(&idx) else { return };
        let back: FlatIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.live_len(), 1);
        assert_eq!(back.get(1), None);
        let hits = back.search(&[1.0], 5);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn serde_round_trip_rebuilds_position_map() {
        let mut idx = FlatIndex::new(2, Metric::Euclidean);
        idx.add(11, &[1.0, 2.0]);
        idx.add(22, &[3.0, 4.0]);
        let json = serde_json::to_string(&idx).unwrap();
        let back: FlatIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get(22), Some(&[3.0, 4.0][..]));
        assert_eq!(back.search(&[1.0, 2.0], 1)[0].id, 11);
    }
}
