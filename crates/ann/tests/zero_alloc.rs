//! Asserts the acceptance criterion of the serving-path rework: after
//! warm-up, a query allocates nothing — not in the scoring kernels, not in
//! top-k selection, not in the HNSW beam search.
//!
//! A counting global allocator is armed around the measured section only;
//! the queries replayed under measurement are the same ones used for
//! warm-up, so every scratch buffer has reached steady-state capacity.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use saga_ann::{
    FlatIndex, FlatScratch, Hit, HnswIndex, HnswParams, Metric, PqConfig, PqIndex, PqScratch,
    QuantScratch, QuantizedTable, SearchScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting armed, returning how many allocations
/// it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warm_query_path_performs_no_allocation() {
    let dim = 32;
    let n = 1_000;
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let vecs: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let queries: Vec<Vec<f32>> =
        (0..25).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let k = 10;

    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswParams::default());
    for (i, v) in vecs.iter().enumerate() {
        flat.add(i as u64, v);
        hnsw.add(i as u64, v);
    }

    let mut flat_scratch = FlatScratch::new();
    let mut hnsw_scratch = SearchScratch::new();
    let mut out: Vec<Hit> = Vec::new();

    // Warm-up: grow every buffer to steady state on the exact query set
    // measured below.
    for q in &queries {
        flat.search_into(q, k, &mut flat_scratch, &mut out);
        hnsw.search_ef_into(q, k, 64, &mut hnsw_scratch, &mut out);
    }

    let flat_allocs = count_allocs(|| {
        for q in &queries {
            flat.search_into(q, k, &mut flat_scratch, &mut out);
        }
    });
    assert_eq!(flat_allocs, 0, "flat warm path allocated {flat_allocs} times");
    assert_eq!(out.len(), k);

    let hnsw_allocs = count_allocs(|| {
        for q in &queries {
            hnsw.search_ef_into(q, k, 64, &mut hnsw_scratch, &mut out);
        }
    });
    assert_eq!(hnsw_allocs, 0, "hnsw warm path allocated {hnsw_allocs} times");
    assert_eq!(out.len(), k);
}

/// Observability must be free on the serving path: a warm query loop with
/// pre-resolved obs handles — per-query latency recorded into a histogram,
/// a query counter bumped — still allocates nothing. Counter shards are
/// const-init thread-locals and histogram buckets are fixed atomics, so
/// arming instrumentation adds zero allocations.
#[test]
fn warm_instrumented_query_path_performs_no_allocation() {
    let dim = 32;
    let n = 1_000;
    let mut rng = ChaCha8Rng::seed_from_u64(47);
    let vecs: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let queries: Vec<Vec<f32>> =
        (0..25).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let k = 10;

    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    for (i, v) in vecs.iter().enumerate() {
        flat.add(i as u64, v);
    }

    let registry = saga_core::obs::Registry::new();
    let scope = registry.scope("ann").child("search");
    let latency = scope.histogram("query_ticks");
    let served = scope.counter("queries");
    let clock = scope.clock();

    let mut scratch = FlatScratch::new();
    let mut out: Vec<Hit> = Vec::new();
    // Warm-up: buffers to steady state, thread-local shard slot assigned.
    for q in &queries {
        let start = clock.now_ticks();
        flat.search_into(q, k, &mut scratch, &mut out);
        latency.record(clock.now_ticks().saturating_sub(start));
        served.inc();
    }

    let allocs = count_allocs(|| {
        for q in &queries {
            let start = clock.now_ticks();
            flat.search_into(q, k, &mut scratch, &mut out);
            latency.record(clock.now_ticks().saturating_sub(start));
            served.inc();
        }
    });
    assert_eq!(allocs, 0, "instrumented warm path allocated {allocs} times");
    assert_eq!(out.len(), k);
    let snap = registry.snapshot();
    assert_eq!(snap.counter("ann/search/queries"), 2 * queries.len() as u64);
    let hist = snap.histogram("ann/search/query_ticks").expect("latency recorded");
    assert_eq!(hist.count(), 2 * queries.len() as u64);
}

/// Runtime kernel dispatch must stay off the warm path: backend selection
/// (env read, CPU-feature detection, `OnceLock` resolution) happens once at
/// first kernel call, so a warm query loop allocates nothing — under every
/// backend available on this CPU, not just the auto-selected one. Forcing a
/// backend swaps one static pointer, so the per-call cost is a predictable
/// indirect call with no allocation on either side of the swap.
#[test]
fn warm_dispatched_kernels_perform_no_allocation() {
    let dim = 32;
    let n = 1_000;
    let mut rng = ChaCha8Rng::seed_from_u64(53);
    let vecs: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let queries: Vec<Vec<f32>> =
        (0..25).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let k = 10;

    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    for (i, v) in vecs.iter().enumerate() {
        flat.add(i as u64, v);
    }
    let block: Vec<f32> = vecs.iter().flatten().copied().collect();

    // Resolve the backend list outside the measured sections (it allocates
    // a Vec); forcing itself is a pointer store.
    let backends: Vec<&'static str> =
        saga_core::kernels::available_backends().iter().map(|be| be.name).collect();
    let mut scratch = FlatScratch::new();
    let mut out: Vec<Hit> = Vec::new();
    let mut scores: Vec<f32> = Vec::new();

    for name in &backends {
        assert!(saga_core::kernels::force_backend(name), "backend {name} not forceable");
        // Warm-up under this backend: scratch to steady state, dispatch
        // (and any one-time init) resolved.
        for q in &queries {
            flat.search_into(q, k, &mut scratch, &mut out);
        }
        saga_core::kernels::dot_batch(&queries[0], &block, &mut scores);

        let allocs = count_allocs(|| {
            for q in &queries {
                flat.search_into(q, k, &mut scratch, &mut out);
                saga_core::kernels::dot_batch(q, &block, &mut scores);
            }
        });
        assert_eq!(allocs, 0, "backend {name}: warm dispatched path allocated {allocs} times");
        assert_eq!(out.len(), k);
        assert_eq!(scores.len(), n);
    }
    assert!(saga_core::kernels::force_backend("auto"));
}

/// The quantized serving path scores raw i8 rows through the integer
/// kernels; after warm-up it must allocate nothing for any metric, and the
/// PQ ADC path must reuse its lookup-table scratch the same way.
#[test]
fn warm_quantized_paths_perform_no_allocation() {
    let dim = 32;
    let n = 1_000;
    let mut rng = ChaCha8Rng::seed_from_u64(43);
    let vecs: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let queries: Vec<Vec<f32>> =
        (0..25).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let k = 10;

    let items: Vec<(u64, Vec<f32>)> =
        vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())).collect();
    let table = QuantizedTable::build(dim, items.iter().cloned());
    let pq = PqIndex::build(&items, &PqConfig::default());

    let mut quant_scratch = QuantScratch::new();
    let mut pq_scratch = PqScratch::new();
    let mut out: Vec<Hit> = Vec::new();

    for metric in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
        // Warm-up on the exact query set measured below.
        for q in &queries {
            table.search_into(metric, q, k, &mut quant_scratch, &mut out);
        }
        let quant_allocs = count_allocs(|| {
            for q in &queries {
                table.search_into(metric, q, k, &mut quant_scratch, &mut out);
            }
        });
        assert_eq!(quant_allocs, 0, "{metric:?} warm quantized path allocated {quant_allocs}");
        assert_eq!(out.len(), k);
    }

    for q in &queries {
        pq.search_into(q, k, &mut pq_scratch, &mut out);
    }
    let pq_allocs = count_allocs(|| {
        for q in &queries {
            pq.search_into(q, k, &mut pq_scratch, &mut out);
        }
    });
    assert_eq!(pq_allocs, 0, "warm pq path allocated {pq_allocs} times");
    assert_eq!(out.len(), k);
}
