//! Asserts the worker-pool acceptance criterion of the serving rework:
//! batch search fan-out runs on the shared persistent pool, so steady-state
//! serving spawns no threads — across every index family, at any batch
//! width, no matter how many batches a shard worker dispatches.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use saga_ann::{FlatIndex, HnswIndex, HnswParams, Metric, QuantizedTable};

#[test]
fn repeated_batch_searches_spawn_no_new_threads() {
    let dim = 24;
    let n = 600;
    let mut rng = ChaCha8Rng::seed_from_u64(59);
    let vecs: Vec<Vec<f32>> =
        (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let queries: Vec<Vec<f32>> =
        (0..40).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
    let k = 5;

    let mut flat = FlatIndex::new(dim, Metric::Cosine);
    let mut hnsw = HnswIndex::new(dim, Metric::Cosine, HnswParams::default());
    for (i, v) in vecs.iter().enumerate() {
        flat.add(i as u64, v);
        hnsw.add(i as u64, v);
    }
    let table =
        QuantizedTable::build(dim, vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())));

    // Warm-up: the pool spawns its workers lazily on first parallel call.
    let warm = flat.search_batch(&queries, k, 4);
    assert_eq!(warm.len(), queries.len());
    let before = saga_core::pool::spawned_threads();

    // A serving shard dispatches thousands of batches over its lifetime;
    // none of them may cost a thread spawn, whatever the fan-out width.
    for round in 0..6 {
        let workers = 1 + (round % 4);
        let f = flat.search_batch(&queries, k, workers);
        let q = table.search_batch(Metric::Cosine, &queries, k, workers);
        let h = hnsw.search_batch(&queries, k, workers);
        assert_eq!(f.len(), queries.len());
        assert_eq!(q.len(), queries.len());
        assert_eq!(h.len(), queries.len());
    }
    assert_eq!(
        saga_core::pool::spawned_threads(),
        before,
        "steady-state batch search must not spawn threads"
    );
}
