//! The bounded-heap top-k tie-ordering guarantee (score desc, id asc) must
//! hold under every kernel backend, and — for tie groups separated by more
//! than reduction-order drift — produce the *same* ranked list whichever
//! backend scored the candidates.
//!
//! Strategy: a dataset of a few well-separated score levels, each duplicated
//! many times with interleaved ids. Within a backend, duplicate rows score
//! bit-identically (same inputs through the same code path), so ties are
//! real and the id-asc tiebreak is exercised; across backends, the level
//! separation (≫ FMA/reassociation drift) pins the group order, so the full
//! ranked list must be identical.
//!
//! Everything runs in ONE `#[test]`: [`saga_core::kernels::force_backend`]
//! mutates process-global dispatch state, so the sweep stays sequential and
//! restores auto-detection before exiting.

use saga_ann::{FlatIndex, FlatScratch, Hit, Metric, QuantScratch, QuantizedTable};

/// Asserts the bounded-heap ordering contract: scores non-increasing, ids
/// strictly increasing within equal scores.
fn assert_tie_ordered(hits: &[Hit], ctx: &str) {
    for w in hits.windows(2) {
        assert!(
            w[1].score < w[0].score || (w[1].score == w[0].score && w[1].id > w[0].id),
            "{ctx}: ordering violated at ({}, {}) -> ({}, {})",
            w[0].id,
            w[0].score,
            w[1].id,
            w[1].score
        );
    }
}

#[test]
fn topk_tie_ordering_is_backend_invariant() {
    let dim = 32;
    let levels = 8;
    let dups = 25;
    // Level vectors with well-separated magnitudes: dot scores differ by
    // far more than any cross-backend float drift.
    let base: Vec<Vec<f32>> = (0..levels)
        .map(|l| (0..dim).map(|j| ((j + 3) as f32 * 0.11).sin() * (l + 1) as f32).collect())
        .collect();
    let query: Vec<f32> = (0..dim).map(|j| ((j + 1) as f32 * 0.17).cos()).collect();

    let mut flat = FlatIndex::new(dim, Metric::Dot);
    let mut table_rows: Vec<(u64, Vec<f32>)> = Vec::new();
    // Interleave ids across levels (id % levels picks the level) so the
    // id-asc tiebreak inside one level skips through the id space.
    for id in 0..(levels * dups) as u64 {
        let v = &base[id as usize % levels];
        flat.add(id, v);
        table_rows.push((id, v.clone()));
    }
    let table = QuantizedTable::build(dim, table_rows.into_iter());

    let k = 3 * dups + 7; // spans three full tie groups plus a partial one
    let mut scratch = FlatScratch::new();
    let mut qscratch = QuantScratch::new();
    let mut out: Vec<Hit> = Vec::new();

    let backends: Vec<&'static str> =
        saga_core::kernels::available_backends().iter().map(|be| be.name).collect();
    let mut flat_runs: Vec<(&str, Vec<Hit>)> = Vec::new();
    let mut quant_runs: Vec<(&str, Vec<Hit>)> = Vec::new();

    for name in &backends {
        assert!(saga_core::kernels::force_backend(name), "cannot force {name}");
        assert_eq!(saga_core::kernels::backend_name(), *name);

        flat.search_into(&query, k, &mut scratch, &mut out);
        assert_eq!(out.len(), k);
        assert_tie_ordered(&out, &format!("flat/{name}"));
        flat_runs.push((name, out.clone()));

        for metric in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            table.search_into(metric, &query, k, &mut qscratch, &mut out);
            assert_eq!(out.len(), k);
            assert_tie_ordered(&out, &format!("quant/{metric:?}/{name}"));
        }
        table.search_into(Metric::Dot, &query, k, &mut qscratch, &mut out);
        quant_runs.push((name, out.clone()));
    }
    assert!(saga_core::kernels::force_backend("auto"));

    // Cross-backend: the ranked id sequence is identical (scores may drift
    // by ULPs between backends, ordering may not).
    let (ref_name, ref_hits) = &flat_runs[0];
    for (name, hits) in &flat_runs[1..] {
        let same = hits.iter().zip(ref_hits.iter()).all(|(a, b)| a.id == b.id);
        assert!(same, "flat ranked ids differ between {ref_name} and {name}");
    }
    let (ref_name, ref_hits) = &quant_runs[0];
    for (name, hits) in &quant_runs[1..] {
        let same = hits.iter().zip(ref_hits.iter()).all(|(a, b)| a.id == b.id);
        assert!(same, "quantized ranked ids differ between {ref_name} and {name}");
    }

    // The tiebreak did real work: the top tie group must contain duplicate
    // scores with ascending interleaved ids.
    let top = &flat_runs[0].1[..dups];
    assert!(top.windows(2).all(|w| w[0].score == w[1].score && w[1].id > w[0].id));
}
