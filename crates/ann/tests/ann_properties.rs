//! Property tests for the vector substrate.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use saga_ann::{FlatIndex, HnswIndex, HnswParams, Metric, QuantizedVector};

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// HNSW recall@10 vs exact search stays above a floor for arbitrary
    /// random datasets.
    #[test]
    fn hnsw_recall_floor(seed in 0u64..10_000, n in 200usize..900) {
        let dim = 12;
        let vecs = vectors(n, dim, seed);
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        let mut hnsw = HnswIndex::new(dim, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
            hnsw.add(i as u64, v);
        }
        let queries = vectors(10, dim, seed ^ 0xabc);
        let mut recall = 0.0;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let got = hnsw.search_ef(q, 10, 96);
            recall += got.iter().filter(|h| truth.contains(&h.id)).count() as f64 / 10.0;
        }
        recall /= queries.len() as f64;
        prop_assert!(recall > 0.7, "recall {recall} at n={n} seed={seed}");
    }

    /// Scalar quantization reconstruction error is bounded by scale/2 per
    /// element, for any input vector.
    #[test]
    fn quantization_error_bound(v in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
        let q = QuantizedVector::quantize(&v);
        let back = q.dequantize();
        for (orig, rec) in v.iter().zip(&back) {
            prop_assert!(
                (orig - rec).abs() <= q.scale / 2.0 + 1e-6,
                "error {} exceeds half-scale {}",
                (orig - rec).abs(),
                q.scale / 2.0
            );
        }
    }

    /// Exact search returns results in non-increasing score order with the
    /// requested cardinality, for every metric.
    #[test]
    fn flat_search_contract(seed in 0u64..10_000, k in 1usize..20) {
        let dim = 8;
        let vecs = vectors(100, dim, seed);
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let mut idx = FlatIndex::new(dim, metric);
            for (i, v) in vecs.iter().enumerate() {
                idx.add(i as u64, v);
            }
            let hits = idx.search(&vecs[0], k);
            prop_assert_eq!(hits.len(), k.min(100));
            prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
            // Self should be the best hit for cosine/euclidean.
            if metric != Metric::Dot {
                prop_assert_eq!(hits[0].id, 0);
            }
        }
    }
}
