//! Property tests for the vector substrate.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use saga_ann::{
    FlatIndex, Hit, HnswIndex, HnswParams, Metric, QuantizedTable, QuantizedVector, SearchScratch,
};

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect()
}

/// One step of a deterministic index-mutation script.
#[derive(Clone, Debug)]
enum MutOp {
    Upsert(u64, Vec<f32>),
    Remove(u64),
    Compact,
}

/// Generates a mutation script over a small id universe with components on
/// a coarse grid (forcing duplicate vectors and exact score ties), plus the
/// final id → vector set it converges to.
fn mutation_script(
    seed: u64,
    dim: usize,
    ops: usize,
) -> (Vec<MutOp>, std::collections::BTreeMap<u64, Vec<f32>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut script = Vec::with_capacity(ops);
    let mut live = std::collections::BTreeMap::new();
    for step in 0..ops {
        let id = rng.gen_range(0u64..40);
        if rng.gen_bool(0.25) {
            script.push(MutOp::Remove(id));
            live.remove(&id);
        } else {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect();
            script.push(MutOp::Upsert(id, v.clone()));
            live.insert(id, v);
        }
        if step == ops / 2 {
            script.push(MutOp::Compact);
        }
    }
    (script, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// HNSW recall@10 vs exact search stays above a floor for arbitrary
    /// random datasets.
    #[test]
    fn hnsw_recall_floor(seed in 0u64..10_000, n in 200usize..900) {
        let dim = 12;
        let vecs = vectors(n, dim, seed);
        let mut flat = FlatIndex::new(dim, Metric::Euclidean);
        let mut hnsw = HnswIndex::new(dim, Metric::Euclidean, HnswParams::default());
        for (i, v) in vecs.iter().enumerate() {
            flat.add(i as u64, v);
            hnsw.add(i as u64, v);
        }
        let queries = vectors(10, dim, seed ^ 0xabc);
        let mut recall = 0.0;
        for q in &queries {
            let truth: std::collections::HashSet<u64> =
                flat.search(q, 10).into_iter().map(|h| h.id).collect();
            let got = hnsw.search_ef(q, 10, 96);
            recall += got.iter().filter(|h| truth.contains(&h.id)).count() as f64 / 10.0;
        }
        recall /= queries.len() as f64;
        prop_assert!(recall > 0.7, "recall {recall} at n={n} seed={seed}");
    }

    /// Scalar quantization reconstruction error is bounded by scale/2 per
    /// element, for any input vector.
    #[test]
    fn quantization_error_bound(v in proptest::collection::vec(-100.0f32..100.0, 1..256)) {
        let q = QuantizedVector::quantize(&v);
        let back = q.dequantize();
        for (orig, rec) in v.iter().zip(&back) {
            prop_assert!(
                (orig - rec).abs() <= q.scale / 2.0 + 1e-6,
                "error {} exceeds half-scale {}",
                (orig - rec).abs(),
                q.scale / 2.0
            );
        }
    }

    /// Exact search returns results in non-increasing score order with the
    /// requested cardinality, for every metric.
    #[test]
    fn flat_search_contract(seed in 0u64..10_000, k in 1usize..20) {
        let dim = 8;
        let vecs = vectors(100, dim, seed);
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let mut idx = FlatIndex::new(dim, metric);
            for (i, v) in vecs.iter().enumerate() {
                idx.add(i as u64, v);
            }
            let hits = idx.search(&vecs[0], k);
            prop_assert_eq!(hits.len(), k.min(100));
            prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
            // Self should be the best hit for cosine/euclidean.
            if metric != Metric::Dot {
                prop_assert_eq!(hits[0].id, 0);
            }
        }
    }

    /// A persistent, reused [`SearchScratch`] gives results identical to a
    /// fresh scratch per query, across interleaved adds and searches — the
    /// epoch-stamped visited marks must never leak state between queries.
    #[test]
    fn hnsw_scratch_reuse_equals_fresh(seed in 0u64..10_000) {
        let dim = 10;
        let vecs = vectors(300, dim, seed);
        let queries = vectors(6, dim, seed ^ 0x517);
        let mut idx = HnswIndex::new(dim, Metric::Cosine, HnswParams::default());
        let mut reused = SearchScratch::new();
        for (chunk_no, chunk) in vecs.chunks(75).enumerate() {
            for (i, v) in chunk.iter().enumerate() {
                idx.add((chunk_no * 75 + i) as u64, v);
            }
            for q in &queries {
                let with_reused = idx.search_ef_with(q, 10, 64, &mut reused);
                let with_fresh = idx.search_ef_with(q, 10, 64, &mut SearchScratch::new());
                prop_assert_eq!(with_reused, with_fresh);
            }
        }
    }

    /// The bounded-heap top-k of [`FlatIndex::search`] equals the full-sort
    /// reference — `(score desc, id asc)` then truncate — including exact
    /// tie handling. Components are quantized to force score collisions.
    #[test]
    fn flat_top_k_equals_full_sort(seed in 0u64..10_000, k in 1usize..30) {
        let dim = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Few distinct component values + tiny dim → many duplicate vectors
        // and therefore many exact score ties.
        let vecs: Vec<Vec<f32>> = (0..120)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect())
            .collect();
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect();
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let mut idx = FlatIndex::new(dim, metric);
            for (i, v) in vecs.iter().enumerate() {
                idx.add(i as u64, v);
            }
            let mut reference: Vec<Hit> = vecs
                .iter()
                .enumerate()
                .map(|(i, v)| Hit { id: i as u64, score: metric.score(&q, v) })
                .collect();
            reference.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap().then(a.id.cmp(&b.id))
            });
            reference.truncate(k);
            prop_assert_eq!(idx.search(&q, k), reference, "metric {:?}", metric);
        }
    }

    /// Dequantize-free scoring through the i8 kernels agrees with the
    /// scalar dequantize-then-score reference within `1e-3 · scale · dim`
    /// for every metric and arbitrary vectors.
    #[test]
    fn i8_scoring_matches_dequantized_reference(
        v in proptest::collection::vec(-100.0f32..100.0, 1..256),
        seed in 0u64..10_000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let query: Vec<f32> = (0..v.len()).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let q = QuantizedVector::quantize(&v);
        let deq = q.dequantize();
        for metric in [Metric::Dot, Metric::Cosine, Metric::Euclidean] {
            let fast = q.score(metric, &query);
            let slow = metric.score(&query, &deq);
            // Absolute term per the kernel contract, plus a relative term
            // for f32 rounding at large magnitudes (‖v‖² grows with dim).
            let bound = 1e-3 * q.scale * v.len() as f32 + 1e-4 + 1e-5 * slow.abs();
            prop_assert!(
                (fast - slow).abs() <= bound,
                "{:?}: fast {} vs dequantized {} (bound {})",
                metric, fast, slow, bound
            );
        }
    }

    /// An index grown incrementally through upserts and tombstone deletes
    /// (with a mid-stream compaction) returns exactly the same top-k as an
    /// index built from scratch on the final vector set — ties included —
    /// for the flat backend, both before and after a final compaction.
    #[test]
    fn flat_incremental_equals_scratch_build(seed in 0u64..10_000, k in 1usize..25) {
        let dim = 6;
        let (script, live) = mutation_script(seed, dim, 160);
        let q: Vec<f32> = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37);
            (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect()
        };
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let mut inc = FlatIndex::new(dim, metric);
            for op in &script {
                match op {
                    MutOp::Upsert(id, v) => { inc.upsert(*id, v); }
                    MutOp::Remove(id) => { inc.remove(*id); }
                    MutOp::Compact => inc.compact(),
                }
            }
            let mut scratch = FlatIndex::new(dim, metric);
            for (id, v) in &live {
                scratch.add(*id, v);
            }
            prop_assert_eq!(inc.live_len(), scratch.len());
            let want = scratch.search(&q, k);
            prop_assert_eq!(&inc.search(&q, k), &want, "pre-compact, metric {:?}", metric);
            inc.compact();
            prop_assert_eq!(&inc.search(&q, k), &want, "post-compact, metric {:?}", metric);
        }
    }

    /// Same incremental-vs-scratch equivalence for the quantized backend:
    /// re-quantizing on upsert must leave rows bit-identical to quantizing
    /// the final vector set directly, so scores (and tie order) match.
    #[test]
    fn quantized_incremental_equals_scratch_build(seed in 0u64..10_000, k in 1usize..25) {
        let dim = 6;
        let (script, live) = mutation_script(seed, dim, 160);
        let q: Vec<f32> = {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9e37);
            (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect()
        };
        let mut inc = QuantizedTable::new(dim);
        for op in &script {
            match op {
                MutOp::Upsert(id, v) => { inc.upsert(*id, v); }
                MutOp::Remove(id) => { inc.remove(*id); }
                MutOp::Compact => inc.compact(),
            }
        }
        let scratch =
            QuantizedTable::build(dim, live.iter().map(|(id, v)| (*id, v.clone())));
        prop_assert_eq!(inc.live_len(), scratch.len());
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let want = scratch.search(metric, &q, k);
            prop_assert_eq!(&inc.search(metric, &q, k), &want, "pre-compact, metric {:?}", metric);
        }
        inc.compact();
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let want = scratch.search(metric, &q, k);
            prop_assert_eq!(&inc.search(metric, &q, k), &want, "post-compact, metric {:?}", metric);
        }
    }

    /// [`QuantizedTable::search`] equals the full-sort reference over its
    /// own per-row scores — `(score desc, id asc)` then truncate, including
    /// exact tie handling — and every returned score stays within the
    /// quantization error bound of the dequantized baseline. Components are
    /// drawn from a small grid to force duplicate rows and exact ties.
    #[test]
    fn quantized_top_k_equals_full_sort(seed in 0u64..10_000, k in 1usize..30) {
        let dim = 4;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vecs: Vec<Vec<f32>> = (0..120)
            .map(|_| (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect())
            .collect();
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2i32..=2) as f32 * 0.5).collect();
        let table = QuantizedTable::build(
            dim,
            vecs.iter().enumerate().map(|(i, v)| (i as u64, v.clone())),
        );
        for metric in [Metric::Cosine, Metric::Euclidean, Metric::Dot] {
            let mut reference: Vec<Hit> = (0..table.len())
                .map(|i| Hit { id: i as u64, score: table.score_row(metric, &q, i) })
                .collect();
            reference.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap().then(a.id.cmp(&b.id))
            });
            reference.truncate(k);
            let hits = table.search(metric, &q, k);
            prop_assert_eq!(&hits, &reference, "metric {:?}", metric);
            // Returned scores track the dequantized baseline.
            for h in &hits {
                let baseline = metric.score(&q, &table.dequantize_row(h.id as usize));
                prop_assert!(
                    (h.score - baseline).abs() <= 1e-2,
                    "{:?} id {}: {} vs baseline {}",
                    metric, h.id, h.score, baseline
                );
            }
        }
    }
}
