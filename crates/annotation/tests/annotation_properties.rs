//! Property tests for mention detection: the automaton is exactly
//! equivalent to a naive multi-pattern scan, and leftmost-longest output is
//! well-formed for arbitrary inputs.

use proptest::prelude::*;
use saga_annotation::{leftmost_longest, PhraseAutomaton, PhraseMatch};

/// Tokens drawn from a small alphabet so overlaps are frequent.
fn token() -> impl Strategy<Value = String> {
    prop_oneof![Just("a"), Just("b"), Just("c"), Just("d"), Just("e")]
        .prop_map(|s: &str| s.to_string())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Automaton scan ≡ naive substring search for arbitrary pattern sets
    /// and texts.
    #[test]
    fn automaton_equals_naive(
        patterns in proptest::collection::vec(proptest::collection::vec(token(), 1..4), 1..8),
        text in proptest::collection::vec(token(), 0..40),
    ) {
        let mut automaton = PhraseAutomaton::new();
        for p in &patterns {
            let refs: Vec<&str> = p.iter().map(String::as_str).collect();
            automaton.add_pattern(&refs);
        }
        automaton.build();
        let text_refs: Vec<&str> = text.iter().map(String::as_str).collect();
        let mut got = automaton.scan(&text_refs);

        let mut want = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            for start in 0..text.len() {
                if start + p.len() <= text.len()
                    && text[start..start + p.len()].iter().eq(p.iter())
                {
                    want.push(PhraseMatch {
                        pattern: pid as u32,
                        start_tok: start,
                        end_tok: start + p.len(),
                    });
                }
            }
        }
        let key = |m: &PhraseMatch| (m.start_tok, m.end_tok, m.pattern);
        got.sort_by_key(key);
        want.sort_by_key(key);
        prop_assert_eq!(got, want);
    }

    /// Leftmost-longest output is sorted, non-overlapping, and every
    /// dropped match overlaps some kept match.
    #[test]
    fn leftmost_longest_is_well_formed(
        patterns in proptest::collection::vec(proptest::collection::vec(token(), 1..4), 1..8),
        text in proptest::collection::vec(token(), 0..40),
    ) {
        let mut automaton = PhraseAutomaton::new();
        for p in &patterns {
            let refs: Vec<&str> = p.iter().map(String::as_str).collect();
            automaton.add_pattern(&refs);
        }
        automaton.build();
        let text_refs: Vec<&str> = text.iter().map(String::as_str).collect();
        let all = automaton.scan(&text_refs);
        let kept = leftmost_longest(all.clone());

        // Sorted & non-overlapping.
        for w in kept.windows(2) {
            prop_assert!(w[0].end_tok <= w[1].start_tok, "overlap in {kept:?}");
        }
        // Every original match either is kept or overlaps a kept one.
        for m in &all {
            let ok = kept.iter().any(|k| m.start_tok < k.end_tok && k.start_tok < m.end_tok);
            prop_assert!(ok, "match {m:?} neither kept nor overlapped");
        }
    }
}
