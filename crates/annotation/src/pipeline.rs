//! The web-scale annotation pipeline (paper Fig. 4): sharded parallel
//! annotation of a corpus, incremental re-annotation of only the changed
//! pages, and materialization of entity→document link edges into the KG.

use crate::linker::LinkedMention;
use crate::service::AnnotationService;
use saga_core::obs::{MetricsSnapshot, Registry, Scope, SpanTimer};
use saga_core::{DeltaBatch, DocId, EntityId, KnowledgeGraph, Triple, Value};
use saga_webcorpus::Corpus;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Annotations of one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotatedDoc {
    /// Document id.
    pub doc: DocId,
    /// Corpus version the annotation reflects.
    pub version: u64,
    /// Linked mentions of the document.
    pub mentions: Vec<LinkedMention>,
}

/// The annotated corpus: per-document annotations plus the entity→documents
/// inverted map ("linking the Web" — the KG's new edges to documents).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnnotatedCorpus {
    /// Per-document annotations.
    pub docs: HashMap<DocId, AnnotatedDoc>,
}

impl AnnotatedCorpus {
    /// Inverted map: entity → documents that mention it (sorted).
    pub fn entity_docs(&self) -> HashMap<EntityId, Vec<DocId>> {
        let mut out: HashMap<EntityId, Vec<DocId>> = HashMap::new();
        for ad in self.docs.values() {
            for m in &ad.mentions {
                out.entry(m.entity).or_default().push(ad.doc);
            }
        }
        // Duplicates (an entity mentioned several times in one document)
        // collapse in the sort+dedup — cheaper than a per-document set.
        for v in out.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        out
    }

    /// Documents mentioning `entity` (sorted). Scans per-document mention
    /// lists directly rather than materializing the full entity→docs map
    /// for every call.
    pub fn docs_mentioning(&self, entity: EntityId) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .docs
            .values()
            .filter(|ad| ad.mentions.iter().any(|m| m.entity == entity))
            .map(|ad| ad.doc)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total linked mentions.
    pub fn total_mentions(&self) -> usize {
        self.docs.values().map(|d| d.mentions.len()).sum()
    }
}

/// Pipeline statistics for one run (full or incremental).
///
/// A thin view over the `saga-core::obs` metrics the pass recorded: derive it
/// from a snapshot delta with [`PipelineStats::from_snapshot_delta`].
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Documents processed in this pass.
    pub docs_processed: usize,
    /// Mentions linked in this pass.
    pub mentions_found: usize,
    /// Wall-clock time of the pass.
    pub elapsed: std::time::Duration,
}

impl PipelineStats {
    /// Derive the stats for one pass from a [`MetricsSnapshot`] delta
    /// recorded under `scope_path` (see [`annotate_corpus_obs`]). Clock
    /// ticks are interpreted as microseconds (the `WallClock` unit).
    pub fn from_snapshot_delta(delta: &MetricsSnapshot, scope_path: &str) -> PipelineStats {
        let ticks = delta.histogram(&format!("{scope_path}/pass_ticks")).map_or(0, |h| h.sum);
        PipelineStats {
            docs_processed: delta.counter(&format!("{scope_path}/docs_processed")) as usize,
            mentions_found: delta.counter(&format!("{scope_path}/mentions_found")) as usize,
            elapsed: std::time::Duration::from_micros(ticks),
        }
    }
}

/// Annotates the whole corpus with `workers` threads over document shards.
pub fn annotate_corpus(
    service: &AnnotationService,
    corpus: &Corpus,
    workers: usize,
) -> (AnnotatedCorpus, PipelineStats) {
    let registry = Registry::new();
    annotate_corpus_obs(service, corpus, workers, &registry.scope("annotation"))
}

/// [`annotate_corpus`] recording through an obs scope: counters
/// `docs_processed` / `mentions_found`, a `mentions_per_doc` histogram
/// (values, not clock deltas — deterministic under any worker count) and a
/// whole-pass `pass_ticks` span.
pub fn annotate_corpus_obs(
    service: &AnnotationService,
    corpus: &Corpus,
    workers: usize,
    scope: &Scope,
) -> (AnnotatedCorpus, PipelineStats) {
    let before = scope.registry().snapshot();
    let docs_counter = scope.counter("docs_processed");
    let mentions_counter = scope.counter("mentions_found");
    let mentions_per_doc = scope.histogram("mentions_per_doc");
    let span = SpanTimer::start(scope.histogram("pass_ticks"), scope.clock());
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Vec<AnnotatedDoc>>> =
        (0..workers.max(1)).map(|_| parking_lot::Mutex::new(Vec::new())).collect();

    crossbeam::thread::scope(|s| {
        for w in 0..workers.max(1) {
            let next = &next;
            let results = &results;
            let mentions_per_doc = &mentions_per_doc;
            s.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= corpus.pages.len() {
                        break;
                    }
                    let page = &corpus.pages[i];
                    let mentions = service.annotate(&page.full_text());
                    mentions_per_doc.record(mentions.len() as u64);
                    local.push(AnnotatedDoc {
                        doc: page.id,
                        version: page.last_modified,
                        mentions,
                    });
                }
                results[w].lock().extend(local);
            });
        }
    })
    .expect("annotation worker panicked");

    let mut out = AnnotatedCorpus::default();
    for shard in results {
        for ad in shard.into_inner() {
            out.docs.insert(ad.doc, ad);
        }
    }
    docs_counter.add(corpus.pages.len() as u64);
    mentions_counter.add(out.total_mentions() as u64);
    span.stop();
    let mut delta = scope.registry().snapshot();
    delta.diff(&before);
    (out, PipelineStats::from_snapshot_delta(&delta, scope.path()))
}

/// Re-annotates only `changed` documents in place — the paper's incremental
/// processing of "only the changed webpages at a given frequency".
pub fn annotate_incremental(
    service: &AnnotationService,
    corpus: &Corpus,
    annotated: &mut AnnotatedCorpus,
    changed: &[DocId],
) -> PipelineStats {
    let registry = Registry::new();
    annotate_incremental_obs(service, corpus, annotated, changed, &registry.scope("annotation"))
}

/// [`annotate_incremental`] recording through an obs scope. The pass is
/// sequential, so per-document `doc_ticks` spans are deterministic under a
/// virtual clock in addition to the whole-pass `pass_ticks` span.
pub fn annotate_incremental_obs(
    service: &AnnotationService,
    corpus: &Corpus,
    annotated: &mut AnnotatedCorpus,
    changed: &[DocId],
    scope: &Scope,
) -> PipelineStats {
    let before = scope.registry().snapshot();
    let docs_counter = scope.counter("docs_processed");
    let mentions_counter = scope.counter("mentions_found");
    let doc_hist = scope.histogram("doc_ticks");
    let clock = scope.clock();
    let span = SpanTimer::start(scope.histogram("pass_ticks"), clock.clone());
    for &doc in changed {
        let doc_span = SpanTimer::start(doc_hist.clone(), clock.clone());
        let page = corpus.page(doc);
        let mentions = service.annotate(&page.full_text());
        mentions_counter.add(mentions.len() as u64);
        annotated.docs.insert(doc, AnnotatedDoc { doc, version: page.last_modified, mentions });
        doc_span.stop();
    }
    docs_counter.add(changed.len() as u64);
    span.stop();
    let mut delta = scope.registry().snapshot();
    delta.diff(&before);
    PipelineStats::from_snapshot_delta(&delta, scope.path())
}

/// Consumes a page-keyed [`DeltaBatch`] from the webcorpus change feed:
/// re-annotates exactly the dirty pages in place and returns the
/// entity-keyed dirty set — every entity mentioned in a dirty page before
/// or after re-annotation. The set is deliberately a superset of "mention
/// set changed": the page *content* backing those mentions changed, so
/// every entity evidenced by it must be re-examined downstream.
pub fn annotate_delta_obs(
    service: &AnnotationService,
    corpus: &Corpus,
    annotated: &mut AnnotatedCorpus,
    batch: &DeltaBatch,
    scope: &Scope,
) -> (DeltaBatch, PipelineStats) {
    let mut out = DeltaBatch::empty(batch.from);
    out.to = batch.to;
    let changed: Vec<DocId> = batch.dirty_pages.iter().copied().collect();
    for &doc in &changed {
        out.mark_page(doc);
        if let Some(old) = annotated.docs.get(&doc) {
            for m in &old.mentions {
                out.mark_entity(m.entity);
            }
        }
    }
    let stats = annotate_incremental_obs(service, corpus, annotated, &changed, scope);
    for &doc in &changed {
        if let Some(new) = annotated.docs.get(&doc) {
            for m in &new.mentions {
                out.mark_entity(m.entity);
            }
        }
    }
    (out, stats)
}

/// Materializes entity→document links into the KG as `mentioned_in` facts
/// with the document URL as an identifier literal (paper Sec. 3.1:
/// "extending our KG with edges linking KG entities to unstructured Web
/// documents"). Returns the number of link facts written.
pub fn extend_kg_with_links(
    kg: &mut KnowledgeGraph,
    corpus: &Corpus,
    annotated: &AnnotatedCorpus,
    max_docs_per_entity: usize,
) -> usize {
    let pred = kg.ontology_mut().add_predicate(
        "mentioned_in",
        "mentioned in",
        saga_core::ValueKind::Identifier,
        None,
        saga_core::Cardinality::Multi,
        saga_core::Volatility::Slow,
        true, // bookkeeping for embeddings purposes
    );
    let src = kg.register_source("web-annotation");
    let mut written = 0;
    for (entity, docs) in annotated.entity_docs() {
        for doc in docs.into_iter().take(max_docs_per_entity) {
            let url = corpus.page(doc).url.clone();
            kg.insert_with(Triple::new(entity, pred, Value::Identifier(url)), src, 1.0);
            written += 1;
        }
    }
    kg.commit();
    written
}

/// Incrementally reconciles `mentioned_in` links for exactly the dirty
/// entities of a delta pass: per entity, diffs the desired link set (its
/// current mention docs, capped) against the links already in the KG,
/// removing stale edges and adding fresh ones. Equivalent to rebuilding
/// that entity's slice of [`extend_kg_with_links`] output. Returns
/// `(added, removed)` link-fact counts.
pub fn sync_kg_links(
    kg: &mut KnowledgeGraph,
    corpus: &Corpus,
    annotated: &AnnotatedCorpus,
    dirty_entities: impl IntoIterator<Item = EntityId>,
    max_docs_per_entity: usize,
) -> (usize, usize) {
    let pred = kg.ontology_mut().add_predicate(
        "mentioned_in",
        "mentioned in",
        saga_core::ValueKind::Identifier,
        None,
        saga_core::Cardinality::Multi,
        saga_core::Volatility::Slow,
        true,
    );
    let src = kg.register_source("web-annotation");
    let (mut added, mut removed) = (0, 0);
    for entity in dirty_entities {
        let desired: std::collections::BTreeSet<String> = annotated
            .docs_mentioning(entity)
            .into_iter()
            .take(max_docs_per_entity)
            .map(|d| corpus.page(d).url.clone())
            .collect();
        let existing: std::collections::BTreeSet<String> = kg
            .objects(entity, pred)
            .into_iter()
            .filter_map(|v| match v {
                Value::Identifier(url) => Some(url),
                _ => None,
            })
            .collect();
        for url in existing.difference(&desired) {
            kg.remove(&Triple::new(entity, pred, Value::Identifier(url.clone())));
            removed += 1;
        }
        for url in desired.difference(&existing) {
            kg.insert_with(Triple::new(entity, pred, Value::Identifier(url.clone())), src, 1.0);
            added += 1;
        }
    }
    kg.commit();
    (added, removed)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::linker::{LinkerConfig, Tier};
    use saga_core::synth::{generate, SynthConfig};
    use saga_webcorpus::{apply_churn, generate_corpus, ChurnConfig, CorpusConfig};

    fn setup() -> (saga_core::synth::SynthKg, Corpus, AnnotationService) {
        let s = generate(&SynthConfig::tiny(171));
        let (c, _) = generate_corpus(&s, &[], &CorpusConfig::tiny(11));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        (s, c, svc)
    }

    #[test]
    fn full_pipeline_links_profile_topics() {
        let (s, c, svc) = setup();
        let (annotated, stats) = annotate_corpus(&svc, &c, 4);
        assert_eq!(stats.docs_processed, c.len());
        assert!(stats.mentions_found > c.len() / 2, "mentions: {}", stats.mentions_found);
        // The Benicio profile page should link Benicio.
        let benicio_docs = annotated.docs_mentioning(s.scenario.benicio);
        assert!(!benicio_docs.is_empty());
        let page = c.page(benicio_docs[0]);
        assert!(page.full_text().contains("Benicio"));
    }

    #[test]
    fn parallel_matches_single_worker() {
        let (_, c, svc) = setup();
        let (a1, _) = annotate_corpus(&svc, &c, 1);
        let (a4, _) = annotate_corpus(&svc, &c, 4);
        assert_eq!(a1.docs.len(), a4.docs.len());
        assert_eq!(a1.total_mentions(), a4.total_mentions());
        for (doc, ad) in &a1.docs {
            let bd = &a4.docs[doc];
            assert_eq!(ad.mentions.len(), bd.mentions.len(), "doc {doc:?}");
        }
    }

    #[test]
    fn incremental_processes_only_changed() {
        let (_, mut c, svc) = setup();
        let (mut annotated, full_stats) = annotate_corpus(&svc, &c, 2);
        let report =
            apply_churn(&mut c, &ChurnConfig { edit_fraction: 0.05, new_pages: 5, seed: 3 });
        let inc_stats = annotate_incremental(&svc, &c, &mut annotated, &report.changed);
        assert_eq!(inc_stats.docs_processed, report.changed.len());
        assert!(inc_stats.docs_processed < full_stats.docs_processed / 5);
        // Changed docs now carry the new version.
        for d in &report.changed {
            assert_eq!(annotated.docs[d].version, report.version);
        }
        // All docs annotated (old + new).
        assert_eq!(annotated.docs.len(), c.len());
    }

    #[test]
    fn delta_pass_dirties_mentioned_entities() {
        let (_, mut c, svc) = setup();
        let (mut annotated, _) = annotate_corpus(&svc, &c, 2);
        let report =
            apply_churn(&mut c, &ChurnConfig { edit_fraction: 0.05, new_pages: 5, seed: 3 });
        let page_batch = report.to_delta_batch();
        let reg = saga_core::Registry::new();
        let (entity_batch, stats) =
            annotate_delta_obs(&svc, &c, &mut annotated, &page_batch, &reg.scope("annotation"));
        assert_eq!(stats.docs_processed, report.changed.len());
        assert_eq!((entity_batch.from, entity_batch.to), (page_batch.from, page_batch.to));
        assert_eq!(entity_batch.dirty_pages, page_batch.dirty_pages);
        // Every entity now mentioned in a dirty page is in the dirty set.
        for &doc in &report.changed {
            for m in &annotated.docs[&doc].mentions {
                assert!(entity_batch.dirty_entities.contains(&m.entity));
            }
        }
    }

    #[test]
    fn incremental_link_sync_converges_to_batch_rebuild() {
        let (s, mut c, svc) = setup();
        let cap = 3;
        // Incremental world: annotate, materialize links, then churn and
        // patch via the delta pass + link sync.
        let mut inc_kg = s.kg.clone();
        let (mut annotated, _) = annotate_corpus(&svc, &c, 2);
        extend_kg_with_links(&mut inc_kg, &c, &annotated, cap);
        let report =
            apply_churn(&mut c, &ChurnConfig { edit_fraction: 0.1, new_pages: 8, seed: 7 });
        // Rewrite the first page linking Benicio so it stops mentioning
        // him — generic churn only appends mention-free paragraphs, so
        // this is what exercises the stale-link removal path.
        let benicio = s.scenario.benicio;
        let benicio_name = s.kg.entity(benicio).name.clone();
        let target = annotated.docs_mentioning(benicio)[0];
        {
            let page = c.pages.iter_mut().find(|p| p.id == target).unwrap();
            page.title = page.title.replace(&benicio_name, "an unremarkable person");
            for para in page.paragraphs.iter_mut() {
                *para = para.replace(&benicio_name, "an unremarkable person");
            }
            for row in page.infobox.iter_mut() {
                row.value = row.value.replace(&benicio_name, "an unremarkable person");
            }
            page.last_modified = report.version;
        }
        let mut page_batch = report.to_delta_batch();
        page_batch.mark_page(target);
        let reg = saga_core::Registry::new();
        let (entity_batch, _) =
            annotate_delta_obs(&svc, &c, &mut annotated, &page_batch, &reg.scope("annotation"));
        assert!(entity_batch.dirty_entities.contains(&benicio));
        let (added, removed) = sync_kg_links(
            &mut inc_kg,
            &c,
            &annotated,
            entity_batch.dirty_entities.iter().copied(),
            cap,
        );
        assert!(removed > 0, "dropped mention retracts its link");
        // Batch world: re-annotate everything from scratch on the final
        // corpus and materialize links into a fresh KG.
        let mut batch_kg = s.kg.clone();
        let (batch_annotated, _) = annotate_corpus(&svc, &c, 2);
        extend_kg_with_links(&mut batch_kg, &c, &batch_annotated, cap);
        // Same link set per entity, including entities with removed links.
        let pred = inc_kg.ontology().predicate_by_name("mentioned_in").unwrap();
        for e in batch_annotated.entity_docs().keys() {
            let mut a = inc_kg.objects(*e, pred);
            let mut b = batch_kg.objects(*e, pred);
            a.sort_by_key(|v| v.canonical());
            b.sort_by_key(|v| v.canonical());
            assert_eq!(a, b, "links diverge for {e:?} (added {added}, removed {removed})");
        }
    }

    #[test]
    fn kg_extension_writes_link_facts() {
        let (s, c, svc) = setup();
        let mut kg = s.kg.clone();
        let (annotated, _) = annotate_corpus(&svc, &c, 2);
        let before = kg.num_triples();
        let written = extend_kg_with_links(&mut kg, &c, &annotated, 3);
        assert!(written > 0);
        assert_eq!(kg.num_triples(), before + written);
        let pred = kg.ontology().predicate_by_name("mentioned_in").unwrap();
        let links = kg.objects(s.scenario.benicio, pred);
        assert!(!links.is_empty());
        assert!(matches!(&links[0], Value::Identifier(url) if url.starts_with("synth://")));
    }
}
