//! The web-scale annotation pipeline (paper Fig. 4): sharded parallel
//! annotation of a corpus, incremental re-annotation of only the changed
//! pages, and materialization of entity→document link edges into the KG.

use crate::linker::LinkedMention;
use crate::service::AnnotationService;
use saga_core::{DocId, EntityId, KnowledgeGraph, Triple, Value};
use saga_webcorpus::Corpus;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Annotations of one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnnotatedDoc {
    /// Document id.
    pub doc: DocId,
    /// Corpus version the annotation reflects.
    pub version: u64,
    /// Linked mentions of the document.
    pub mentions: Vec<LinkedMention>,
}

/// The annotated corpus: per-document annotations plus the entity→documents
/// inverted map ("linking the Web" — the KG's new edges to documents).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnnotatedCorpus {
    /// Per-document annotations.
    pub docs: HashMap<DocId, AnnotatedDoc>,
}

impl AnnotatedCorpus {
    /// Inverted map: entity → documents that mention it (sorted).
    pub fn entity_docs(&self) -> HashMap<EntityId, Vec<DocId>> {
        let mut out: HashMap<EntityId, Vec<DocId>> = HashMap::new();
        for ad in self.docs.values() {
            for m in &ad.mentions {
                out.entry(m.entity).or_default().push(ad.doc);
            }
        }
        // Duplicates (an entity mentioned several times in one document)
        // collapse in the sort+dedup — cheaper than a per-document set.
        for v in out.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        out
    }

    /// Documents mentioning `entity` (sorted). Scans per-document mention
    /// lists directly rather than materializing the full entity→docs map
    /// for every call.
    pub fn docs_mentioning(&self, entity: EntityId) -> Vec<DocId> {
        let mut out: Vec<DocId> = self
            .docs
            .values()
            .filter(|ad| ad.mentions.iter().any(|m| m.entity == entity))
            .map(|ad| ad.doc)
            .collect();
        out.sort_unstable();
        out
    }

    /// Total linked mentions.
    pub fn total_mentions(&self) -> usize {
        self.docs.values().map(|d| d.mentions.len()).sum()
    }
}

/// Pipeline statistics for one run (full or incremental).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct PipelineStats {
    /// Documents processed in this pass.
    pub docs_processed: usize,
    /// Mentions linked in this pass.
    pub mentions_found: usize,
    /// Wall-clock time of the pass.
    pub elapsed: std::time::Duration,
}

/// Annotates the whole corpus with `workers` threads over document shards.
pub fn annotate_corpus(
    service: &AnnotationService,
    corpus: &Corpus,
    workers: usize,
) -> (AnnotatedCorpus, PipelineStats) {
    let start = std::time::Instant::now();
    let next = AtomicUsize::new(0);
    let results: Vec<parking_lot::Mutex<Vec<AnnotatedDoc>>> =
        (0..workers.max(1)).map(|_| parking_lot::Mutex::new(Vec::new())).collect();

    crossbeam::thread::scope(|s| {
        for w in 0..workers.max(1) {
            let next = &next;
            let results = &results;
            s.spawn(move |_| {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= corpus.pages.len() {
                        break;
                    }
                    let page = &corpus.pages[i];
                    let mentions = service.annotate(&page.full_text());
                    local.push(AnnotatedDoc {
                        doc: page.id,
                        version: page.last_modified,
                        mentions,
                    });
                }
                results[w].lock().extend(local);
            });
        }
    })
    .expect("annotation worker panicked");

    let mut out = AnnotatedCorpus::default();
    for shard in results {
        for ad in shard.into_inner() {
            out.docs.insert(ad.doc, ad);
        }
    }
    let stats = PipelineStats {
        docs_processed: corpus.pages.len(),
        mentions_found: out.total_mentions(),
        elapsed: start.elapsed(),
    };
    (out, stats)
}

/// Re-annotates only `changed` documents in place — the paper's incremental
/// processing of "only the changed webpages at a given frequency".
pub fn annotate_incremental(
    service: &AnnotationService,
    corpus: &Corpus,
    annotated: &mut AnnotatedCorpus,
    changed: &[DocId],
) -> PipelineStats {
    let start = std::time::Instant::now();
    let mut mentions_found = 0;
    for &doc in changed {
        let page = corpus.page(doc);
        let mentions = service.annotate(&page.full_text());
        mentions_found += mentions.len();
        annotated.docs.insert(doc, AnnotatedDoc { doc, version: page.last_modified, mentions });
    }
    PipelineStats { docs_processed: changed.len(), mentions_found, elapsed: start.elapsed() }
}

/// Materializes entity→document links into the KG as `mentioned_in` facts
/// with the document URL as an identifier literal (paper Sec. 3.1:
/// "extending our KG with edges linking KG entities to unstructured Web
/// documents"). Returns the number of link facts written.
pub fn extend_kg_with_links(
    kg: &mut KnowledgeGraph,
    corpus: &Corpus,
    annotated: &AnnotatedCorpus,
    max_docs_per_entity: usize,
) -> usize {
    let pred = kg.ontology_mut().add_predicate(
        "mentioned_in",
        "mentioned in",
        saga_core::ValueKind::Identifier,
        None,
        saga_core::Cardinality::Multi,
        saga_core::Volatility::Slow,
        true, // bookkeeping for embeddings purposes
    );
    let src = kg.register_source("web-annotation");
    let mut written = 0;
    for (entity, docs) in annotated.entity_docs() {
        for doc in docs.into_iter().take(max_docs_per_entity) {
            let url = corpus.page(doc).url.clone();
            kg.insert_with(Triple::new(entity, pred, Value::Identifier(url)), src, 1.0);
            written += 1;
        }
    }
    kg.commit();
    written
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::{LinkerConfig, Tier};
    use saga_core::synth::{generate, SynthConfig};
    use saga_webcorpus::{apply_churn, generate_corpus, ChurnConfig, CorpusConfig};

    fn setup() -> (saga_core::synth::SynthKg, Corpus, AnnotationService) {
        let s = generate(&SynthConfig::tiny(171));
        let (c, _) = generate_corpus(&s, &[], &CorpusConfig::tiny(11));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        (s, c, svc)
    }

    #[test]
    fn full_pipeline_links_profile_topics() {
        let (s, c, svc) = setup();
        let (annotated, stats) = annotate_corpus(&svc, &c, 4);
        assert_eq!(stats.docs_processed, c.len());
        assert!(stats.mentions_found > c.len() / 2, "mentions: {}", stats.mentions_found);
        // The Benicio profile page should link Benicio.
        let benicio_docs = annotated.docs_mentioning(s.scenario.benicio);
        assert!(!benicio_docs.is_empty());
        let page = c.page(benicio_docs[0]);
        assert!(page.full_text().contains("Benicio"));
    }

    #[test]
    fn parallel_matches_single_worker() {
        let (_, c, svc) = setup();
        let (a1, _) = annotate_corpus(&svc, &c, 1);
        let (a4, _) = annotate_corpus(&svc, &c, 4);
        assert_eq!(a1.docs.len(), a4.docs.len());
        assert_eq!(a1.total_mentions(), a4.total_mentions());
        for (doc, ad) in &a1.docs {
            let bd = &a4.docs[doc];
            assert_eq!(ad.mentions.len(), bd.mentions.len(), "doc {doc:?}");
        }
    }

    #[test]
    fn incremental_processes_only_changed() {
        let (_, mut c, svc) = setup();
        let (mut annotated, full_stats) = annotate_corpus(&svc, &c, 2);
        let report =
            apply_churn(&mut c, &ChurnConfig { edit_fraction: 0.05, new_pages: 5, seed: 3 });
        let inc_stats = annotate_incremental(&svc, &c, &mut annotated, &report.changed);
        assert_eq!(inc_stats.docs_processed, report.changed.len());
        assert!(inc_stats.docs_processed < full_stats.docs_processed / 5);
        // Changed docs now carry the new version.
        for d in &report.changed {
            assert_eq!(annotated.docs[d].version, report.version);
        }
        // All docs annotated (old + new).
        assert_eq!(annotated.docs.len(), c.len());
    }

    #[test]
    fn kg_extension_writes_link_facts() {
        let (s, c, svc) = setup();
        let mut kg = s.kg.clone();
        let (annotated, _) = annotate_corpus(&svc, &c, 2);
        let before = kg.num_triples();
        let written = extend_kg_with_links(&mut kg, &c, &annotated, 3);
        assert!(written > 0);
        assert_eq!(kg.num_triples(), before + written);
        let pred = kg.ontology().predicate_by_name("mentioned_in").unwrap();
        let links = kg.objects(s.scenario.benicio, pred);
        assert!(!links.is_empty());
        assert!(matches!(&links[0], Value::Identifier(url) if url.starts_with("synth://")));
    }
}
