//! Mention detection: tokenizing text and locating alias-table phrases.

use crate::alias::{AliasTable, Candidate};
use crate::automaton::{leftmost_longest, PhraseAutomaton};
use saga_core::text::{tokenize, Token};
use serde::{Deserialize, Serialize};

/// A detected mention with its candidate entities (unresolved).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mention {
    /// Byte offset of the mention start in the source text.
    pub start: usize,
    /// Byte offset one past the end.
    pub end: usize,
    /// Token index range (for context windows).
    pub start_tok: usize,
    /// Exclusive end token index.
    pub end_tok: usize,
    /// Normalized surface form.
    pub form: String,
    /// Candidate entities from the alias table.
    pub candidates: Vec<Candidate>,
}

/// Detects mentions in `text` using a compiled automaton; returns the
/// leftmost-longest non-overlapping mentions plus the token stream (for
/// downstream context features).
pub fn detect_mentions(
    text: &str,
    automaton: &PhraseAutomaton,
    pattern_forms: &[String],
    aliases: &AliasTable,
) -> (Vec<Mention>, Vec<Token>) {
    let tokens = tokenize(text);
    let token_strs: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    let matches = leftmost_longest(automaton.scan(&token_strs));
    let mentions = matches
        .into_iter()
        .map(|m| {
            let form = &pattern_forms[m.pattern as usize];
            Mention {
                start: tokens[m.start_tok].start,
                end: tokens[m.end_tok - 1].end,
                start_tok: m.start_tok,
                end_tok: m.end_tok,
                form: form.clone(),
                candidates: aliases.candidates(form).to_vec(),
            }
        })
        .collect();
    (mentions, tokens)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn detects_names_with_byte_spans() {
        let s = generate(&SynthConfig::tiny(141));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let text = "Fans say Michael Jordan dominates; see MJ highlights.";
        let (mentions, _) = detect_mentions(text, &a, &forms, &table);
        assert!(mentions.len() >= 2);
        let mj = &mentions[0];
        assert_eq!(&text[mj.start..mj.end], "Michael Jordan");
        assert_eq!(mj.form, "michael jordan");
        assert_eq!(mj.candidates.len(), 2);
        let alias = mentions.iter().find(|m| m.form == "mj").expect("alias detected");
        assert_eq!(&text[alias.start..alias.end], "MJ");
    }

    #[test]
    fn no_candidates_for_plain_text() {
        let s = generate(&SynthConfig::tiny(141));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let (mentions, toks) =
            detect_mentions("nothing relevant here whatsoever", &a, &forms, &table);
        assert!(mentions.is_empty());
        assert_eq!(toks.len(), 4);
    }

    #[test]
    fn diacritics_fold_into_matches() {
        let s = generate(&SynthConfig::tiny(141));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        // "Benicio del Toro" with stylized accents still matches.
        let text = "Benício del Toro stars tonight";
        let (mentions, _) = detect_mentions(text, &a, &forms, &table);
        assert!(mentions.iter().any(|m| m.form == "benicio del toro"));
    }
}
