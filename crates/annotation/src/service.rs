//! The semantic annotation service facade (paper Sec. 3.2): modular —
//! choose a tier per deployment; dynamic — new entities become linkable via
//! the delta automaton without a full rebuild.

use crate::alias::AliasTable;
use crate::automaton::PhraseAutomaton;
use crate::linker::{link_mentions, LinkedMention, LinkerConfig, Tier};
use crate::mention::{detect_mentions, Mention};
use saga_ann::EmbeddingCache;
use saga_core::text::{hash_embed, tokenize};
use saga_core::{EntityId, KnowledgeGraph, TypeId};
use saga_embeddings::TrainedModel;
use std::collections::HashMap;

/// Computes an entity's text-feature embedding from its name, description
/// and type name — the "textual features of the KG entities (e.g., name,
/// description, popularity)" the paper's contextual reranker embeds.
pub fn entity_feature_embedding(kg: &KnowledgeGraph, entity: EntityId, dim: usize) -> Vec<f32> {
    let e = kg.entity(entity);
    let type_name = &kg.ontology().type_info(e.entity_type).name;
    let text = format!("{} {} {}", e.name, e.description, type_name);
    let toks = tokenize(&text);
    let refs: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
    hash_embed(&refs, dim)
}

/// The annotation service: alias table + compiled automaton + precomputed
/// feature cache (+ optional graph embeddings for coherence).
pub struct AnnotationService {
    aliases: AliasTable,
    main: (PhraseAutomaton, Vec<String>),
    /// Delta automaton for entities added since the last merge.
    delta: Option<(PhraseAutomaton, Vec<String>)>,
    delta_forms: Vec<String>,
    features: EmbeddingCache,
    kge: Option<TrainedModel>,
    cfg: LinkerConfig,
    /// Entity → (type id, type name), for typed annotation (NER output).
    entity_types: HashMap<u64, (TypeId, String)>,
    /// Counts of full automaton (re)builds — freshness experiment E10.
    pub rebuilds: usize,
}

/// A linked mention with its entity's ontology type — the "named and
/// nominal entity recognition" view of an annotation (paper Sec. 3: pages
/// are annotated "including the corresponding entity types").
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TypedMention {
    /// The underlying link.
    pub mention: LinkedMention,
    /// Ontology type of the linked entity.
    pub entity_type: TypeId,
    /// Type name, e.g. `"athlete"`.
    pub type_name: String,
}

impl AnnotationService {
    /// Builds the service from a KG: alias table, automaton, and the
    /// precomputed per-entity feature cache (the paper's low-latency KV
    /// store of entity embeddings).
    pub fn build(kg: &KnowledgeGraph, cfg: LinkerConfig) -> Self {
        let aliases = AliasTable::build(kg);
        let main = aliases.compile();
        let features = EmbeddingCache::new();
        let mut entity_types = HashMap::new();
        for e in kg.entities() {
            features.put(e.id.raw(), entity_feature_embedding(kg, e.id, cfg.feature_dim));
            let tname = kg.ontology().type_info(e.entity_type).name.clone();
            entity_types.insert(e.id.raw(), (e.entity_type, tname));
        }
        Self {
            aliases,
            main,
            delta: None,
            delta_forms: Vec::new(),
            features,
            kge: None,
            cfg,
            entity_types,
            rebuilds: 1,
        }
    }

    /// Attaches a trained graph-embedding model for coherence scoring.
    pub fn with_graph_embeddings(mut self, model: TrainedModel) -> Self {
        self.kge = Some(model);
        self
    }

    /// The linker configuration in effect.
    pub fn config(&self) -> &LinkerConfig {
        &self.cfg
    }

    /// Read access to the feature cache (for stats).
    pub fn feature_cache(&self) -> &EmbeddingCache {
        &self.features
    }

    /// Registers a *new* KG entity with the live service. Its surface forms
    /// become matchable immediately through the delta automaton — no full
    /// rebuild (paper Sec. 3.2: annotations must "surface new and updated
    /// entities from the KG").
    pub fn add_entity(&mut self, kg: &KnowledgeGraph, entity: EntityId) {
        self.aliases.add_entity(kg, entity);
        self.features.put(entity.raw(), entity_feature_embedding(kg, entity, self.cfg.feature_dim));
        let ty = kg.entity(entity).entity_type;
        self.entity_types.insert(entity.raw(), (ty, kg.ontology().type_info(ty).name.clone()));
        let e = kg.entity(entity);
        for form in e.surface_forms() {
            let norm = saga_core::text::normalize_phrase(form);
            if !norm.is_empty() && !self.delta_forms.contains(&norm) {
                self.delta_forms.push(norm);
            }
        }
        // Rebuild only the (small) delta automaton.
        let mut a = PhraseAutomaton::new();
        let mut forms = Vec::with_capacity(self.delta_forms.len());
        for f in &self.delta_forms {
            let toks: Vec<&str> = f.split(' ').collect();
            a.add_pattern(&toks);
            forms.push(f.clone());
        }
        a.build();
        self.delta = Some((a, forms));
    }

    /// Merges the delta into the main automaton (periodic maintenance).
    pub fn merge_delta(&mut self) {
        if self.delta.is_none() {
            return;
        }
        self.main = self.aliases.compile();
        self.delta = None;
        self.delta_forms.clear();
        self.rebuilds += 1;
    }

    /// Detects and links mentions in `text`.
    pub fn annotate(&self, text: &str) -> Vec<LinkedMention> {
        self.annotate_impl(text, &self.cfg)
    }

    /// Annotates with the configured pipeline but an overridden linker
    /// tier — the degradation path when a tier's backing resources (e.g.
    /// the embedding cache behind T2) are unavailable.
    pub fn annotate_with_tier(&self, text: &str, tier: Tier) -> Vec<LinkedMention> {
        if tier == self.cfg.tier {
            return self.annotate(text);
        }
        let cfg = LinkerConfig { tier, ..self.cfg.clone() };
        self.annotate_impl(text, &cfg)
    }

    fn annotate_impl(&self, text: &str, cfg: &LinkerConfig) -> Vec<LinkedMention> {
        let (mut mentions, tokens) =
            detect_mentions(text, &self.main.0, &self.main.1, &self.aliases);
        if let Some((delta_a, delta_forms)) = &self.delta {
            let (extra, _) = detect_mentions(text, delta_a, delta_forms, &self.aliases);
            merge_mentions(&mut mentions, extra);
        }
        link_mentions(&mentions, &tokens, cfg, &self.features, self.kge.as_ref())
    }

    /// Detects, links and *type-tags* mentions — the NER-style output.
    pub fn annotate_typed(&self, text: &str) -> Vec<TypedMention> {
        self.annotate(text)
            .into_iter()
            .filter_map(|m| {
                let (entity_type, type_name) = self.entity_types.get(&m.entity.raw())?.clone();
                Some(TypedMention { mention: m, entity_type, type_name })
            })
            .collect()
    }

    /// Approximate memory footprint of the precomputed feature cache in
    /// bytes (the price axis of the distillation trade-off).
    pub fn feature_cache_bytes(&self) -> usize {
        self.features.stats().entries * (self.cfg.feature_dim * 4 + 16)
    }
}

/// Merges delta-automaton mentions into the main list, preferring longer
/// spans on overlap, keeping start order.
fn merge_mentions(main: &mut Vec<Mention>, extra: Vec<Mention>) {
    for m in extra {
        let overlaps: Vec<usize> = main
            .iter()
            .enumerate()
            .filter(|(_, x)| m.start < x.end && x.start < m.end)
            .map(|(i, _)| i)
            .collect();
        if overlaps.is_empty() {
            main.push(m);
        } else if overlaps.iter().all(|&i| (main[i].end - main[i].start) < (m.end - m.start)) {
            // The new mention is strictly longer than everything it
            // overlaps: replace them.
            for &i in overlaps.iter().rev() {
                main.remove(i);
            }
            main.push(m);
        }
    }
    main.sort_by_key(|m| m.start);
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::linker::Tier;
    use saga_core::synth::{generate, SynthConfig};
    use saga_core::EntityBuilder;

    #[test]
    fn service_annotates_queries() {
        let s = generate(&SynthConfig::tiny(161));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        let links = svc.annotate("Michael Jordan the legendary basketball champion highlights");
        let mj = links.iter().find(|l| l.form == "michael jordan").unwrap();
        assert_eq!(mj.entity, s.scenario.mj_player);
    }

    #[test]
    fn new_entity_is_linkable_without_rebuild() {
        let mut s = generate(&SynthConfig::tiny(161));
        let mut svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T1Popularity));
        assert!(svc.annotate("Zorblatt Quuxington wrote a memoir").is_empty());

        let id = s.kg.add_entity(
            EntityBuilder::new("Zorblatt Quuxington", s.types.person)
                .description("an author")
                .popularity(0.5),
        );
        let rebuilds_before = svc.rebuilds;
        svc.add_entity(&s.kg, id);
        assert_eq!(svc.rebuilds, rebuilds_before, "no full rebuild");
        let links = svc.annotate("Zorblatt Quuxington wrote a memoir");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].entity, id);

        // After merge, still linkable.
        svc.merge_delta();
        assert_eq!(svc.rebuilds, rebuilds_before + 1);
        let links = svc.annotate("Zorblatt Quuxington wrote a memoir");
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].entity, id);
    }

    #[test]
    fn delta_mention_overlapping_main_prefers_longer() {
        let mut s = generate(&SynthConfig::tiny(161));
        let mut svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T1Popularity));
        // Existing: "Michael Jordan". New longer entity: "Michael Jordan Institute".
        let id = s.kg.add_entity(
            EntityBuilder::new("Michael Jordan Institute", s.types.organization)
                .description("a research institute")
                .popularity(0.4),
        );
        svc.add_entity(&s.kg, id);
        let links = svc.annotate("The Michael Jordan Institute opened today");
        let inst = links.iter().find(|l| l.entity == id);
        assert!(inst.is_some(), "longer delta mention wins: {links:?}");
        assert!(
            !links.iter().any(|l| l.form == "michael jordan"),
            "shorter overlapped mention suppressed"
        );
    }

    #[test]
    fn typed_annotation_reports_ontology_types() {
        let s = generate(&SynthConfig::tiny(161));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        let typed = svc.annotate_typed("Michael Jordan the legendary basketball champion");
        let mj = typed.iter().find(|t| t.mention.form == "michael jordan").unwrap();
        assert_eq!(mj.entity_type, s.types.athlete);
        assert_eq!(mj.type_name, "athlete");
    }

    #[test]
    fn distilled_config_shrinks_the_cache() {
        let s = generate(&SynthConfig::tiny(161));
        let full = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        let distilled = AnnotationService::build(&s.kg, LinkerConfig::distilled());
        assert!(distilled.feature_cache_bytes() * 2 < full.feature_cache_bytes());
        // Distilled still disambiguates the flagship homonym.
        let links = distilled.annotate("Michael Jordan the legendary basketball champion");
        let mj = links.iter().find(|l| l.form == "michael jordan").unwrap();
        assert_eq!(mj.entity, s.scenario.mj_player);
    }

    #[test]
    fn feature_embedding_reflects_description() {
        let s = generate(&SynthConfig::tiny(161));
        let a = entity_feature_embedding(&s.kg, s.scenario.mj_player, 96);
        let q = {
            let toks = tokenize("legendary basketball champion");
            let refs: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
            hash_embed(&refs, 96)
        };
        let b = entity_feature_embedding(&s.kg, s.scenario.mj_professor, 96);
        let sim_player = saga_core::text::cosine(&q, &a);
        let sim_prof = saga_core::text::cosine(&q, &b);
        assert!(sim_player > sim_prof);
    }
}
