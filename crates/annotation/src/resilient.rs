//! Fault-tolerant annotation passes: the sharded pipeline of
//! [`crate::pipeline`] hardened against per-document failures and backing-
//! store outages.
//!
//! Failure isolation is per document: a page whose annotation fails
//! permanently (or panics the annotator) is *quarantined* — recorded in
//! the pass report and re-queued for the next incremental pass — instead
//! of killing the worker shard. Fault keys mix the pass number, so a
//! document that drew a permanent fault in pass `N` gets a fresh draw in
//! pass `N + 1` and typically recovers.
//!
//! Tier degradation: a T2 (contextual) deployment depends on the entity
//! feature cache. When the [`SITE_EMBED_CACHE`] probe fails even after
//! retries, the pass degrades to T1 (popularity) rather than failing —
//! the paper's price/performance ladder doubling as an availability
//! ladder — and the report records the fallback.

use crate::linker::{LinkedMention, Tier};
use crate::pipeline::{AnnotatedCorpus, AnnotatedDoc, PipelineStats};
use crate::service::AnnotationService;
use saga_core::fault::{FaultInjector, RetryBudget, RetryPolicy};
use saga_core::obs::{Scope, SpanTimer};
use saga_core::{DocId, Result, SagaError};
use saga_webcorpus::{Corpus, WebPage};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Fault-injection site name for per-document annotation compute.
pub const SITE_ANNOTATE: &str = "annotate";
/// Fault-injection site name for the entity feature cache backing T2.
pub const SITE_EMBED_CACHE: &str = "embedding-cache";

/// Resilience outcome of one annotation pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Linker tier the pass actually ran at.
    pub tier_used: Tier,
    /// Whether `tier_used` is a degradation of the configured tier.
    pub degraded: bool,
    /// Documents whose annotation failed permanently this pass (sorted).
    /// They keep any previous annotation and should be fed back into the
    /// next incremental pass.
    pub quarantined: Vec<DocId>,
    /// Transient retries spent.
    pub retries: u64,
}

impl ResilienceReport {
    /// Record this pass's outcome through an obs scope: counters `retries`,
    /// `quarantined` and `degraded_passes` (all deterministic for a fixed
    /// fault seed, regardless of worker count).
    pub fn record_to(&self, scope: &Scope) {
        scope.counter("retries").add(self.retries);
        scope.counter("quarantined").add(self.quarantined.len() as u64);
        if self.degraded {
            scope.counter("degraded_passes").inc();
        }
    }
}

/// Runs annotation passes over a fallible substrate.
pub struct ResilientAnnotator<'a> {
    service: &'a AnnotationService,
    injector: &'a FaultInjector,
    retry: RetryPolicy,
    budget: RetryBudget,
    pass: u64,
    obs: Option<Scope>,
}

impl<'a> ResilientAnnotator<'a> {
    /// An annotator with the default retry policy and unlimited budget.
    pub fn new(service: &'a AnnotationService, injector: &'a FaultInjector) -> Self {
        Self {
            service,
            injector,
            retry: RetryPolicy::default(),
            budget: RetryBudget::unlimited(),
            pass: 0,
            obs: None,
        }
    }

    /// Records pass metrics into `scope`: whole-pass `pass_ticks` spans, a
    /// `retries_per_doc` histogram (values, not clock deltas — deterministic
    /// under any worker count) and the [`ResilienceReport`] counters.
    pub fn with_obs(mut self, scope: Scope) -> Self {
        self.obs = Some(scope);
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Caps the retry budget. Note: a *shared* finite budget makes
    /// multi-worker passes order-sensitive; keep it unlimited when
    /// cross-worker determinism matters.
    pub fn with_budget(mut self, budget: RetryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the incremental pass number, which is mixed into fault keys:
    /// a document quarantined in pass `N` gets an independent fault draw
    /// when re-annotated in pass `N + 1`.
    pub fn with_pass(mut self, pass: u64) -> Self {
        self.pass = pass;
        self
    }

    /// Probes the feature cache and picks the tier for this pass.
    fn resolve_tier(&self, retries: &mut u64) -> (Tier, bool) {
        let configured = self.service.config().tier;
        if configured != Tier::T2Contextual {
            return (configured, false);
        }
        let mut last_attempt = 0;
        let probe = self.retry.run(self.injector.clock(), &self.budget, self.pass, |attempt| {
            last_attempt = attempt;
            self.injector.check(SITE_EMBED_CACHE, self.pass, attempt)
        });
        *retries += u64::from(last_attempt);
        match probe {
            Ok(()) => (Tier::T2Contextual, false),
            Err(_) => (Tier::T1Popularity, true),
        }
    }

    /// Annotates one page under retry, catching annotator panics so a
    /// pathological document cannot take down its worker shard.
    fn annotate_page(
        &self,
        tier: Tier,
        page: &WebPage,
        retries: &mut u64,
    ) -> Result<Vec<LinkedMention>> {
        let key = page.id.raw() ^ self.pass.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut last_attempt = 0;
        let result = self.retry.run(self.injector.clock(), &self.budget, key, |attempt| {
            last_attempt = attempt;
            self.injector.check(SITE_ANNOTATE, key, attempt)?;
            catch_unwind(AssertUnwindSafe(|| {
                self.service.annotate_with_tier(&page.full_text(), tier)
            }))
            .map_err(|_| SagaError::Corrupt(format!("annotator panicked on doc {}", page.id.raw())))
        });
        *retries += u64::from(last_attempt);
        result
    }

    /// Annotates the whole corpus with `workers` shards, writing successful
    /// annotations into `out`. Per-document failures are isolated to the
    /// document: quarantined ids land in the report, not in a panic.
    pub fn annotate_corpus(
        &self,
        corpus: &Corpus,
        workers: usize,
        out: &mut AnnotatedCorpus,
    ) -> (PipelineStats, ResilienceReport) {
        let start = std::time::Instant::now();
        let pass_span =
            self.obs.as_ref().map(|s| SpanTimer::start(s.histogram("pass_ticks"), s.clock()));
        let retries_per_doc = self.obs.as_ref().map(|s| s.histogram("retries_per_doc"));
        let mut setup_retries = 0u64;
        let (tier, degraded) = self.resolve_tier(&mut setup_retries);

        let workers = workers.max(1);
        let next = AtomicUsize::new(0);
        let total_retries = AtomicU64::new(setup_retries);
        let shards: Vec<parking_lot::Mutex<(Vec<AnnotatedDoc>, Vec<DocId>)>> =
            (0..workers).map(|_| parking_lot::Mutex::new((Vec::new(), Vec::new()))).collect();

        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let next = &next;
                let shards = &shards;
                let total_retries = &total_retries;
                let retries_per_doc = &retries_per_doc;
                s.spawn(move |_| {
                    let mut ok = Vec::new();
                    let mut quarantined = Vec::new();
                    let mut retries = 0u64;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= corpus.pages.len() {
                            break;
                        }
                        let page = &corpus.pages[i];
                        let retries_before = retries;
                        match self.annotate_page(tier, page, &mut retries) {
                            Ok(mentions) => ok.push(AnnotatedDoc {
                                doc: page.id,
                                version: page.last_modified,
                                mentions,
                            }),
                            Err(_) => quarantined.push(page.id),
                        }
                        if let Some(hist) = retries_per_doc {
                            hist.record(retries - retries_before);
                        }
                    }
                    total_retries.fetch_add(retries, Ordering::Relaxed);
                    *shards[w].lock() = (ok, quarantined);
                });
            }
        })
        // Unreachable in practice: per-document panics are caught inside
        // `annotate_page`, so shards only exit cleanly.
        .expect("annotation worker panicked outside the per-doc isolation boundary");

        let mut quarantined = Vec::new();
        let mut docs_processed = 0;
        let mut mentions_found = 0;
        for shard in shards {
            let (ok, bad) = shard.into_inner();
            quarantined.extend(bad);
            for ad in ok {
                docs_processed += 1;
                mentions_found += ad.mentions.len();
                out.docs.insert(ad.doc, ad);
            }
        }
        quarantined.sort_unstable();

        let stats = PipelineStats { docs_processed, mentions_found, elapsed: start.elapsed() };
        let report = ResilienceReport {
            tier_used: tier,
            degraded,
            quarantined,
            retries: total_retries.load(Ordering::Relaxed),
        };
        if let Some(scope) = &self.obs {
            scope.counter("docs_processed").add(stats.docs_processed as u64);
            scope.counter("mentions_found").add(stats.mentions_found as u64);
            report.record_to(scope);
        }
        drop(pass_span);
        (stats, report)
    }

    /// Re-annotates only `changed` documents (e.g. churned pages plus the
    /// previous pass's quarantine list), isolating failures per document.
    pub fn annotate_incremental(
        &self,
        corpus: &Corpus,
        out: &mut AnnotatedCorpus,
        changed: &[DocId],
    ) -> (PipelineStats, ResilienceReport) {
        let start = std::time::Instant::now();
        let pass_span =
            self.obs.as_ref().map(|s| SpanTimer::start(s.histogram("pass_ticks"), s.clock()));
        let retries_per_doc = self.obs.as_ref().map(|s| s.histogram("retries_per_doc"));
        let mut retries = 0u64;
        let (tier, degraded) = self.resolve_tier(&mut retries);

        let mut quarantined = Vec::new();
        let mut docs_processed = 0;
        let mut mentions_found = 0;
        for &doc in changed {
            let page = corpus.page(doc);
            let retries_before = retries;
            match self.annotate_page(tier, page, &mut retries) {
                Ok(mentions) => {
                    docs_processed += 1;
                    mentions_found += mentions.len();
                    out.docs
                        .insert(doc, AnnotatedDoc { doc, version: page.last_modified, mentions });
                }
                Err(_) => quarantined.push(doc),
            }
            if let Some(hist) = &retries_per_doc {
                hist.record(retries - retries_before);
            }
        }
        quarantined.sort_unstable();

        let stats = PipelineStats { docs_processed, mentions_found, elapsed: start.elapsed() };
        let report = ResilienceReport { tier_used: tier, degraded, quarantined, retries };
        if let Some(scope) = &self.obs {
            scope.counter("docs_processed").add(stats.docs_processed as u64);
            scope.counter("mentions_found").add(stats.mentions_found as u64);
            report.record_to(scope);
        }
        drop(pass_span);
        (stats, report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::linker::LinkerConfig;
    use saga_core::fault::{FaultPlan, SiteFaults};
    use saga_core::synth::{generate, SynthConfig};
    use saga_webcorpus::{generate_corpus, CorpusConfig};

    fn setup() -> (saga_core::synth::SynthKg, Corpus, AnnotationService) {
        let s = generate(&SynthConfig::tiny(171));
        let (c, _) = generate_corpus(&s, &[], &CorpusConfig::tiny(11));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        (s, c, svc)
    }

    #[test]
    fn reliable_pass_matches_the_plain_pipeline() {
        let (_, c, svc) = setup();
        let injector = FaultInjector::new(FaultPlan::reliable(1));
        let annotator = ResilientAnnotator::new(&svc, &injector);
        let mut out = AnnotatedCorpus::default();
        let (stats, report) = annotator.annotate_corpus(&c, 4, &mut out);
        let (plain, plain_stats) = crate::pipeline::annotate_corpus(&svc, &c, 4);

        assert_eq!(stats.docs_processed, plain_stats.docs_processed);
        assert_eq!(stats.mentions_found, plain_stats.mentions_found);
        assert_eq!(out.docs.len(), plain.docs.len());
        assert!(report.quarantined.is_empty());
        assert_eq!(report.tier_used, Tier::T2Contextual);
        assert!(!report.degraded);
        assert_eq!(report.retries, 0);
    }

    #[test]
    fn quarantined_docs_recover_on_the_next_pass() {
        let (_, c, svc) = setup();
        // Heavy permanent faults: some documents must fail this pass.
        let injector = FaultInjector::new(
            FaultPlan::reliable(42).with_site(SITE_ANNOTATE, SiteFaults::mixed(0.1, 0.25)),
        );
        let annotator = ResilientAnnotator::new(&svc, &injector);
        let mut out = AnnotatedCorpus::default();
        let (stats, report) = annotator.annotate_corpus(&c, 4, &mut out);
        assert!(!report.quarantined.is_empty(), "25% permanent faults must quarantine docs");
        assert_eq!(stats.docs_processed + report.quarantined.len(), c.len());
        assert_eq!(out.docs.len(), stats.docs_processed);

        // Re-queue the quarantine list on subsequent passes: the fresh
        // fault draws let (at least most of) them through.
        let mut pending = report.quarantined;
        for pass in 1..6 {
            if pending.is_empty() {
                break;
            }
            let annotator = ResilientAnnotator::new(&svc, &injector).with_pass(pass);
            let (_, rep) = annotator.annotate_incremental(&c, &mut out, &pending);
            assert!(rep.quarantined.len() < pending.len(), "each pass must make progress");
            pending = rep.quarantined;
        }
        assert!(pending.is_empty(), "quarantined docs recover across passes");
        assert_eq!(out.docs.len(), c.len());
    }

    #[test]
    fn embedding_cache_outage_degrades_to_t1() {
        let (_, c, svc) = setup();
        let injector = FaultInjector::new(
            FaultPlan::reliable(7).with_site(SITE_EMBED_CACHE, SiteFaults::mixed(0.0, 1.0)),
        );
        let annotator = ResilientAnnotator::new(&svc, &injector);
        let mut out = AnnotatedCorpus::default();
        let (stats, report) = annotator.annotate_corpus(&c, 2, &mut out);
        assert_eq!(report.tier_used, Tier::T1Popularity);
        assert!(report.degraded);
        assert!(report.quarantined.is_empty());
        assert_eq!(stats.docs_processed, c.len());
        // The degraded pass still annotates — T1 keeps the lights on.
        assert!(stats.mentions_found > 0);
    }

    #[test]
    fn faulty_pass_is_deterministic_across_worker_counts() {
        let (_, c, svc) = setup();
        let run = |workers: usize| {
            let injector = FaultInjector::new(
                FaultPlan::reliable(9).with_site(SITE_ANNOTATE, SiteFaults::mixed(0.3, 0.1)),
            );
            let annotator = ResilientAnnotator::new(&svc, &injector);
            let mut out = AnnotatedCorpus::default();
            let (stats, report) = annotator.annotate_corpus(&c, workers, &mut out);
            (stats.docs_processed, stats.mentions_found, report.quarantined, report.retries)
        };
        assert_eq!(run(1), run(4), "fault decisions must not depend on scheduling");
    }

    #[test]
    fn obs_snapshot_bit_identical_across_worker_counts() {
        use saga_core::obs::Registry;
        use std::sync::Arc;
        let (_, c, svc) = setup();
        let run = |workers: usize| {
            let injector = FaultInjector::new(
                FaultPlan::reliable(9).with_site(SITE_ANNOTATE, SiteFaults::mixed(0.3, 0.1)),
            );
            // The registry shares the injector's virtual clock, so even the
            // whole-pass span (total charged latency) is deterministic.
            let registry = Registry::with_clock(Arc::new(injector.clock().clone()));
            let annotator = ResilientAnnotator::new(&svc, &injector)
                .with_obs(registry.scope("annotation").child(SITE_ANNOTATE));
            let mut out = AnnotatedCorpus::default();
            annotator.annotate_corpus(&c, workers, &mut out);
            registry.snapshot()
        };
        let s1 = run(1);
        assert_eq!(s1, run(2), "snapshots must match between 1 and 2 workers");
        assert_eq!(s1, run(8), "snapshots must match between 1 and 8 workers");
        assert!(s1.counter("annotation/annotate/retries") > 0, "workload must exercise retries");
    }
}
