//! Annotation quality evaluation against corpus ground truth — the numbers
//! behind experiment E4's price/performance curve.

use crate::pipeline::AnnotatedCorpus;
use saga_core::{DocId, EntityId};
use saga_webcorpus::CorpusTruth;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision/recall/F1 of entity linking at the document level.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct LinkingQuality {
    /// Precision in `[0,1]`.
    pub precision: f64,
    /// Recall in `[0,1]`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Fraction of profile pages whose title mention resolved to the page's
    /// true topic entity (the homonym-disambiguation metric).
    pub topic_accuracy: f64,
    /// Documents with ground truth that were scored.
    pub docs_evaluated: usize,
}

/// Scores document-level linked-entity sets against the ground truth: a
/// predicted entity is correct if it is genuinely mentioned on the page.
pub fn evaluate_linking(annotated: &AnnotatedCorpus, truth: &CorpusTruth) -> LinkingQuality {
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    let mut topic_hits = 0usize;
    let mut topic_total = 0usize;
    let mut docs = 0usize;

    for (doc, gold) in &truth.mentions {
        let Some(ad) = annotated.docs.get(doc) else { continue };
        docs += 1;
        let predicted: HashSet<EntityId> = ad.mentions.iter().map(|m| m.entity).collect();
        let gold_set: HashSet<EntityId> = gold.iter().copied().collect();
        tp += predicted.intersection(&gold_set).count();
        fp += predicted.difference(&gold_set).count();
        fn_ += gold_set.difference(&predicted).count();

        if let Some(topic) = truth.page_topics.get(doc) {
            topic_total += 1;
            if topic_mention_resolved(ad, *doc, *topic) {
                topic_hits += 1;
            }
        }
    }

    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    let topic_accuracy =
        if topic_total == 0 { 0.0 } else { topic_hits as f64 / topic_total as f64 };
    LinkingQuality { precision, recall, f1, topic_accuracy, docs_evaluated: docs }
}

/// True if any mention at the very start of the document (the title) links
/// to the topic entity.
fn topic_mention_resolved(
    ad: &crate::pipeline::AnnotatedDoc,
    _doc: DocId,
    topic: EntityId,
) -> bool {
    // The title is rendered first, so the earliest mention covers it.
    ad.mentions.iter().take(2).any(|m| m.entity == topic)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::linker::{LinkerConfig, Tier};
    use crate::pipeline::annotate_corpus;
    use crate::service::AnnotationService;
    use saga_core::synth::{generate, SynthConfig};
    use saga_webcorpus::{generate_corpus, CorpusConfig};

    fn quality_at(tier: Tier) -> LinkingQuality {
        let s = generate(&SynthConfig::tiny(181));
        let (c, t) = generate_corpus(&s, &[], &CorpusConfig::tiny(13));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(tier));
        let (annotated, _) = annotate_corpus(&svc, &c, 2);
        evaluate_linking(&annotated, &t)
    }

    #[test]
    fn contextual_tier_beats_lexical_on_topic_accuracy() {
        let t0 = quality_at(Tier::T0Lexical);
        let t2 = quality_at(Tier::T2Contextual);
        assert!(
            t2.topic_accuracy >= t0.topic_accuracy,
            "T2 {} vs T0 {}",
            t2.topic_accuracy,
            t0.topic_accuracy
        );
        assert!(t2.topic_accuracy > 0.8, "T2 topic accuracy {}", t2.topic_accuracy);
    }

    #[test]
    fn linking_quality_is_reasonable() {
        let q = quality_at(Tier::T2Contextual);
        assert!(q.docs_evaluated > 100);
        assert!(q.precision > 0.6, "precision {}", q.precision);
        assert!(q.recall > 0.5, "recall {}", q.recall);
        assert!(q.f1 > 0.55, "f1 {}", q.f1);
    }
}
