//! The alias table: normalized surface forms → candidate entities, with
//! lexical priors. Compiled into the phrase automaton for mention detection.

use crate::automaton::{PatternId, PhraseAutomaton};
use saga_core::text::normalize_phrase;
use saga_core::{EntityId, KnowledgeGraph};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One candidate entity for a surface form.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// The entity concerned.
    pub entity: EntityId,
    /// 1.0 when the form is the entity's canonical name, lower for aliases.
    pub name_prior: f32,
    /// Entity popularity at table-build time.
    pub popularity: f32,
}

/// Surface-form dictionary built from the KG's entity names and aliases.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AliasTable {
    /// normalized form → candidates.
    forms: HashMap<String, Vec<Candidate>>,
}

impl AliasTable {
    /// Builds the table from every entity's surface forms. Single-token
    /// forms that are extremely common (stopwords) should be avoided by the
    /// KG's alias curation; we keep everything and let scoring handle noise.
    pub fn build(kg: &KnowledgeGraph) -> Self {
        let mut forms: HashMap<String, Vec<Candidate>> = HashMap::new();
        for e in kg.entities() {
            let canon = normalize_phrase(&e.name);
            if !canon.is_empty() {
                forms.entry(canon).or_default().push(Candidate {
                    entity: e.id,
                    name_prior: 1.0,
                    popularity: e.popularity,
                });
            }
            for alias in &e.aliases {
                let norm = normalize_phrase(alias);
                if norm.is_empty() {
                    continue;
                }
                let list = forms.entry(norm).or_default();
                if !list.iter().any(|c| c.entity == e.id) {
                    list.push(Candidate {
                        entity: e.id,
                        name_prior: 0.7,
                        popularity: e.popularity,
                    });
                }
            }
        }
        Self { forms }
    }

    /// Adds one entity's forms incrementally (for the dynamic index).
    pub fn add_entity(&mut self, kg: &KnowledgeGraph, entity: EntityId) {
        let e = kg.entity(entity);
        let canon = normalize_phrase(&e.name);
        if !canon.is_empty() {
            let list = self.forms.entry(canon).or_default();
            if !list.iter().any(|c| c.entity == e.id) {
                list.push(Candidate { entity: e.id, name_prior: 1.0, popularity: e.popularity });
            }
        }
        for alias in &e.aliases {
            let norm = normalize_phrase(alias);
            if norm.is_empty() {
                continue;
            }
            let list = self.forms.entry(norm).or_default();
            if !list.iter().any(|c| c.entity == e.id) {
                list.push(Candidate { entity: e.id, name_prior: 0.7, popularity: e.popularity });
            }
        }
    }

    /// Candidates for a normalized form.
    pub fn candidates(&self, form: &str) -> &[Candidate] {
        self.forms.get(form).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct forms.
    pub fn len(&self) -> usize {
        self.forms.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.forms.is_empty()
    }

    /// Compiles the table into an automaton; returns the automaton and the
    /// pattern→form mapping.
    pub fn compile(&self) -> (PhraseAutomaton, Vec<String>) {
        let mut automaton = PhraseAutomaton::new();
        let mut forms: Vec<String> = self.forms.keys().cloned().collect();
        forms.sort(); // deterministic pattern ids
        let mut pattern_forms = Vec::with_capacity(forms.len());
        for form in forms {
            let tokens: Vec<&str> = form.split(' ').collect();
            let pid: PatternId = automaton.add_pattern(&tokens);
            debug_assert_eq!(pid as usize, pattern_forms.len());
            pattern_forms.push(form);
        }
        automaton.build();
        (automaton, pattern_forms)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn table_contains_names_and_aliases() {
        let s = generate(&SynthConfig::tiny(131));
        let t = AliasTable::build(&s.kg);
        let mj = t.candidates("michael jordan");
        assert_eq!(mj.len(), 2, "both Michael Jordans are candidates");
        assert!(mj.iter().all(|c| c.name_prior == 1.0));
        let alias = t.candidates("air jordan");
        assert_eq!(alias.len(), 1);
        assert_eq!(alias[0].entity, s.scenario.mj_player);
        assert!(alias[0].name_prior < 1.0);
    }

    #[test]
    fn unknown_form_has_no_candidates() {
        let s = generate(&SynthConfig::tiny(131));
        let t = AliasTable::build(&s.kg);
        assert!(t.candidates("unobtainium mcguffin").is_empty());
    }

    #[test]
    fn compile_round_trips_forms() {
        let s = generate(&SynthConfig::tiny(131));
        let t = AliasTable::build(&s.kg);
        let (a, forms) = t.compile();
        assert_eq!(a.num_patterns(), t.len());
        assert_eq!(forms.len(), t.len());
        // Every compiled pattern's form has candidates.
        for f in forms.iter().take(50) {
            assert!(!t.candidates(f).is_empty());
        }
    }

    #[test]
    fn add_entity_is_idempotent() {
        let s = generate(&SynthConfig::tiny(131));
        let mut t = AliasTable::build(&s.kg);
        let before = t.candidates("michael jordan").len();
        t.add_entity(&s.kg, s.scenario.mj_player);
        assert_eq!(t.candidates("michael jordan").len(), before);
    }
}
