//! # saga-annotation
//!
//! The semantic annotation service of paper Sec. 3: mention detection via a
//! from-scratch token-level Aho-Corasick automaton, candidate generation
//! from the KG alias table, entity linking with tiered scoring (lexical →
//! popularity → contextual reranking against precomputed entity
//! embeddings), the web-scale incremental annotation pipeline of Fig. 4,
//! and quality evaluation against corpus ground truth.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod alias;
pub mod automaton;
pub mod eval;
pub mod linker;
pub mod mention;
pub mod pipeline;
pub mod resilient;
pub mod service;

pub use alias::{AliasTable, Candidate};
pub use automaton::{leftmost_longest, PhraseAutomaton, PhraseMatch};
pub use eval::{evaluate_linking, LinkingQuality};
pub use linker::{link_mentions, LinkedMention, LinkerConfig, Tier};
pub use mention::{detect_mentions, Mention};
pub use pipeline::{
    annotate_corpus, annotate_corpus_obs, annotate_delta_obs, annotate_incremental,
    annotate_incremental_obs, extend_kg_with_links, sync_kg_links, AnnotatedCorpus, AnnotatedDoc,
    PipelineStats,
};
pub use resilient::{ResilienceReport, ResilientAnnotator, SITE_ANNOTATE, SITE_EMBED_CACHE};
pub use service::{entity_feature_embedding, AnnotationService, TypedMention};
