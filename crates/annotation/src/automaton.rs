//! Token-level Aho-Corasick automaton for multi-phrase matching.
//!
//! Mention detection must scan billions of pages (paper Sec. 3.1), so the
//! alias dictionary is compiled once into an automaton and each document is
//! matched in a single pass over its tokens. We match on *token sequences*
//! (not characters): aliases are normalized token lists, which makes
//! matching robust to case, punctuation and diacritics for free.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a pattern (an alias phrase) in the automaton.
pub type PatternId = u32;

/// A match: tokens `[start_tok, end_tok)` matched pattern `pattern`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhraseMatch {
    /// Matched pattern id.
    pub pattern: PatternId,
    /// First token index of the match.
    pub start_tok: usize,
    /// Exclusive end token index.
    pub end_tok: usize,
}

#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Node {
    /// Transitions on token symbols.
    next: HashMap<u32, u32>,
    /// Failure link.
    fail: u32,
    /// Patterns ending at this node.
    output: Vec<PatternId>,
    /// Depth = number of tokens consumed to reach this node.
    depth: u32,
}

/// The compiled automaton. Token strings are interned to symbols; unknown
/// tokens can never match and short-circuit to the root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhraseAutomaton {
    nodes: Vec<Node>,
    vocab: HashMap<String, u32>,
    /// Length (in tokens) of each pattern.
    pattern_len: Vec<u32>,
    built: bool,
}

impl Default for PhraseAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl PhraseAutomaton {
    /// Creates an empty automaton.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node::default()],
            vocab: HashMap::new(),
            pattern_len: Vec::new(),
            built: false,
        }
    }

    /// Number of patterns added.
    pub fn num_patterns(&self) -> usize {
        self.pattern_len.len()
    }

    /// Adds a pattern (a normalized token sequence), returning its id.
    /// Must be called before [`build`](Self::build).
    ///
    /// # Panics
    /// Panics if called after `build`, or with an empty pattern.
    pub fn add_pattern(&mut self, tokens: &[&str]) -> PatternId {
        assert!(!self.built, "cannot add patterns after build()");
        assert!(!tokens.is_empty(), "empty pattern");
        let id = self.pattern_len.len() as PatternId;
        self.pattern_len.push(tokens.len() as u32);
        let mut cur = 0u32;
        for tok in tokens {
            let next_vocab = self.vocab.len() as u32;
            let sym = *self.vocab.entry((*tok).to_owned()).or_insert(next_vocab);
            let depth = self.nodes[cur as usize].depth + 1;
            cur = match self.nodes[cur as usize].next.get(&sym) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len() as u32;
                    self.nodes.push(Node { depth, ..Node::default() });
                    self.nodes[cur as usize].next.insert(sym, n);
                    n
                }
            };
        }
        self.nodes[cur as usize].output.push(id);
        id
    }

    /// Compiles failure links (BFS). Idempotent.
    pub fn build(&mut self) {
        if self.built {
            return;
        }
        let mut queue = std::collections::VecDeque::new();
        let root_children: Vec<(u32, u32)> =
            self.nodes[0].next.iter().map(|(&s, &n)| (s, n)).collect();
        for (_, n) in &root_children {
            self.nodes[*n as usize].fail = 0;
            queue.push_back(*n);
        }
        while let Some(u) = queue.pop_front() {
            let transitions: Vec<(u32, u32)> =
                self.nodes[u as usize].next.iter().map(|(&s, &n)| (s, n)).collect();
            for (sym, v) in transitions {
                // Find the failure target for v.
                let mut f = self.nodes[u as usize].fail;
                let fail_v = loop {
                    if let Some(&w) = self.nodes[f as usize].next.get(&sym) {
                        if w != v {
                            break w;
                        }
                    }
                    if f == 0 {
                        break 0;
                    }
                    f = self.nodes[f as usize].fail;
                };
                self.nodes[v as usize].fail = fail_v;
                let inherited = self.nodes[fail_v as usize].output.clone();
                self.nodes[v as usize].output.extend(inherited);
                queue.push_back(v);
            }
        }
        self.built = true;
    }

    /// Scans a token sequence, returning every pattern occurrence.
    ///
    /// # Panics
    /// Panics (debug) if called before `build`.
    pub fn scan(&self, tokens: &[&str]) -> Vec<PhraseMatch> {
        debug_assert!(self.built, "scan before build()");
        let mut out = Vec::new();
        let mut state = 0u32;
        for (i, tok) in tokens.iter().enumerate() {
            let sym = match self.vocab.get(*tok) {
                Some(&s) => s,
                None => {
                    state = 0;
                    continue;
                }
            };
            loop {
                if let Some(&n) = self.nodes[state as usize].next.get(&sym) {
                    state = n;
                    break;
                }
                if state == 0 {
                    break;
                }
                state = self.nodes[state as usize].fail;
            }
            for &pat in &self.nodes[state as usize].output {
                let len = self.pattern_len[pat as usize] as usize;
                out.push(PhraseMatch { pattern: pat, start_tok: i + 1 - len, end_tok: i + 1 });
            }
        }
        out
    }
}

/// Keeps only the leftmost-longest non-overlapping matches (standard
/// mention-detection policy; prefers "Michael Jordan" over "Michael" +
/// "Jordan").
pub fn leftmost_longest(mut matches: Vec<PhraseMatch>) -> Vec<PhraseMatch> {
    matches.sort_by_key(|m| (m.start_tok, std::cmp::Reverse(m.end_tok)));
    let mut out: Vec<PhraseMatch> = Vec::new();
    for m in matches {
        match out.last() {
            Some(prev) if m.start_tok < prev.end_tok => {
                // Overlaps the chosen match; skip unless it extends further
                // from the same start (already ordered longest-first).
            }
            _ => out.push(m),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn build(patterns: &[&[&str]]) -> PhraseAutomaton {
        let mut a = PhraseAutomaton::new();
        for p in patterns {
            a.add_pattern(p);
        }
        a.build();
        a
    }

    #[test]
    fn single_token_patterns() {
        let a = build(&[&["jordan"], &["chicago"]]);
        let ms = a.scan(&["michael", "jordan", "of", "chicago"]);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0], PhraseMatch { pattern: 0, start_tok: 1, end_tok: 2 });
        assert_eq!(ms[1], PhraseMatch { pattern: 1, start_tok: 3, end_tok: 4 });
    }

    #[test]
    fn multi_token_and_nested_patterns() {
        let a = build(&[&["michael", "jordan"], &["jordan"], &["michael", "jordan", "stats"]]);
        let ms = a.scan(&["michael", "jordan", "stats"]);
        // "michael jordan" at [0,2), "jordan" at [1,2), "michael jordan stats" at [0,3)
        assert!(ms.contains(&PhraseMatch { pattern: 0, start_tok: 0, end_tok: 2 }));
        assert!(ms.contains(&PhraseMatch { pattern: 1, start_tok: 1, end_tok: 2 }));
        assert!(ms.contains(&PhraseMatch { pattern: 2, start_tok: 0, end_tok: 3 }));
    }

    #[test]
    fn failure_links_cross_pattern_boundaries() {
        // After reading "a b", seeing "b c" should still match pattern "b c".
        let a = build(&[&["a", "b"], &["b", "c"]]);
        let ms = a.scan(&["a", "b", "c"]);
        assert!(ms.contains(&PhraseMatch { pattern: 0, start_tok: 0, end_tok: 2 }));
        assert!(ms.contains(&PhraseMatch { pattern: 1, start_tok: 1, end_tok: 3 }));
    }

    #[test]
    fn unknown_tokens_reset_state() {
        let a = build(&[&["new", "york", "city"]]);
        let ms = a.scan(&["new", "york", "zebra", "city"]);
        assert!(ms.is_empty());
        let ms = a.scan(&["visit", "new", "york", "city", "today"]);
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].start_tok, 1);
    }

    #[test]
    fn leftmost_longest_policy() {
        let a = build(&[&["michael"], &["michael", "jordan"], &["jordan"]]);
        let ms = leftmost_longest(a.scan(&["michael", "jordan", "rules"]));
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].end_tok - ms[0].start_tok, 2, "longest match wins");
        assert_eq!(ms[0].pattern, 1);
    }

    #[test]
    fn repeated_occurrences_all_found() {
        let a = build(&[&["tim"]]);
        let ms = a.scan(&["tim", "called", "tim", "about", "tim"]);
        assert_eq!(ms.len(), 3);
    }

    #[test]
    fn scan_against_naive_reference() {
        // Property-style check on a fixed corpus: automaton ≡ naive search.
        let patterns: Vec<Vec<&str>> =
            vec![vec!["a"], vec!["a", "b"], vec!["b", "a"], vec!["a", "b", "a"], vec!["c"]];
        let mut a = PhraseAutomaton::new();
        for p in &patterns {
            a.add_pattern(p);
        }
        a.build();
        let text: Vec<&str> = "a b a b a c a b c b a".split(' ').collect();
        let mut expected = Vec::new();
        for (pid, p) in patterns.iter().enumerate() {
            for start in 0..text.len() {
                if start + p.len() <= text.len() && &text[start..start + p.len()] == p.as_slice() {
                    expected.push(PhraseMatch {
                        pattern: pid as u32,
                        start_tok: start,
                        end_tok: start + p.len(),
                    });
                }
            }
        }
        let mut got = a.scan(&text);
        let key = |m: &PhraseMatch| (m.start_tok, m.end_tok, m.pattern);
        got.sort_by_key(key);
        expected.sort_by_key(key);
        assert_eq!(got, expected);
    }
}
