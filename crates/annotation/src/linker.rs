//! Entity linking: scoring mention candidates with lexical, popularity and
//! contextual signals.
//!
//! The tiers implement the paper's price/performance knob (Sec. 3.2): T0 is
//! the cheapest lexical-only deployment, T1 adds the popularity prior, T2
//! adds contextual reranking against precomputed entity embeddings (the
//! "Michael Jordan stats" vs "Michael Jordan students" disambiguation of
//! Fig. 2), and graph-embedding coherence with co-mentioned entities.

use crate::mention::Mention;
use saga_ann::EmbeddingCache;
use saga_core::kernels;
use saga_core::text::{hash_embed, Token};
use saga_core::EntityId;
use saga_embeddings::TrainedModel;
use serde::{Deserialize, Serialize};

/// Deployment tier of the linker (cheap → expensive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Tier {
    /// Lexical match only.
    T0Lexical,
    /// + popularity prior.
    T1Popularity,
    /// + contextual reranking (cached text-feature embeddings) and optional
    /// graph-embedding coherence.
    T2Contextual,
}

/// Linker configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkerConfig {
    /// Deployment tier.
    pub tier: Tier,
    /// Tokens of context on each side of a mention.
    pub context_window: usize,
    /// Feature-embedding dimension (must match the cache contents).
    pub feature_dim: usize,
    /// Minimum score for a link to be emitted.
    pub min_score: f32,
    /// Weight of the lexical name-match feature.
    pub w_name: f32,
    /// Weight of the popularity prior.
    pub w_popularity: f32,
    /// Weight of the context-embedding similarity.
    pub w_context: f32,
    /// Weight of the graph-coherence feature.
    pub w_coherence: f32,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        Self {
            tier: Tier::T2Contextual,
            context_window: 12,
            feature_dim: 96,
            min_score: 0.2,
            w_name: 1.0,
            w_popularity: 0.4,
            w_context: 1.2,
            w_coherence: 0.6,
        }
    }
}

impl LinkerConfig {
    /// Config for a given tier with default weights.
    pub fn tier(tier: Tier) -> Self {
        Self { tier, ..Self::default() }
    }

    /// A distilled T2 deployment: contextual reranking with a compressed
    /// feature space (paper Sec. 3.2: "model distillation and compression
    /// techniques that can target different hardware ... to meet different
    /// price/performance SLAs"). Smaller cache, cheaper query embedding,
    /// slightly lower quality.
    pub fn distilled() -> Self {
        Self { tier: Tier::T2Contextual, feature_dim: 32, ..Self::default() }
    }
}

/// A resolved mention.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkedMention {
    /// Byte offset of the span start.
    pub start: usize,
    /// Byte offset one past the span end.
    pub end: usize,
    /// Normalized surface form.
    pub form: String,
    /// The entity concerned.
    pub entity: EntityId,
    /// Score; higher is better.
    pub score: f32,
    /// Runner-up candidates `(entity, score)`, best first.
    pub alternatives: Vec<(EntityId, f32)>,
}

/// Builds the context embedding for a mention: the hashed bag of window
/// tokens around (but not inside) the mention span.
pub fn context_embedding(
    tokens: &[Token],
    mention: &Mention,
    window: usize,
    dim: usize,
) -> Vec<f32> {
    let lo = mention.start_tok.saturating_sub(window);
    let hi = (mention.end_tok + window).min(tokens.len());
    let ctx: Vec<&str> = tokens[lo..mention.start_tok]
        .iter()
        .chain(&tokens[mention.end_tok..hi])
        .map(|t| t.text.as_str())
        .collect();
    hash_embed(&ctx, dim)
}

/// Links the mentions of one document.
///
/// `features` must hold each candidate entity's precomputed text-feature
/// embedding (see [`crate::service::AnnotationService::build`]). `kge` adds
/// graph-coherence scoring at T2 when provided.
pub fn link_mentions(
    mentions: &[Mention],
    tokens: &[Token],
    cfg: &LinkerConfig,
    features: &EmbeddingCache,
    kge: Option<&TrainedModel>,
) -> Vec<LinkedMention> {
    // First pass: anchor entities = top-popularity candidate of every
    // unambiguous mention (used for coherence scoring).
    let anchors: Vec<EntityId> = mentions
        .iter()
        .filter(|m| m.candidates.len() == 1)
        .map(|m| m.candidates[0].entity)
        .collect();

    let mut out = Vec::new();
    for m in mentions {
        if m.candidates.is_empty() {
            continue;
        }
        // The mention's context embedding is scored against every
        // candidate's cached feature embedding, so its norm is computed
        // once and each candidate is scored in place against the cache
        // entry (no per-candidate clone).
        let ctx = if cfg.tier >= Tier::T2Contextual {
            let emb = context_embedding(tokens, m, cfg.context_window, cfg.feature_dim);
            let norm = kernels::l2_norm(&emb);
            Some((emb, norm))
        } else {
            None
        };
        let mut scored: Vec<(EntityId, f32)> = m
            .candidates
            .iter()
            .map(|c| {
                let mut score = cfg.w_name * c.name_prior;
                if cfg.tier >= Tier::T1Popularity {
                    score += cfg.w_popularity * c.popularity;
                }
                if let Some((ctx, ctx_norm)) = &ctx {
                    if let Some(sim) = features
                        .with(c.entity.raw(), |feat| kernels::cosine_qnorm(ctx, *ctx_norm, feat))
                    {
                        score += cfg.w_context * sim.max(0.0);
                    }
                    if let Some(model) = kge {
                        score += cfg.w_coherence * coherence(model, c.entity, &anchors);
                    }
                }
                (c.entity, score)
            })
            .collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let (entity, score) = scored[0];
        if score < cfg.min_score {
            continue;
        }
        out.push(LinkedMention {
            start: m.start,
            end: m.end,
            form: m.form.clone(),
            entity,
            score,
            alternatives: scored[1..].to_vec(),
        });
    }
    out
}

/// Mean cosine similarity between `entity`'s graph embedding and the
/// anchors' embeddings (0 when unavailable).
fn coherence(model: &TrainedModel, entity: EntityId, anchors: &[EntityId]) -> f32 {
    let Some(e) = model.entity_embedding(entity) else { return 0.0 };
    let e_norm = kernels::l2_norm(e);
    let mut sum = 0.0f32;
    let mut n = 0usize;
    for &a in anchors {
        if a == entity {
            continue;
        }
        if let Some(av) = model.entity_embedding(a) {
            sum += kernels::cosine_qnorm(e, e_norm, av).max(0.0);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f32
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::alias::AliasTable;
    use crate::mention::detect_mentions;
    use crate::service::entity_feature_embedding;
    use saga_core::synth::{generate, SynthConfig};

    fn features_for(kg: &saga_core::KnowledgeGraph, dim: usize) -> EmbeddingCache {
        let cache = EmbeddingCache::new();
        for e in kg.entities() {
            cache.put(e.id.raw(), entity_feature_embedding(kg, e.id, dim));
        }
        cache
    }

    #[test]
    fn t2_contextual_disambiguates_michael_jordan() {
        let s = generate(&SynthConfig::tiny(151));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let cfg = LinkerConfig::tier(Tier::T2Contextual);
        let features = features_for(&s.kg, cfg.feature_dim);

        let basketball = "Michael Jordan the basketball player won another championship ring.";
        let (m1, t1) = detect_mentions(basketball, &a, &forms, &table);
        let l1 = link_mentions(&m1, &t1, &cfg, &features, None);
        let link1 = l1.iter().find(|l| l.form == "michael jordan").unwrap();
        assert_eq!(link1.entity, s.scenario.mj_player, "basketball context → player");

        let academia = "Michael Jordan published new machine learning and statistics research with his professor colleagues.";
        let (m2, t2) = detect_mentions(academia, &a, &forms, &table);
        let l2 = link_mentions(&m2, &t2, &cfg, &features, None);
        let link2 = l2.iter().find(|l| l.form == "michael jordan").unwrap();
        assert_eq!(link2.entity, s.scenario.mj_professor, "academic context → professor");
    }

    #[test]
    fn t1_always_picks_popularity() {
        let s = generate(&SynthConfig::tiny(151));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let cfg = LinkerConfig::tier(Tier::T1Popularity);
        let features = EmbeddingCache::new();
        // Even in academic context, T1 picks the (more popular) player.
        let academia = "Michael Jordan published machine learning research.";
        let (m, t) = detect_mentions(academia, &a, &forms, &table);
        let l = link_mentions(&m, &t, &cfg, &features, None);
        let link = l.iter().find(|l| l.form == "michael jordan").unwrap();
        assert_eq!(link.entity, s.scenario.mj_player);
        assert!(!link.alternatives.is_empty());
    }

    #[test]
    fn min_score_suppresses_weak_links() {
        let s = generate(&SynthConfig::tiny(151));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let mut cfg = LinkerConfig::tier(Tier::T0Lexical);
        cfg.min_score = 100.0;
        let features = EmbeddingCache::new();
        let (m, t) = detect_mentions("Michael Jordan plays.", &a, &forms, &table);
        assert!(link_mentions(&m, &t, &cfg, &features, None).is_empty());
    }

    #[test]
    fn context_embedding_excludes_mention_tokens() {
        let s = generate(&SynthConfig::tiny(151));
        let table = AliasTable::build(&s.kg);
        let (a, forms) = table.compile();
        let (m, toks) =
            detect_mentions("alpha beta Michael Jordan gamma delta", &a, &forms, &table);
        let mention = m.iter().find(|x| x.form == "michael jordan").unwrap();
        let ctx = context_embedding(&toks, mention, 10, 64);
        let expected = saga_core::text::hash_embed(&["alpha", "beta", "gamma", "delta"], 64);
        for (x, y) in ctx.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}
