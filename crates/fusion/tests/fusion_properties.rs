//! Property tests for the fusion engine: batch-split invariance and
//! resolution sanity under arbitrary stream partitions.

use proptest::prelude::*;
use saga_core::synth::{generate, standard_ontology, SynthConfig};
use saga_fusion::{generate_feeds, FeedConfig, FusionConfig, FusionEngine};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For any way of splitting the record stream into batches, the engine
    /// converges to the same canonical graph and resolutions as a one-shot
    /// ingest.
    #[test]
    fn batch_split_invariance(seed in 0u64..200, splits in proptest::collection::vec(1usize..80, 1..6)) {
        let s = generate(&SynthConfig::tiny(seed));
        let data = generate_feeds(&s, &FeedConfig { seed: seed ^ 1, people_per_feed: 40, corruption_rate: 0.1 });

        let (ontology, _, _) = standard_ontology(0);
        let mut one_shot = FusionEngine::new(ontology, &data.trust, FusionConfig::default());
        one_shot.ingest(&data.records);

        let (ontology2, _, _) = standard_ontology(0);
        let mut batched = FusionEngine::new(ontology2, &data.trust, FusionConfig::default());
        let mut cursor = 0usize;
        let mut split_iter = splits.iter().cycle();
        while cursor < data.records.len() {
            let n = (*split_iter.next().unwrap()).min(data.records.len() - cursor);
            batched.ingest(&data.records[cursor..cursor + n]);
            cursor += n;
        }

        prop_assert_eq!(batched.kg().num_entities(), one_shot.kg().num_entities());
        for r in &data.records {
            prop_assert_eq!(
                batched.resolution(&r.source, &r.external_id),
                one_shot.resolution(&r.source, &r.external_id)
            );
        }
        // Canonical fact sets agree.
        prop_assert_eq!(batched.kg().num_triples(), one_shot.kg().num_triples());
    }

    /// Every record resolves to *some* canonical entity, and records with
    /// identical (name, type) resolve identically.
    #[test]
    fn resolution_totality_and_consistency(seed in 0u64..200) {
        let s = generate(&SynthConfig::tiny(seed));
        let data = generate_feeds(&s, &FeedConfig { seed: seed ^ 2, people_per_feed: 30, corruption_rate: 0.0 });
        let (ontology, _, _) = standard_ontology(0);
        let mut engine = FusionEngine::new(ontology, &data.trust, FusionConfig::default());
        engine.ingest(&data.records);
        for r in &data.records {
            prop_assert!(engine.resolution(&r.source, &r.external_id).is_some());
        }
        // Records of the SAME true entity with an identical and globally
        // UNAMBIGUOUS surface name must co-resolve. (The KG plants homonyms
        // — same name, sometimes same type — whose records are inherently
        // ambiguous to a streaming matcher; those may legitimately split or
        // cross-link, which the E12 precision metric quantifies instead.)
        let mut owners_of_name: std::collections::HashMap<&str, std::collections::HashSet<_>> =
            Default::default();
        for r in &data.records {
            owners_of_name
                .entry(r.name.as_str())
                .or_default()
                .insert(data.owner[&(r.source.clone(), r.external_id.clone())]);
        }
        for a in &data.records {
            for b in &data.records {
                let owner_a = data.owner[&(a.source.clone(), a.external_id.clone())];
                let owner_b = data.owner[&(b.source.clone(), b.external_id.clone())];
                if owner_a == owner_b
                    && a.name == b.name
                    && a.type_name == b.type_name
                    && owners_of_name[a.name.as_str()].len() == 1
                {
                    prop_assert_eq!(
                        engine.resolution(&a.source, &a.external_id),
                        engine.resolution(&b.source, &b.external_id),
                        "same-entity records resolved apart: {} vs {}", a.external_id, b.external_id
                    );
                }
            }
        }
    }
}
