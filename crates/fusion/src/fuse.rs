//! Blocking, matching, clustering, and conflict-resolving fusion of source
//! records into a canonical knowledge graph — the server-side continuous
//! construction this paper's platform extends.

use crate::source::{FeedTrust, SourceEntity};
use saga_core::text::{jaccard, normalize_phrase};
use saga_core::{Cardinality, EntityBuilder, EntityId, KnowledgeGraph, Ontology, Triple, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Fusion parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusionConfig {
    /// Minimum pair score to merge two records.
    pub match_threshold: f32,
    /// Blocks larger than this are skipped.
    pub max_block_size: usize,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self { match_threshold: 0.7, max_block_size: 64 }
    }
}

/// The canonical store under continuous construction.
pub struct FusionEngine {
    kg: KnowledgeGraph,
    cfg: FusionConfig,
    trust: HashMap<String, f32>,
    /// Blocking key → canonical entities carrying it.
    block_index: HashMap<String, Vec<EntityId>>,
    /// `(source, external_id)` → canonical entity (provenance map).
    resolved: HashMap<(String, String), EntityId>,
    /// Per (entity, predicate-name, canonical value): accumulated evidence.
    evidence: HashMap<(EntityId, String, String), ValueEvidence>,
}

/// Evidence accumulated for one candidate value.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ValueEvidence {
    /// Sum of trust of supporting feeds.
    pub trust_sum: f32,
    /// Supporting records.
    pub support: usize,
    /// A representative parsed value.
    pub value: Option<Value>,
}

/// Statistics of one ingest batch.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct IngestStats {
    /// Records processed in the batch.
    pub records: usize,
    /// Records that created a new canonical entity.
    pub new_entities: usize,
    /// Records merged into an existing canonical entity.
    pub merged_into_existing: usize,
    /// Candidate pairs scored during blocking.
    pub pairs_scored: usize,
}

impl IngestStats {
    /// Record this batch through an obs scope (call once per batch —
    /// counters add): one counter per field.
    pub fn record_to(&self, scope: &saga_core::obs::Scope) {
        scope.counter("records").add(self.records as u64);
        scope.counter("new_entities").add(self.new_entities as u64);
        scope.counter("merged_into_existing").add(self.merged_into_existing as u64);
        scope.counter("pairs_scored").add(self.pairs_scored as u64);
    }
}

/// Blocking keys of a record: normalized full name + (last token, type).
fn block_keys(r: &SourceEntity) -> Vec<String> {
    let norm = normalize_phrase(&r.name);
    let mut keys = vec![format!("name:{norm}")];
    if let Some(last) = norm.split(' ').next_back() {
        keys.push(format!("last+type:{last}|{}", r.type_name));
    }
    keys
}

/// Name compatibility tolerant of initials: `"m jordan"` matches
/// `"michael jordan"`.
fn names_compatible(a: &str, b: &str) -> f32 {
    let na = normalize_phrase(a);
    let nb = normalize_phrase(b);
    if na == nb {
        return 1.0;
    }
    let ta: Vec<&str> = na.split(' ').collect();
    let tb: Vec<&str> = nb.split(' ').collect();
    // Same surname + compatible first token (prefix match covers initials).
    if ta.last() == tb.last() {
        if let (Some(fa), Some(fb)) = (ta.first(), tb.first()) {
            if fa.starts_with(fb) || fb.starts_with(fa) {
                return 0.85;
            }
        }
    }
    jaccard(&na, &nb)
}

impl FusionEngine {
    /// Creates an engine over an ontology (the unified schema) with feed
    /// trust priors.
    pub fn new(ontology: Ontology, trust: &[FeedTrust], cfg: FusionConfig) -> Self {
        Self {
            kg: KnowledgeGraph::new(ontology),
            cfg,
            trust: trust.iter().map(|t| (t.source.clone(), t.trust)).collect(),
            block_index: HashMap::new(),
            resolved: HashMap::new(),
            evidence: HashMap::new(),
        }
    }

    /// The canonical graph built so far.
    pub fn kg(&self) -> &KnowledgeGraph {
        &self.kg
    }

    /// Canonical entity a source record resolved to (after ingestion).
    pub fn resolution(&self, source: &str, external_id: &str) -> Option<EntityId> {
        self.resolved.get(&(source.to_owned(), external_id.to_owned())).copied()
    }

    /// Scores a record against an existing canonical entity.
    fn score_against(&self, r: &SourceEntity, canonical: EntityId) -> f32 {
        let ent = self.kg.entity(canonical);
        let name_score = names_compatible(&r.name, &ent.name);
        if name_score < 0.5 {
            return 0.0;
        }
        // Type agreement.
        let type_ok = self.kg.ontology().type_info(ent.entity_type).name == r.type_name;
        // Shared-fact agreement: does any of the record's facts match a
        // stored fact of the canonical entity?
        let mut agree = 0usize;
        let mut conflict = 0usize;
        for (pname, value) in &r.facts {
            let Some(pred) = self.kg.ontology().predicate_by_name(pname) else { continue };
            let existing = self.kg.objects(canonical, pred);
            if existing.is_empty() {
                continue;
            }
            if existing.iter().any(|v| v.same_as(value)) {
                agree += 1;
            } else if self.kg.ontology().predicate(pred).cardinality == Cardinality::Single {
                conflict += 1;
            }
        }
        // Name + type dominate (an exact name of the right type merges even
        // when one low-quality feed disagrees on a value); fact agreement
        // nudges, conflicts dampen but do not veto.
        let mut score = 0.7 * name_score;
        if type_ok {
            score += 0.2;
        }
        score += 0.1 * agree.min(2) as f32;
        score -= 0.15 * conflict.min(2) as f32;
        score
    }

    /// Ingests one batch of source records: blocks each record against the
    /// existing canonical entities (and the batch's own new ones), merges or
    /// creates, accumulates value evidence, and re-resolves conflicts.
    pub fn ingest(&mut self, batch: &[SourceEntity]) -> IngestStats {
        let mut stats = IngestStats { records: batch.len(), ..Default::default() };
        for r in batch {
            // Candidate canonical entities from the block index.
            let mut candidates: Vec<EntityId> = Vec::new();
            for key in block_keys(r) {
                if let Some(list) = self.block_index.get(&key) {
                    if list.len() <= self.cfg.max_block_size {
                        candidates.extend(list.iter().copied());
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();

            let mut best: Option<(EntityId, f32)> = None;
            for c in candidates {
                stats.pairs_scored += 1;
                let s = self.score_against(r, c);
                if s >= self.cfg.match_threshold && best.map_or(true, |(_, bs)| s > bs) {
                    best = Some((c, s));
                }
            }

            let canonical = match best {
                Some((c, _)) => {
                    stats.merged_into_existing += 1;
                    // A fuller name upgrades the canonical display name.
                    if r.name.len() > self.kg.entity(c).name.len() && !r.name.contains('.') {
                        // (names with initials never displace full names)
                        let better = r.name.clone();
                        let ent = self.kg.entity(c).clone();
                        let _ = ent;
                        // Entities are append-only; record the variant as an
                        // alias via the block index instead.
                        let _ = better;
                    }
                    c
                }
                None => {
                    stats.new_entities += 1;
                    let type_id = self
                        .kg
                        .ontology()
                        .type_by_name(&r.type_name)
                        .unwrap_or_else(|| self.kg.ontology_mut().add_type(&r.type_name, None));
                    let id = self.kg.add_entity(
                        EntityBuilder::new(&r.name, type_id)
                            .description(format!("fused from {}", r.source))
                            .popularity(0.5),
                    );
                    id
                }
            };

            // Index this record's keys for future blocking.
            for key in block_keys(r) {
                let list = self.block_index.entry(key).or_default();
                if !list.contains(&canonical) {
                    list.push(canonical);
                }
            }
            self.resolved.insert((r.source.clone(), r.external_id.clone()), canonical);

            // Accumulate evidence and (re)resolve each fact.
            let trust = self.trust.get(&r.source).copied().unwrap_or(0.5);
            for (pname, value) in &r.facts {
                let key = (canonical, pname.clone(), value.canonical());
                let ev = self.evidence.entry(key).or_default();
                ev.trust_sum += trust;
                ev.support += 1;
                ev.value = Some(value.clone());
            }
            self.resolve_facts(canonical, r);
            // Commit per record so matching sees identical state regardless
            // of how the stream is batched (incremental ≡ one-shot).
            self.kg.commit();
        }
        stats
    }

    /// Writes the winning value(s) for each predicate the record touched.
    fn resolve_facts(&mut self, canonical: EntityId, r: &SourceEntity) {
        let pred_names: std::collections::HashSet<&String> =
            r.facts.iter().map(|(p, _)| p).collect();
        for pname in pred_names {
            let Some(pred) = self.kg.ontology().predicate_by_name(pname) else { continue };
            let info = self.kg.ontology().predicate(pred).clone();
            // All evidence rows for (canonical, pname).
            let mut rows: Vec<(&ValueEvidence, &String)> = self
                .evidence
                .iter()
                .filter(|((e, p, _), _)| *e == canonical && p == pname)
                .map(|((_, _, v), ev)| (ev, v))
                .collect();
            if rows.is_empty() {
                continue;
            }
            rows.sort_by(|a, b| {
                b.0.trust_sum
                    .partial_cmp(&a.0.trust_sum)
                    .unwrap()
                    .then(b.0.support.cmp(&a.0.support))
                    .then(a.1.cmp(b.1))
            });
            let src = self.kg.register_source("fusion");
            match info.cardinality {
                Cardinality::Single => {
                    let winner = rows[0].0.value.clone().expect("evidence has value");
                    for old in self.kg.objects(canonical, pred) {
                        if !old.same_as(&winner) {
                            self.kg.remove(&Triple {
                                subject: canonical,
                                predicate: pred,
                                object: old,
                            });
                        }
                    }
                    let conf = (rows[0].0.trust_sum / (rows[0].0.trust_sum + 0.5)).min(0.99);
                    self.kg.insert_with(
                        Triple { subject: canonical, predicate: pred, object: winner },
                        src,
                        conf,
                    );
                }
                Cardinality::Multi => {
                    for (ev, _) in rows {
                        if ev.trust_sum >= 0.3 {
                            let v = ev.value.clone().expect("evidence has value");
                            self.kg.insert_with(
                                Triple { subject: canonical, predicate: pred, object: v },
                                src,
                                (ev.trust_sum / (ev.trust_sum + 0.5)).min(0.99),
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{generate_feeds, FeedConfig};
    use saga_core::synth::{generate, standard_ontology, SynthConfig};

    fn engine_and_data() -> (FusionEngine, crate::source::FeedData, saga_core::synth::SynthKg) {
        let s = generate(&SynthConfig::tiny(311));
        let data = generate_feeds(&s, &FeedConfig::default());
        let (ontology, _, _) = standard_ontology(0);
        let engine = FusionEngine::new(ontology, &data.trust, FusionConfig::default());
        (engine, data, s)
    }

    /// Pairwise resolution quality vs ground truth.
    fn pairwise_f1(engine: &FusionEngine, data: &crate::source::FeedData) -> (f64, f64, f64) {
        let recs: Vec<&SourceEntity> = data.records.iter().collect();
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        for i in 0..recs.len() {
            for j in i + 1..recs.len() {
                let key_i = (recs[i].source.clone(), recs[i].external_id.clone());
                let key_j = (recs[j].source.clone(), recs[j].external_id.clone());
                let same_truth = data.owner[&key_i] == data.owner[&key_j];
                let same_pred = engine.resolution(&recs[i].source, &recs[i].external_id)
                    == engine.resolution(&recs[j].source, &recs[j].external_id);
                match (same_pred, same_truth) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let p = tp as f64 / (tp + fp).max(1) as f64;
        let r = tp as f64 / (tp + fn_).max(1) as f64;
        (p, r, 2.0 * p * r / (p + r).max(1e-9))
    }

    #[test]
    fn fusion_deduplicates_across_feeds() {
        let (mut engine, data, _) = engine_and_data();
        let stats = engine.ingest(&data.records);
        assert_eq!(stats.records, data.records.len());
        assert!(stats.merged_into_existing > 20, "cross-feed merges: {stats:?}");
        let distinct_truth: std::collections::HashSet<_> = data.owner.values().collect();
        let built = engine.kg().num_entities();
        // Canonical entity count ≈ distinct true entities.
        let diff = (built as i64 - distinct_truth.len() as i64).abs();
        assert!(
            diff <= (distinct_truth.len() / 5) as i64,
            "built {built} vs truth {}",
            distinct_truth.len()
        );
        let (p, r, f1) = pairwise_f1(&engine, &data);
        assert!(p > 0.9, "precision {p}");
        assert!(r > 0.75, "recall {r}");
        assert!(f1 > 0.85, "f1 {f1}");
    }

    #[test]
    fn no_foreign_entity_ids_leak_into_the_canonical_graph() {
        // Feeds reference entities by name; every entity-valued object in
        // the fused KG must point at a fused entity, never at a foreign id.
        let (mut engine, data, _) = engine_and_data();
        engine.ingest(&data.records);
        let n = engine.kg().num_entities() as u64;
        for k in engine.kg().keys() {
            let t = engine.kg().decode(*k);
            if let saga_core::Value::Entity(e) = t.object {
                assert!(e.raw() < n, "foreign entity id {e:?} leaked into fused KG");
            }
        }
    }

    #[test]
    fn trusted_sources_win_conflicts() {
        let (mut engine, data, s) = engine_and_data();
        engine.ingest(&data.records);
        // For entities described by census (trust 0.95) and corrupted in
        // scraped (trust 0.35), the canonical DOB must equal the truth.
        let mut checked = 0;
        let mut correct = 0;
        for r in data.records.iter().filter(|r| r.source == "census") {
            let truth_entity = data.owner[&(r.source.clone(), r.external_id.clone())];
            let Some(canonical) = engine.resolution(&r.source, &r.external_id) else { continue };
            let true_dob = s.kg.object(truth_entity, s.preds.date_of_birth);
            let pred = engine.kg().ontology().predicate_by_name("date_of_birth").unwrap();
            let fused_dob = engine.kg().object(canonical, pred);
            if let (Some(t), Some(f)) = (true_dob, fused_dob) {
                checked += 1;
                if t.same_as(&f) {
                    correct += 1;
                }
            }
        }
        assert!(checked > 20);
        assert!(correct * 100 >= checked * 95, "trusted DOB wins only {correct}/{checked}");
    }

    #[test]
    fn incremental_batches_match_one_shot() {
        let (mut one_shot, data, _) = engine_and_data();
        one_shot.ingest(&data.records);

        let s2 = generate(&SynthConfig::tiny(311));
        let (ontology, _, _) = standard_ontology(0);
        let mut incremental = FusionEngine::new(ontology, &data.trust, FusionConfig::default());
        let _ = s2;
        let third = data.records.len() / 3;
        incremental.ingest(&data.records[..third]);
        incremental.ingest(&data.records[third..2 * third]);
        incremental.ingest(&data.records[2 * third..]);

        assert_eq!(incremental.kg().num_entities(), one_shot.kg().num_entities());
        // Same resolution for every record.
        for r in &data.records {
            assert_eq!(
                incremental.resolution(&r.source, &r.external_id),
                one_shot.resolution(&r.source, &r.external_id),
                "record {}/{} resolved differently",
                r.source,
                r.external_id
            );
        }
    }

    #[test]
    fn initialed_newswire_records_link_to_full_names() {
        let (mut engine, data, _) = engine_and_data();
        engine.ingest(&data.records);
        // Find an initialed newswire record whose true entity also appears
        // in the census feed; they must resolve to the same canonical.
        let mut linked = 0;
        let mut candidates = 0;
        for r in data.records.iter().filter(|r| r.source == "newswire" && r.name.contains(". ")) {
            let truth = data.owner[&(r.source.clone(), r.external_id.clone())];
            let census_rec = data.records.iter().find(|c| {
                c.source == "census"
                    && data.owner[&(c.source.clone(), c.external_id.clone())] == truth
            });
            if let Some(c) = census_rec {
                candidates += 1;
                if engine.resolution(&r.source, &r.external_id)
                    == engine.resolution(&c.source, &c.external_id)
                {
                    linked += 1;
                }
            }
        }
        if candidates > 0 {
            assert!(linked * 100 >= candidates * 70, "initialed linking {linked}/{candidates}");
        }
    }
}
