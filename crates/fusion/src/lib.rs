//! # saga-fusion
//!
//! Server-side continuous knowledge construction — the Saga substrate
//! (Ilyas et al., SIGMOD '22) that this paper's extensions sit on: multiple
//! feeds deliver overlapping entity records; the engine blocks and matches
//! them against the canonical graph, merges duplicates (tolerant of name
//! variants), and resolves conflicting values by accumulated source trust.
//! Ingestion is incremental: batches arriving over time converge to the
//! same canonical graph as a one-shot load (verified by tests).

#![warn(missing_docs)]

pub mod fuse;
pub mod source;

pub use fuse::{FusionConfig, FusionEngine, IngestStats, ValueEvidence};
pub use source::{generate_feeds, FeedConfig, FeedData, FeedTrust, SourceEntity};
