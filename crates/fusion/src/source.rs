//! Source records and the synthetic multi-feed generator.
//!
//! Saga's server-side construction (Ilyas et al. 2022, the substrate this
//! paper extends) continuously ingests entity records from many feeds that
//! describe overlapping real-world entities in different formats. The
//! generator derives several "feeds" from the synthetic KG's ground truth —
//! with name variants, partial fact coverage, per-source trust, and
//! occasional wrong values — so fusion quality is measurable.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use saga_core::synth::SynthKg;
use saga_core::{EntityId, Value};
use serde::{Deserialize, Serialize};

/// One entity record as delivered by a feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceEntity {
    /// Feed name, e.g. `"moviedb"`.
    pub source: String,
    /// The feed's own identifier for the record.
    pub external_id: String,
    /// Name as the feed spells it (may be a variant).
    pub name: String,
    /// Type label in the feed's vocabulary (maps onto the ontology name).
    pub type_name: String,
    /// Facts as `(predicate name, value)` pairs.
    pub facts: Vec<(String, Value)>,
}

/// Trust prior per feed, used by conflict resolution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedTrust {
    /// Feed name.
    pub source: String,
    /// Trust in `[0, 1]`.
    pub trust: f32,
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedConfig {
    /// RNG seed (determinism).
    pub seed: u64,
    /// People exported per feed (most popular first, so feeds overlap).
    pub people_per_feed: usize,
    /// Probability a fact value is corrupted in the low-trust feed.
    pub corruption_rate: f64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        Self { seed: 5, people_per_feed: 80, corruption_rate: 0.15 }
    }
}

/// The generated batches plus ground truth.
#[derive(Debug, Clone)]
pub struct FeedData {
    /// Records from all feeds, interleaved in feed order.
    pub records: Vec<SourceEntity>,
    /// Per-feed trust priors.
    pub trust: Vec<FeedTrust>,
    /// Ground truth: `(source, external_id)` → true KG entity.
    pub owner: std::collections::HashMap<(String, String), EntityId>,
}

/// Short form of a name: `"Michael Jordan"` → `"M. Jordan"`.
fn initialed(name: &str) -> String {
    let mut parts = name.split_whitespace();
    match (parts.next(), parts.clone().last()) {
        (Some(first), Some(last)) if first != last => {
            format!("{}. {last}", first.chars().next().unwrap_or('X'))
        }
        _ => name.to_owned(),
    }
}

/// Generates three overlapping feeds over the synthetic KG's people:
/// - `"census"` (high trust, full names, DOB + birthplace);
/// - `"newswire"` (medium trust, initialed names, occupation + residence);
/// - `"scraped"` (low trust, full names, all facts, some corrupted).
pub fn generate_feeds(s: &SynthKg, cfg: &FeedConfig) -> FeedData {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut records = Vec::new();
    let mut owner = std::collections::HashMap::new();

    // Most popular people (the heads overlap across feeds).
    let mut people: Vec<EntityId> = s.people.clone();
    people.sort_by(|a, b| {
        s.kg.entity(*b).popularity.partial_cmp(&s.kg.entity(*a).popularity).unwrap()
    });
    people.truncate(cfg.people_per_feed + cfg.people_per_feed / 2);

    let type_of = |e: EntityId| s.kg.ontology().type_info(s.kg.entity(e).entity_type).name.clone();
    // Feeds reference other entities by NAME, not by our internal ids (a
    // feed cannot know the canonical id space) — entity values are rendered
    // as text; resolving them back to canonical entities is a downstream
    // linking step.
    let fact_of = |e: EntityId, p: saga_core::PredicateId| -> Option<(String, Value)> {
        s.kg.object(e, p).map(|v| {
            let rendered = match v {
                Value::Entity(o) => Value::Text(s.kg.entity(o).name.clone()),
                other => other,
            };
            (s.kg.ontology().predicate(p).name.clone(), rendered)
        })
    };

    // census: first N, accurate, DOB + born_in.
    for (i, &e) in people.iter().take(cfg.people_per_feed).enumerate() {
        let rec = s.kg.entity(e);
        let mut facts = Vec::new();
        facts.extend(fact_of(e, s.preds.date_of_birth));
        facts.extend(fact_of(e, s.preds.born_in));
        let record = SourceEntity {
            source: "census".into(),
            external_id: format!("C{i:05}"),
            name: rec.name.clone(),
            type_name: type_of(e),
            facts,
        };
        owner.insert((record.source.clone(), record.external_id.clone()), e);
        records.push(record);
    }

    // newswire: overlapping slice, initialed names, occupation + lives_in.
    let start = cfg.people_per_feed / 4;
    for (i, &e) in people.iter().skip(start).take(cfg.people_per_feed).enumerate() {
        let rec = s.kg.entity(e);
        let mut facts = Vec::new();
        facts.extend(fact_of(e, s.preds.occupation));
        facts.extend(fact_of(e, s.preds.lives_in));
        facts.extend(fact_of(e, s.preds.date_of_birth));
        let record = SourceEntity {
            source: "newswire".into(),
            external_id: format!("N{i:05}"),
            name: if rng.gen_bool(0.5) { initialed(&rec.name) } else { rec.name.clone() },
            type_name: type_of(e),
            facts,
        };
        owner.insert((record.source.clone(), record.external_id.clone()), e);
        records.push(record);
    }

    // scraped: another overlapping slice, everything, sometimes wrong.
    let start2 = cfg.people_per_feed / 2;
    for (i, &e) in people.iter().skip(start2).take(cfg.people_per_feed).enumerate() {
        let rec = s.kg.entity(e);
        let mut facts = Vec::new();
        for p in [s.preds.date_of_birth, s.preds.born_in, s.preds.occupation, s.preds.lives_in] {
            if let Some((name, mut v)) = fact_of(e, p) {
                if rng.gen_bool(cfg.corruption_rate) {
                    v = corrupt(&v, s, &mut rng);
                }
                facts.push((name, v));
            }
        }
        let record = SourceEntity {
            source: "scraped".into(),
            external_id: format!("S{i:05}"),
            name: rec.name.clone(),
            type_name: type_of(e),
            facts,
        };
        owner.insert((record.source.clone(), record.external_id.clone()), e);
        records.push(record);
    }

    FeedData {
        records,
        trust: vec![
            FeedTrust { source: "census".into(), trust: 0.95 },
            FeedTrust { source: "newswire".into(), trust: 0.7 },
            FeedTrust { source: "scraped".into(), trust: 0.35 },
        ],
        owner,
    }
}

fn corrupt(v: &Value, s: &SynthKg, rng: &mut ChaCha8Rng) -> Value {
    match v {
        Value::Date(d) => Value::Date(
            saga_core::Date::new(d.year + rng.gen_range(1..=3), d.month, d.day).unwrap_or(*d),
        ),
        Value::Text(_) => {
            Value::Text(s.kg.entity(s.places[rng.gen_range(0..s.places.len())]).name.clone())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn feeds_overlap_and_have_ground_truth() {
        let s = generate(&SynthConfig::tiny(301));
        let data = generate_feeds(&s, &FeedConfig::default());
        assert_eq!(data.owner.len(), data.records.len());
        // Some true entities are described by more than one feed.
        let mut by_entity: std::collections::HashMap<EntityId, usize> = Default::default();
        for e in data.owner.values() {
            *by_entity.entry(*e).or_default() += 1;
        }
        let multi = by_entity.values().filter(|&&c| c > 1).count();
        assert!(multi > 20, "feeds must overlap: {multi} shared entities");
        // All three feeds present.
        for src in ["census", "newswire", "scraped"] {
            assert!(data.records.iter().any(|r| r.source == src));
        }
    }

    #[test]
    fn initialed_names_appear() {
        let s = generate(&SynthConfig::tiny(301));
        let data = generate_feeds(&s, &FeedConfig::default());
        assert!(
            data.records.iter().any(|r| r.source == "newswire" && r.name.contains(". ")),
            "newswire should abbreviate some names"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let s = generate(&SynthConfig::tiny(301));
        let a = generate_feeds(&s, &FeedConfig::default());
        let b = generate_feeds(&s, &FeedConfig::default());
        assert_eq!(a.records, b.records);
    }
}
