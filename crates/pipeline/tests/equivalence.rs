//! The tentpole proof of the incremental growth pipeline: for seeded
//! corpora with 1–30% churn, [`grow_incremental`] converges to a result
//! equivalent to a [`grow_batch`] rebuild on the final corpus —
//! bit-identical published KG canonical bytes and exact ANN parity — and
//! the amount of work scales with the churn fraction, not the corpus
//! size. The result is also bit-identical at every worker count, and a
//! lapsed store cursor degrades to a full rebuild without losing
//! convergence.

use saga_core::obs::Registry;
use saga_core::synth::{generate, SynthConfig, SynthKg};
use saga_embeddings::{build_flat_index, ModelKind, TrainConfig};
use saga_odke::{FactTarget, OdkeConfig, TargetReason};
use saga_pipeline::{grow_batch, grow_incremental, GrowthConfig, GrowthState};
use saga_webcorpus::{
    apply_churn, apply_fact_churn, generate_corpus, ChurnConfig, Corpus, CorpusConfig, CorpusTruth,
};
use std::path::PathBuf;

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("saga-pipeline-equiv")
        .join(std::process::id().to_string())
        .join(name);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

fn fixture() -> (SynthKg, Corpus, CorpusTruth) {
    let s = generate(&SynthConfig::tiny(231));
    let (c, t) = generate_corpus(&s, &[], &CorpusConfig::tiny(17));
    (s, c, t)
}

/// A fixed target universe: the first 25 subjects with a rendered
/// `lives_in` fact (sorted by entity id). Fact churn rewrites `lives_in`
/// pages for the earliest rendered subjects, so refreshed facts are
/// covered; everything else exercises the clean-target path.
fn targets(s: &SynthKg, truth: &CorpusTruth) -> Vec<FactTarget> {
    let mut subjects: Vec<u64> = truth
        .rendered_facts
        .iter()
        .filter(|(_, _, p, _)| *p == s.preds.lives_in)
        .map(|(_, e, _, _)| e.raw())
        .collect();
    subjects.sort_unstable();
    subjects.dedup();
    subjects
        .into_iter()
        .take(25)
        .map(|raw| FactTarget {
            entity: saga_core::EntityId(raw),
            predicate: s.preds.lives_in,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        })
        .collect()
}

fn config(s: &SynthKg, truth: &CorpusTruth) -> GrowthConfig {
    GrowthConfig {
        max_docs_per_entity: 3,
        // A generous per-query fetch so churn-induced BM25 reorderings
        // never truncate a clean target's candidate set.
        odke: OdkeConfig { docs_per_query: 50, ..OdkeConfig::default() },
        train: TrainConfig {
            model: ModelKind::TransE,
            dim: 8,
            epochs: 2,
            negatives: 2,
            seed: 11,
            ..TrainConfig::default()
        },
        num_parts: 4,
        min_predicate_frequency: 2,
        targets: targets(s, truth),
    }
}

/// One interval of mixed churn: page edits + new pages at `pct`% plus two
/// real-world fact changes rewriting their evidence pages.
fn churn(corpus: &mut Corpus, s: &SynthKg, truth: &CorpusTruth, pct: u32, seed: u64) {
    apply_churn(corpus, &ChurnConfig { edit_fraction: pct as f64 / 100.0, new_pages: 2, seed });
    apply_fact_churn(corpus, s, truth, 2, seed ^ 0x5eed);
}

/// Asserts the maintained ANN index equals one built from scratch over the
/// state's current model: same live id set, same rows, same top-k answers.
fn assert_ann_parity(state: &GrowthState) {
    let scratch = build_flat_index(&state.model);
    assert_eq!(state.indexed.len(), state.model.entity_ids.len(), "live set size");
    for (i, &e) in state.model.entity_ids.iter().enumerate() {
        let id = e.raw();
        assert!(state.indexed.contains(&id), "model row {id} missing from live set");
        assert_eq!(state.index.get(id), scratch.get(id), "row {id} differs from scratch");
        if i % 7 == 0 {
            let q = state.model.entities.row(i);
            assert_eq!(
                state.index.search(q, 10),
                scratch.search(q, 10),
                "top-10 for row {id} differs from scratch"
            );
        }
    }
}

#[test]
fn incremental_converges_to_batch_rebuild_across_churn_levels() {
    let (s, base_corpus, truth) = fixture();
    let cfg = config(&s, &truth);
    let mut reextracted = Vec::new();

    for pct in [1u32, 15, 30] {
        let mut corpus = base_corpus.clone();
        let reg = Registry::new();
        let (mut state, _) =
            grow_batch(&s.kg, &corpus, &cfg, 2, &workdir(&format!("inc-{pct}")), &reg)
                .expect("bootstrap");

        churn(&mut corpus, &s, &truth, pct, 400 + pct as u64);
        let inc = grow_incremental(&mut state, &corpus, &cfg, 2, &reg).expect("incremental pass");
        assert!(!inc.lapsed, "retained deltas must cover one interval");

        let (batch_state, batch) = grow_batch(
            &s.kg,
            &corpus,
            &cfg,
            2,
            &workdir(&format!("batch-{pct}")),
            &Registry::new(),
        )
        .expect("batch rebuild");

        assert_eq!(inc.published, batch.published, "published snapshots diverge at {pct}% churn");
        assert_ann_parity(&state);
        assert_ann_parity(&batch_state);

        // Work accounting: a delta pass touches a strict subset of the
        // target universe, and the registry agrees with the report.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("delta/targets_reextracted"), inc.targets_reextracted as u64);
        assert!(
            inc.targets_reextracted < cfg.targets.len(),
            "{pct}% churn re-extracted every target"
        );
        assert_eq!(snap.counter("delta/lapses"), 0);
        reextracted.push(inc.targets_reextracted);
    }

    // Cost scales with churn: more churn, no less re-extraction.
    assert!(
        reextracted.windows(2).all(|w| w[0] <= w[1]),
        "re-extraction not monotone in churn: {reextracted:?}"
    );
}

#[test]
fn chained_intervals_converge_and_work_stays_incremental() {
    let (s, mut corpus, truth) = fixture();
    let cfg = config(&s, &truth);
    let reg = Registry::new();
    let (mut state, _) =
        grow_batch(&s.kg, &corpus, &cfg, 2, &workdir("chain-inc"), &reg).expect("bootstrap");

    for (i, pct) in [5u32, 5].into_iter().enumerate() {
        churn(&mut corpus, &s, &truth, pct, 700 + i as u64);
        let rep = grow_incremental(&mut state, &corpus, &cfg, 2, &reg).expect("chained pass");
        assert!(!rep.lapsed);
        assert!(
            rep.pages_reprocessed < corpus.pages.len(),
            "interval {i} reprocessed the whole corpus"
        );
    }

    let (_, batch) = grow_batch(&s.kg, &corpus, &cfg, 2, &workdir("chain-batch"), &Registry::new())
        .expect("batch rebuild");
    let final_published = saga_pipeline::published_bytes(state.store.graph());
    assert_eq!(final_published, batch.published, "chained passes diverged from batch");
    assert_ann_parity(&state);
    assert!(reg.snapshot().counter("delta/batches") >= 2);
}

#[test]
fn incremental_is_deterministic_across_worker_counts() {
    let (s, base_corpus, truth) = fixture();
    let cfg = config(&s, &truth);
    let mut published = Vec::new();
    let mut model_bytes = Vec::new();

    for workers in [1usize, 2, 8] {
        let mut corpus = base_corpus.clone();
        let reg = Registry::new();
        let (mut state, _) =
            grow_batch(&s.kg, &corpus, &cfg, workers, &workdir(&format!("det-w{workers}")), &reg)
                .expect("bootstrap");
        churn(&mut corpus, &s, &truth, 5, 4242);
        let rep = grow_incremental(&mut state, &corpus, &cfg, workers, &reg).expect("pass");
        published.push(rep.published);
        model_bytes.push((state.model.entities.to_bytes(), state.model.relations.to_bytes()));
    }

    assert_eq!(published[0], published[1], "published bytes differ: workers 1 vs 2");
    assert_eq!(published[0], published[2], "published bytes differ: workers 1 vs 8");
    assert_eq!(model_bytes[0], model_bytes[1], "model differs: workers 1 vs 2");
    assert_eq!(model_bytes[0], model_bytes[2], "model differs: workers 1 vs 8");
}

#[test]
fn lapsed_store_cursor_falls_back_to_full_rebuild_and_recovers() {
    let (s, mut corpus, truth) = fixture();
    let cfg = config(&s, &truth);
    let reg = Registry::new();
    let (mut state, _) =
        grow_batch(&s.kg, &corpus, &cfg, 2, &workdir("lapse"), &reg).expect("bootstrap");

    // A first interval leaves a real commit in the store's delta log.
    churn(&mut corpus, &s, &truth, 5, 909);
    let rep = grow_incremental(&mut state, &corpus, &cfg, 2, &reg).expect("first pass");
    assert!(!rep.lapsed);

    // Checkpoint truncates the retained deltas, then the cursor is forced
    // back before the checkpoint — the feed can no longer serve it.
    state.store.checkpoint().expect("checkpoint");
    state.store_cursor.resync(0);

    churn(&mut corpus, &s, &truth, 5, 910);
    let rep = grow_incremental(&mut state, &corpus, &cfg, 2, &reg).expect("lapsed pass");
    assert!(rep.lapsed, "forced-stale cursor must lapse");
    assert_eq!(reg.snapshot().counter("delta/lapses"), 1);

    // The fallback (full retrain + index rebuild + resync) still converges.
    let (_, batch) = grow_batch(&s.kg, &corpus, &cfg, 2, &workdir("lapse-batch"), &Registry::new())
        .expect("batch rebuild");
    assert_eq!(rep.published, batch.published, "lapse recovery diverged from batch");
    assert_ann_parity(&state);

    // And the resynced cursor serves the next interval incrementally.
    churn(&mut corpus, &s, &truth, 5, 911);
    let rep = grow_incremental(&mut state, &corpus, &cfg, 2, &reg).expect("post-lapse pass");
    assert!(!rep.lapsed, "resynced cursor lapsed again");
}
