//! Published snapshots: a canonical, history-free rendering of a grown KG.
//!
//! The growth pipeline's headline guarantee is that the incremental path
//! *converges* to the batch rebuild. The two paths necessarily differ in
//! bookkeeping — commit counters, `observed_at` stamps, and the insertion
//! order of interned literals and sources all record *how* the graph was
//! built, not *what* it says. [`publish_snapshot`] strips that history:
//! it re-derives a fresh graph holding exactly the same entities, ontology
//! and facts (with their sources and confidences) in a canonical order, so
//! two graphs with the same content publish to bit-identical
//! [`KnowledgeGraph::canonical_bytes`]. This mirrors the paper's serving
//! story (Sec. 3.2): what ships to the serving fleet is a versioned,
//! reproducible artifact, not the builder's working state.

use saga_core::{KnowledgeGraph, Triple};

/// Sort key giving facts a content-defined total order: subject, then
/// predicate, then object kind, then the object's canonical string.
fn fact_key(t: &Triple) -> (u64, u64, u8, String) {
    (t.subject.raw(), t.predicate.raw() as u64, t.object.kind() as u8, t.object.canonical())
}

/// Re-derives `kg` as a canonical published snapshot.
///
/// The result holds the same ontology, the same entity records (in dense
/// id order), and the same committed facts with the same source names and
/// confidences — but interns sources in sorted-name order, inserts facts
/// in content order, and collapses all `observed_at` stamps into one
/// publish commit. Any two graphs with equal content yield snapshots with
/// equal [`canonical_bytes`](KnowledgeGraph::canonical_bytes).
pub fn publish_snapshot(kg: &KnowledgeGraph) -> KnowledgeGraph {
    let mut out = KnowledgeGraph::new(kg.ontology().clone());
    for rec in kg.entities() {
        out.add_entity_record(rec.clone()).expect("entity records iterate in dense id order");
    }

    let mut rows: Vec<(Triple, String, f32)> = kg
        .keys()
        .iter()
        .map(|&k| {
            let t = kg.decode(k);
            let meta = kg.fact_meta(&t).expect("committed triple has meta");
            (t, kg.source_name(meta.source).to_string(), meta.confidence)
        })
        .collect();
    rows.sort_by(|a, b| fact_key(&a.0).cmp(&fact_key(&b.0)));

    // Intern only the sources the facts reference, in sorted-name order,
    // so the source table is content-defined too.
    let mut names: Vec<&str> = rows.iter().map(|(_, n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    for name in names {
        out.register_source(name);
    }

    for (t, name, confidence) in rows {
        let src = out.register_source(&name);
        out.insert_with(t, src, confidence);
    }
    out.commit();
    out
}

/// [`publish_snapshot`] rendered straight to canonical bytes — the value
/// the equivalence proofs compare.
pub fn published_bytes(kg: &KnowledgeGraph) -> Vec<u8> {
    publish_snapshot(kg).canonical_bytes()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn publish_is_idempotent_and_history_free() {
        let s = generate(&SynthConfig::tiny(41));
        let a = publish_snapshot(&s.kg);
        // Publishing a published snapshot changes nothing.
        assert_eq!(a.canonical_bytes(), publish_snapshot(&a).canonical_bytes());
        assert_eq!(a.num_triples(), s.kg.num_triples());
        assert_eq!(a.num_entities(), s.kg.num_entities());
    }

    #[test]
    fn publish_erases_insertion_order_and_commit_history() {
        let s = generate(&SynthConfig::tiny(43));
        let mut reordered = publish_snapshot(&s.kg);
        // Re-apply one fact over several extra commits: same content,
        // different observed_at stamps and commit counter.
        let t = reordered.decode(reordered.keys()[0]);
        let meta = reordered.fact_meta(&t).unwrap();
        for _ in 0..3 {
            reordered.insert_with(t.clone(), meta.source, meta.confidence);
            reordered.commit();
        }
        assert_ne!(reordered.canonical_bytes(), s.kg.canonical_bytes());
        assert_eq!(published_bytes(&reordered), published_bytes(&s.kg));
    }
}
