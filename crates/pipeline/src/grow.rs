//! The end-to-end growth driver: batch bootstrap and change-feed-driven
//! incremental growth.
//!
//! [`grow_batch`] builds the whole stack from a corpus snapshot — annotate
//! everything, materialize `mentioned_in` links, extract every target,
//! persist the graph into a [`KgStore`], train embeddings from scratch and
//! build the ANN index. [`grow_incremental`] advances the same stack by
//! one crawl interval, chaining every stage off delta cursors:
//!
//! 1. pull the page-keyed [`DeltaBatch`] from the corpus change feed and
//!    reindex exactly the dirty pages in the search engine;
//! 2. re-annotate the dirty pages, widening the batch to the entity-keyed
//!    dirty set;
//! 3. reconcile those entities' `mentioned_in` links and re-extract only
//!    the dirtied fact targets, against a working copy of the graph;
//! 4. mirror the resulting fact diff into the [`KgStore`] as one commit;
//! 5. pull the committed diff back out through the *store's* delta cursor
//!    ([`KgStore::pull_delta`], i.e. `changes_since`) — this entity batch,
//!    not the upstream one, drives the model layers, so anything that
//!    reaches the store (from any producer) reaches the embeddings;
//! 6. warm-start the embedding model and retrain only the dirty
//!    partitions; upsert/delete exactly the changed rows in the ANN index.
//!
//! If the store's retained deltas no longer cover the cursor
//! ([`DeltaPull::Lapsed`]) the driver falls back to a full retrain +
//! index rebuild and resyncs — lapsing costs work, never correctness.
//!
//! The contract proved by `tests/equivalence.rs`: the published snapshot
//! ([`crate::publish_snapshot`]) of the incremental path is bit-identical
//! to a batch rebuild on the final corpus, the maintained ANN index
//! matches a scratch-built one, and the amount of work scales with the
//! churn fraction, not the corpus size.

use saga_ann::FlatIndex;
use saga_annotation::{
    annotate_corpus_obs, annotate_delta_obs, extend_kg_with_links, sync_kg_links, AnnotatedCorpus,
    AnnotationService, LinkerConfig, Tier,
};
use saga_core::delta::{record_lapse, DeltaBatch, DeltaCursor, DeltaPull, DELTA_SCOPE};
use saga_core::obs::Registry;
use saga_core::{EngineOptions, EntityId, FactMeta, KgStore, KnowledgeGraph, Result, Triple};
use saga_embeddings::{
    dirty_partitions, train_partitioned, training_partitioning, CheckpointedTrainer,
    TrainCheckpointLog, TrainConfig, TrainedModel, TrainingSet,
};
use saga_graph::{GraphView, ViewDef};
use saga_odke::{run_odke_delta_obs, run_odke_obs, FactTarget, OdkeConfig};
use saga_webcorpus::{changefeed::pull_page_delta, Corpus, SearchEngine};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Fraction of view edges held out for validation / test when building
/// the training set (fixed so batch and incremental agree).
const HOLDOUT_FRAC: f64 = 0.05;

/// Static configuration of a growth pipeline. The target universe is part
/// of the configuration — both paths process the same (fixed) targets, so
/// a delta pass re-extracts a strict subset of what the batch pass would.
#[derive(Debug, Clone)]
pub struct GrowthConfig {
    /// Cap on `mentioned_in` links per entity.
    pub max_docs_per_entity: usize,
    /// Extraction configuration.
    pub odke: OdkeConfig,
    /// Embedding training configuration.
    pub train: TrainConfig,
    /// Embedding partition count.
    pub num_parts: usize,
    /// Minimum predicate frequency for the embedding-training view.
    pub min_predicate_frequency: usize,
    /// The fixed fact-target universe.
    pub targets: Vec<FactTarget>,
}

impl Default for GrowthConfig {
    fn default() -> Self {
        Self {
            max_docs_per_entity: 3,
            odke: OdkeConfig::default(),
            train: TrainConfig::default(),
            num_parts: 4,
            min_predicate_frequency: 2,
            targets: Vec::new(),
        }
    }
}

/// All mutable state of a growing stack. Built by [`grow_batch`], advanced
/// in place by [`grow_incremental`].
pub struct GrowthState {
    /// The persistent graph — the pipeline's source of truth.
    pub store: KgStore,
    /// Per-document annotations, patched in place by delta passes.
    pub annotated: AnnotatedCorpus,
    /// The web search index, reindexed incrementally per dirty page.
    pub search: SearchEngine,
    /// The annotation service (aliases from the base KG; static).
    pub service: AnnotationService,
    /// Current embedding model.
    pub model: TrainedModel,
    /// The maintained ANN index over `model`'s entity rows.
    pub index: FlatIndex,
    /// Ids currently live in `index`.
    pub indexed: BTreeSet<u64>,
    /// Cursor into the corpus change feed.
    pub page_cursor: DeltaCursor,
    /// Cursor into the store's commit-delta feed.
    pub store_cursor: DeltaCursor,
    /// Scratch directory (store + delta-training logs).
    pub workdir: PathBuf,
    /// Incremental passes completed (names the per-pass training log).
    pub passes: u64,
}

/// What one growth pass did. All counts are also recorded under the
/// `delta/` obs scope of the registry the pass ran with.
#[derive(Debug, Clone, Default)]
pub struct GrowthReport {
    /// Pages re-annotated and re-indexed.
    pub pages_reprocessed: usize,
    /// Entities in the pass's dirty set.
    pub entities_dirtied: usize,
    /// Fact targets re-extracted.
    pub targets_reextracted: usize,
    /// `mentioned_in` links written (batch) or added (incremental).
    pub links_added: usize,
    /// Stale `mentioned_in` links removed.
    pub links_removed: usize,
    /// Facts the store commit added or refreshed.
    pub facts_changed: usize,
    /// Embedding partitions retrained.
    pub partitions_retrained: usize,
    /// Training buckets processed.
    pub buckets_trained: usize,
    /// ANN rows inserted or replaced.
    pub ann_upserts: usize,
    /// ANN rows tombstoned.
    pub ann_deletes: usize,
    /// True when the store cursor lapsed and the pass fell back to a full
    /// retrain + index rebuild.
    pub lapsed: bool,
    /// Canonical bytes of the published snapshot after the pass.
    pub published: Vec<u8>,
}

fn training_set(kg: &KnowledgeGraph, cfg: &GrowthConfig) -> TrainingSet {
    let view = GraphView::materialize(kg, ViewDef::embedding_training(cfg.min_predicate_frequency));
    TrainingSet::from_edges(&view.edges(), HOLDOUT_FRAC, HOLDOUT_FRAC, cfg.train.seed)
}

fn rebuild_index(model: &TrainedModel) -> (FlatIndex, BTreeSet<u64>) {
    let index = saga_embeddings::build_flat_index(model);
    let indexed = model.entity_ids.iter().map(|e| e.raw()).collect();
    (index, indexed)
}

/// Builds the full stack from scratch on a corpus snapshot.
pub fn grow_batch(
    base: &KnowledgeGraph,
    corpus: &Corpus,
    cfg: &GrowthConfig,
    workers: usize,
    workdir: &Path,
    registry: &Registry,
) -> Result<(GrowthState, GrowthReport)> {
    std::fs::create_dir_all(workdir)?;
    let service = AnnotationService::build(base, LinkerConfig::tier(Tier::T2Contextual));
    let search = SearchEngine::build(corpus);
    let (annotated, _) =
        annotate_corpus_obs(&service, corpus, workers, &registry.scope("annotation"));

    let mut kg = base.clone();
    let links_added = extend_kg_with_links(&mut kg, corpus, &annotated, cfg.max_docs_per_entity);
    let odke_report = run_odke_obs(
        &mut kg,
        &service,
        &search,
        corpus,
        &cfg.targets,
        &cfg.odke,
        &registry.scope("odke"),
    );

    let store = KgStore::create(&workdir.join("kg.store"), kg, &EngineOptions::default())?;
    let store_cursor = DeltaCursor::at(store.last_commit());
    let page_cursor = DeltaCursor::at(corpus.version);

    let ds = training_set(store.graph(), cfg);
    let (model, stats) = train_partitioned(&ds, &cfg.train, cfg.num_parts, workers);
    let (index, indexed) = rebuild_index(&model);

    let report = GrowthReport {
        pages_reprocessed: corpus.pages.len(),
        entities_dirtied: store.graph().num_entities(),
        targets_reextracted: cfg.targets.len(),
        links_added,
        links_removed: 0,
        facts_changed: odke_report.facts_written,
        partitions_retrained: cfg.num_parts,
        buckets_trained: stats.buckets_trained,
        ann_upserts: indexed.len(),
        ann_deletes: 0,
        lapsed: false,
        published: crate::published_bytes(store.graph()),
    };
    let state = GrowthState {
        store,
        annotated,
        search,
        service,
        model,
        index,
        indexed,
        page_cursor,
        store_cursor,
        workdir: workdir.to_path_buf(),
        passes: 0,
    };
    Ok((state, report))
}

/// Content key identifying a fact independent of interner state.
fn fact_content_key(t: &Triple) -> (u64, u64, u8, String) {
    (t.subject.raw(), t.predicate.raw() as u64, t.object.kind() as u8, t.object.canonical())
}

/// The facts of `kg` about `entities`, keyed by content, with their meta.
fn facts_of(
    kg: &KnowledgeGraph,
    entities: &BTreeSet<EntityId>,
) -> BTreeMap<(u64, u64, u8, String), (Triple, FactMeta)> {
    let mut out = BTreeMap::new();
    for &e in entities {
        for t in kg.triples_of(e) {
            let meta = kg.fact_meta(&t).expect("committed triple has meta");
            out.insert(fact_content_key(&t), (t, meta));
        }
    }
    out
}

/// Advances the stack by one crawl interval. See the module docs for the
/// stage chain; returns what the pass did, including the published bytes.
pub fn grow_incremental(
    state: &mut GrowthState,
    corpus: &Corpus,
    cfg: &GrowthConfig,
    workers: usize,
    registry: &Registry,
) -> Result<GrowthReport> {
    let delta_scope = registry.scope(DELTA_SCOPE);
    state.passes += 1;
    let mut report = GrowthReport::default();

    // 1. Page feed: pull the dirty pages, keep the search index in sync.
    let page_batch = pull_page_delta(corpus, &mut state.page_cursor);
    for &doc in &page_batch.dirty_pages {
        state.search.index_page(corpus.page(doc));
    }
    report.pages_reprocessed = page_batch.dirty_pages.len();

    // 2. Re-annotate dirty pages; widen to the entity-keyed dirty set.
    let (entity_batch, _) = annotate_delta_obs(
        &state.service,
        corpus,
        &mut state.annotated,
        &page_batch,
        &registry.scope("annotation"),
    );
    entity_batch.record_to(&delta_scope);
    report.entities_dirtied = entity_batch.dirty_entities.len();

    // 3. Link reconciliation + delta extraction on a working copy.
    let mut kg = state.store.graph().clone();
    let (links_added, links_removed) = sync_kg_links(
        &mut kg,
        corpus,
        &state.annotated,
        entity_batch.dirty_entities.iter().copied(),
        cfg.max_docs_per_entity,
    );
    report.links_added = links_added;
    report.links_removed = links_removed;
    let odke_report = run_odke_delta_obs(
        &mut kg,
        &state.service,
        &state.search,
        corpus,
        &cfg.targets,
        &entity_batch,
        &cfg.odke,
        &registry.scope("odke"),
        &delta_scope,
    );
    report.targets_reextracted = odke_report.outcomes.len();

    // 4. Mirror the fact diff into the store as one commit. All stages
    // above only touch facts about dirty entities, so the diff over their
    // triples is the whole diff.
    let old = facts_of(state.store.graph(), &entity_batch.dirty_entities);
    let new = facts_of(&kg, &entity_batch.dirty_entities);
    let mut changed = 0usize;
    if old != new {
        state.store.commit(|txn| {
            for (key, (t, _)) in &old {
                if !new.contains_key(key) {
                    txn.remove(t);
                    changed += 1;
                }
            }
            for (key, (t, meta)) in &new {
                let refresh = match old.get(key) {
                    None => true,
                    Some((_, old_meta)) => {
                        old_meta.source != meta.source
                            || old_meta.confidence.to_bits() != meta.confidence.to_bits()
                    }
                };
                if refresh {
                    txn.insert_with(t.clone(), meta.source, meta.confidence);
                    changed += 1;
                }
            }
        })?;
    }
    report.facts_changed = changed;

    // 5. Pull the committed diff back through the store's cursor — the
    // entity batch that drives the model layers.
    match state.store.pull_delta(&mut state.store_cursor) {
        DeltaPull::Batch(store_batch) => {
            store_batch.record_to(&delta_scope);
            retrain_delta(state, cfg, workers, &store_batch, registry, &mut report)?;
        }
        DeltaPull::Lapsed { .. } => {
            record_lapse(&delta_scope);
            report.lapsed = true;
            let ds = training_set(state.store.graph(), cfg);
            let (model, stats) = train_partitioned(&ds, &cfg.train, cfg.num_parts, workers);
            let (index, indexed) = rebuild_index(&model);
            report.partitions_retrained = cfg.num_parts;
            report.buckets_trained = stats.buckets_trained;
            report.ann_upserts = indexed.len();
            report.ann_deletes = state.indexed.difference(&indexed).count();
            state.model = model;
            state.index = index;
            state.indexed = indexed;
            state.store_cursor.resync(state.store.last_commit());
        }
    }

    report.published = crate::published_bytes(state.store.graph());
    Ok(report)
}

/// Steps 6+7 of the incremental pass: dirty-partition retraining off a
/// warm start, then ANN maintenance of exactly the changed rows.
fn retrain_delta(
    state: &mut GrowthState,
    cfg: &GrowthConfig,
    workers: usize,
    store_batch: &DeltaBatch,
    registry: &Registry,
    report: &mut GrowthReport,
) -> Result<()> {
    let delta_scope = registry.scope(DELTA_SCOPE);
    if store_batch.dirty_entities.is_empty() {
        return Ok(());
    }
    let ds = training_set(state.store.graph(), cfg);
    let parts = training_partitioning(&ds, &cfg.train, cfg.num_parts);
    let dirty = dirty_partitions(&ds, &parts, store_batch.dirty_entities.iter().copied());
    if dirty.is_empty() {
        // Facts changed but none survive the training view (e.g. literal
        // objects only) — the model is untouched.
        return Ok(());
    }
    delta_scope.counter("partitions_retrained").add(dirty.len() as u64);
    report.partitions_retrained = dirty.len();

    let log_path = state.workdir.join(format!("delta-train-{}.wal", state.passes));
    let mut log = TrainCheckpointLog::open(&log_path)?;
    let run = CheckpointedTrainer::new(cfg.train.clone(), cfg.num_parts, workers)
        .with_warm_start(&state.model)
        .with_delta_partitions(dirty)
        .with_obs(delta_scope.child("train"))
        .train(&ds, &mut log)?;
    report.buckets_trained = run.report.buckets_trained;
    state.model = run.model.expect("no kill hooks installed; delta run completes");

    // ANN maintenance: upsert rows that moved (or are new), tombstone rows
    // whose entity left the model vocabulary.
    let mut live = BTreeSet::new();
    for (i, &e) in state.model.entity_ids.iter().enumerate() {
        let id = e.raw();
        live.insert(id);
        let row = state.model.entities.row(i);
        if state.index.get(id) != Some(row) {
            state.index.upsert(id, row);
            report.ann_upserts += 1;
        }
    }
    for &id in state.indexed.difference(&live) {
        state.index.remove(id);
        report.ann_deletes += 1;
    }
    state.indexed = live;
    delta_scope.counter("ann_upserts").add(report.ann_upserts as u64);
    delta_scope.counter("ann_deletes").add(report.ann_deletes as u64);
    Ok(())
}
