//! # saga-pipeline
//!
//! The top of the stack: an end-to-end growth driver wiring the corpus
//! change feed, semantic annotation, open-domain knowledge extraction,
//! the persistent graph store, embedding training and ANN maintenance
//! into one pipeline (paper Sec. 3.1, "Growing the graph").
//!
//! - [`grow_batch`] bootstraps everything from a corpus snapshot;
//! - [`grow_incremental`] advances the stack by one crawl interval,
//!   processing only what changed — every stage chained off the shared
//!   [`saga_core::delta`] contract, with the [`saga_core::KgStore`]
//!   commit-delta cursor as the single feed driving the model layers;
//! - [`publish_snapshot`] renders the grown graph as a canonical,
//!   history-free artifact, the form in which the two paths are provably
//!   equivalent (see `tests/equivalence.rs`).

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod grow;
pub mod publish;

pub use grow::{grow_batch, grow_incremental, GrowthConfig, GrowthReport, GrowthState};
pub use publish::{publish_snapshot, published_bytes};
