//! Property tests for the on-device stack: sync convergence, spill-sort
//! equivalence, and pause/resume losslessness under arbitrary schedules.

use proptest::prelude::*;
use saga_ondevice::{
    gossip_until_stable, sync_pair, ConstructionPipeline, Device, DeviceId, DeviceTier,
    PersonObservation, PipelineConfig, SourceKind, SpillSorter, SyncPolicy,
};

fn obs(source: SourceKind, id: u64, name: &str) -> PersonObservation {
    PersonObservation {
        source,
        record_id: id,
        name: name.into(),
        phone: Some(format!("+1 555 000 {:04}", id % 10_000)),
        email: None,
        context: String::new(),
    }
}

fn source_of(i: u8) -> SourceKind {
    SourceKind::ALL[i as usize % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary device policies and op placements, gossip converges,
    /// and afterwards: two devices agree on a source iff both sync it (or
    /// neither received any op for it); non-synced sources never leave
    /// their origin device.
    #[test]
    fn sync_convergence_under_arbitrary_policies(
        policies in proptest::collection::vec(0u8..8, 3),
        ops in proptest::collection::vec((0u8..3, 0u8..3, 0u64..50), 1..40),
    ) {
        let mk_policy = |bits: u8| {
            let sources: Vec<SourceKind> = SourceKind::ALL
                .into_iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, s)| s)
                .collect();
            SyncPolicy::only(&sources)
        };
        let mut devices: Vec<Device> = policies
            .iter()
            .enumerate()
            .map(|(i, &bits)| Device::new(DeviceId(i as u8), DeviceTier::Phone, mk_policy(bits)))
            .collect();
        for (dev, src, id) in &ops {
            let d = (*dev as usize) % devices.len();
            devices[d].ingest_local(obs(source_of(*src), *id, &format!("p{id}")));
        }
        let rounds = gossip_until_stable(&mut devices, 20);
        prop_assert!(rounds < 20, "must converge");

        // Idempotence: one more exchange moves nothing.
        let (a, rest) = devices.split_at_mut(1);
        let r = sync_pair(&mut a[0], &mut rest[0]);
        prop_assert_eq!(r.ops_a_to_b + r.ops_b_to_a, 0);

        // Policy containment: a device that does not sync source s holds
        // only its own ops for s.
        for d in &devices {
            for s in SourceKind::ALL {
                if !d.policy.syncs(s) {
                    for op in d.ops_for(s) {
                        prop_assert_eq!(op.origin, d.id, "foreign op leaked into non-synced source");
                    }
                }
            }
        }
    }

    /// SpillSorter output equals a plain in-memory sort for every input and
    /// budget.
    #[test]
    fn spill_sort_equivalence(
        items in proptest::collection::vec((0u32..1000, 0u32..1000), 0..300),
        budget in 1024usize..32_768,
    ) {
        let dir = std::env::temp_dir()
            .join("saga-prop-spill")
            .join(format!("{}-{budget}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut sorter: SpillSorter<(u32, u32)> = SpillSorter::new(&dir, budget).unwrap();
        for it in &items {
            sorter.push(*it).unwrap();
        }
        let (got, stats) = sorter.finish().unwrap();
        let mut want = items.clone();
        want.sort();
        prop_assert_eq!(got, want);
        prop_assert!(stats.peak_memory_bytes <= budget + 128);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The construction pipeline yields identical results for any step
    /// granularity and any pause/resume schedule.
    #[test]
    fn pipeline_schedule_independence(
        seed in 0u64..200,
        steps in proptest::collection::vec(1usize..60, 1..40),
    ) {
        let (obs, _) = saga_ondevice::generate_device_data(
            &saga_ondevice::DeviceDataConfig { seed, num_persons: 25, ..Default::default() },
        );
        let mut reference = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        reference.run_to_completion();

        let mut p = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        let mut step_iter = steps.iter().cycle();
        let mut hops = 0;
        while !p.is_done() {
            p.step(*step_iter.next().unwrap());
            if hops % 3 == 0 {
                let ckpt = p.checkpoint();
                p = ConstructionPipeline::resume(obs.clone(), PipelineConfig::default(), &ckpt)
                    .unwrap();
            }
            hops += 1;
            prop_assert!(hops < 1_000_000);
        }
        prop_assert_eq!(p.result_fingerprint(), reference.result_fingerprint());
    }
}
