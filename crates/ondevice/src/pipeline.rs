//! The incremental, pausable construction pipeline (paper Sec. 5,
//! *Privacy*): "this pipeline can be paused and resumed at any point
//! without losing state, allowing deferral of the construction process in
//! favor of any other higher priority task."
//!
//! Every stage advances a cursor in small batches; [`ConstructionPipeline::checkpoint`]
//! serializes the complete state between any two batches, and resuming from
//! that checkpoint yields byte-identical results to an uninterrupted run
//! (verified by property tests).

use crate::matching::{block_keys, score_pair, BlockKey, UnionFind};
use crate::sources::PersonObservation;
use saga_core::{Result, SagaError};
use serde::{Deserialize, Serialize};

/// Pipeline stages, in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stage {
    /// Scanning source records into observations.
    Ingest,
    /// Emitting blocking keys per observation.
    Block,
    /// Generating candidate pairs from sorted key groups.
    Pair,
    /// Scoring candidate pairs.
    Match,
    /// Clustering + finalization.
    Fuse,
    /// Finished.
    Done,
}

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Minimum pair score to merge.
    pub match_threshold: f32,
    /// Blocks larger than this are skipped (hub-key protection).
    pub max_block_size: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self { match_threshold: 0.9, max_block_size: 256 }
    }
}

/// Fully-serializable pipeline state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PipelineState {
    stage: Stage,
    cursor: usize,
    observations: Vec<PersonObservation>,
    keyed: Vec<(BlockKey, usize)>,
    pairs: Vec<(usize, usize)>,
    matched: Vec<(usize, usize)>,
    clusters: Vec<Vec<usize>>,
}

/// The pausable construction pipeline over a fixed input snapshot.
pub struct ConstructionPipeline {
    input: Vec<PersonObservation>,
    cfg: PipelineConfig,
    state: PipelineState,
}

impl ConstructionPipeline {
    /// Creates a pipeline over `input`.
    pub fn new(input: Vec<PersonObservation>, cfg: PipelineConfig) -> Self {
        Self {
            input,
            cfg,
            state: PipelineState {
                stage: Stage::Ingest,
                cursor: 0,
                observations: Vec::new(),
                keyed: Vec::new(),
                pairs: Vec::new(),
                matched: Vec::new(),
                clusters: Vec::new(),
            },
        }
    }

    /// Current stage.
    pub fn stage(&self) -> Stage {
        self.state.stage
    }

    /// True when the pipeline has finished.
    pub fn is_done(&self) -> bool {
        self.state.stage == Stage::Done
    }

    /// Processes up to `budget` work items, then returns (yielding to
    /// higher-priority tasks). Work items are stage-local units:
    /// observations, keys, groups, pairs.
    pub fn step(&mut self, budget: usize) -> Stage {
        let mut remaining = budget.max(1);
        while remaining > 0 && !self.is_done() {
            match self.state.stage {
                Stage::Ingest => {
                    let end = (self.state.cursor + remaining).min(self.input.len());
                    let n = end - self.state.cursor;
                    self.state
                        .observations
                        .extend(self.input[self.state.cursor..end].iter().cloned());
                    self.state.cursor = end;
                    remaining -= n.max(1).min(remaining);
                    if self.state.cursor == self.input.len() {
                        self.state.stage = Stage::Block;
                        self.state.cursor = 0;
                    }
                }
                Stage::Block => {
                    let end = (self.state.cursor + remaining).min(self.state.observations.len());
                    for i in self.state.cursor..end {
                        for k in block_keys(&self.state.observations[i]) {
                            self.state.keyed.push((k, i));
                        }
                    }
                    let n = end - self.state.cursor;
                    self.state.cursor = end;
                    remaining -= n.max(1).min(remaining);
                    if self.state.cursor == self.state.observations.len() {
                        // Deterministic transition: sort the key list.
                        self.state.keyed.sort();
                        self.state.stage = Stage::Pair;
                        self.state.cursor = 0;
                    }
                }
                Stage::Pair => {
                    // Process one key-group per work item.
                    let mut processed = 0;
                    while processed < remaining && self.state.cursor < self.state.keyed.len() {
                        let i = self.state.cursor;
                        let mut j = i;
                        while j + 1 < self.state.keyed.len()
                            && self.state.keyed[j + 1].0 == self.state.keyed[i].0
                        {
                            j += 1;
                        }
                        let group = &self.state.keyed[i..=j];
                        if group.len() <= self.cfg.max_block_size {
                            for a in 0..group.len() {
                                for b in a + 1..group.len() {
                                    let (x, y) = (group[a].1, group[b].1);
                                    if x != y {
                                        self.state.pairs.push((x.min(y), x.max(y)));
                                    }
                                }
                            }
                        }
                        self.state.cursor = j + 1;
                        processed += 1;
                    }
                    remaining -= processed.max(1).min(remaining);
                    if self.state.cursor >= self.state.keyed.len() {
                        self.state.pairs.sort_unstable();
                        self.state.pairs.dedup();
                        self.state.stage = Stage::Match;
                        self.state.cursor = 0;
                    }
                }
                Stage::Match => {
                    let end = (self.state.cursor + remaining).min(self.state.pairs.len());
                    for idx in self.state.cursor..end {
                        let (a, b) = self.state.pairs[idx];
                        let s =
                            score_pair(&self.state.observations[a], &self.state.observations[b]);
                        if s.score >= self.cfg.match_threshold {
                            self.state.matched.push((a, b));
                        }
                    }
                    let n = end - self.state.cursor;
                    self.state.cursor = end;
                    remaining -= n.max(1).min(remaining);
                    if self.state.cursor == self.state.pairs.len() {
                        self.state.stage = Stage::Fuse;
                        self.state.cursor = 0;
                    }
                }
                Stage::Fuse => {
                    let mut uf = UnionFind::new(self.state.observations.len());
                    for &(a, b) in &self.state.matched {
                        uf.union(a, b);
                    }
                    self.state.clusters = uf.clusters();
                    self.state.stage = Stage::Done;
                    remaining = remaining.saturating_sub(1);
                }
                Stage::Done => break,
            }
        }
        self.state.stage
    }

    /// Runs to completion.
    pub fn run_to_completion(&mut self) {
        while !self.is_done() {
            self.step(usize::MAX / 2);
        }
    }

    /// Serializes the full pipeline state (the pause point).
    pub fn checkpoint(&self) -> Vec<u8> {
        serde_json::to_vec(&self.state).expect("state serializes")
    }

    /// Restores a pipeline from a checkpoint over the same input snapshot.
    pub fn resume(
        input: Vec<PersonObservation>,
        cfg: PipelineConfig,
        checkpoint: &[u8],
    ) -> Result<Self> {
        let state: PipelineState =
            serde_json::from_slice(checkpoint).map_err(|e| SagaError::Serde(e.to_string()))?;
        Ok(Self { input, cfg, state })
    }

    /// The resolved clusters (valid once done).
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.state.clusters
    }

    /// The ingested observations (for fusion).
    pub fn observations(&self) -> &[PersonObservation] {
        &self.state.observations
    }

    /// A stable hash of the result, for equivalence checks.
    pub fn result_fingerprint(&self) -> u64 {
        saga_core::text::fnv1a(format!("{:?}", self.state.clusters).as_bytes())
    }

    /// Continuous construction: ingests a batch of *new* observations into a
    /// finished pipeline, doing only the incremental work — blocking the new
    /// records, scoring only pairs that involve at least one new record, and
    /// re-clustering. Equivalent to a full rebuild over the union (verified
    /// by tests) at a fraction of the cost.
    ///
    /// # Panics
    /// Panics if the pipeline has not finished its current input.
    pub fn ingest_increment(&mut self, new_obs: Vec<PersonObservation>) -> IncrementReport {
        assert!(self.is_done(), "finish the current input before incrementing");
        let base = self.state.observations.len();
        self.input.extend(new_obs.iter().cloned());
        self.state.observations.extend(new_obs);

        // Block only the new observations; merge into the sorted key list.
        let mut new_keyed: Vec<(BlockKey, usize)> = Vec::new();
        for (offset, o) in self.state.observations[base..].iter().enumerate() {
            for k in block_keys(o) {
                new_keyed.push((k, base + offset));
            }
        }
        new_keyed.sort();
        let old_keyed = std::mem::take(&mut self.state.keyed);
        self.state.keyed = merge_sorted_keys(old_keyed, new_keyed);

        // Pairs: scan key groups, emit only pairs touching a new record.
        let mut new_pairs: Vec<(usize, usize)> = Vec::new();
        let keyed = &self.state.keyed;
        let mut i = 0;
        while i < keyed.len() {
            let mut j = i;
            while j + 1 < keyed.len() && keyed[j + 1].0 == keyed[i].0 {
                j += 1;
            }
            let group = &keyed[i..=j];
            if group.len() <= self.cfg.max_block_size && group.iter().any(|(_, idx)| *idx >= base) {
                for a in 0..group.len() {
                    for b in a + 1..group.len() {
                        let (x, y) = (group[a].1, group[b].1);
                        if x != y && (x >= base || y >= base) {
                            new_pairs.push((x.min(y), x.max(y)));
                        }
                    }
                }
            }
            i = j + 1;
        }
        new_pairs.sort_unstable();
        new_pairs.dedup();

        // Match only the new pairs.
        let mut matched_new = 0usize;
        for &(a, b) in &new_pairs {
            let s = score_pair(&self.state.observations[a], &self.state.observations[b]);
            if s.score >= self.cfg.match_threshold {
                self.state.matched.push((a, b));
                matched_new += 1;
            }
        }
        self.state.pairs.extend(new_pairs.iter().copied());
        self.state.pairs.sort_unstable();
        self.state.pairs.dedup();

        // Re-cluster from the (cheap) accumulated match set.
        let mut uf = UnionFind::new(self.state.observations.len());
        for &(a, b) in &self.state.matched {
            uf.union(a, b);
        }
        self.state.clusters = uf.clusters();
        IncrementReport {
            new_observations: self.state.observations.len() - base,
            pairs_scored: new_pairs.len(),
            pairs_matched: matched_new,
        }
    }
}

/// Outcome of one incremental ingest.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IncrementReport {
    /// Observations added in this increment.
    pub new_observations: usize,
    /// Candidate pairs scored (only those touching a new record).
    pub pairs_scored: usize,
    /// Pairs that matched.
    pub pairs_matched: usize,
}

impl IncrementReport {
    /// Record this increment through an obs scope (call once per increment
    /// — counters add): one counter per field.
    pub fn record_to(&self, scope: &saga_core::obs::Scope) {
        scope.counter("new_observations").add(self.new_observations as u64);
        scope.counter("pairs_scored").add(self.pairs_scored as u64);
        scope.counter("pairs_matched").add(self.pairs_matched as u64);
    }
}

/// Merges two sorted `(key, index)` lists.
fn merge_sorted_keys(
    a: Vec<(BlockKey, usize)>,
    b: Vec<(BlockKey, usize)>,
) -> Vec<(BlockKey, usize)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{generate_device_data, DeviceDataConfig};

    #[test]
    fn pipeline_reaches_done_and_clusters() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(41));
        let mut p = ConstructionPipeline::new(obs, PipelineConfig::default());
        p.run_to_completion();
        assert!(p.is_done());
        assert!(!p.clusters().is_empty());
        let diff = (p.clusters().len() as i64 - truth.persons.len() as i64).abs();
        assert!(diff <= (truth.persons.len() / 5) as i64);
    }

    #[test]
    fn tiny_steps_match_one_shot() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(42));
        let mut one_shot = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        one_shot.run_to_completion();

        let mut stepped = ConstructionPipeline::new(obs, PipelineConfig::default());
        while !stepped.is_done() {
            stepped.step(3);
        }
        assert_eq!(stepped.result_fingerprint(), one_shot.result_fingerprint());
    }

    #[test]
    fn pause_resume_at_every_stage_is_lossless() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(43));
        let mut reference = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        reference.run_to_completion();

        // Pause after each step, serialize, resume in a fresh pipeline.
        let mut p = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        let mut hops = 0;
        while !p.is_done() {
            p.step(7);
            let ckpt = p.checkpoint();
            p = ConstructionPipeline::resume(obs.clone(), PipelineConfig::default(), &ckpt)
                .unwrap();
            hops += 1;
            assert!(hops < 100_000, "pipeline must terminate");
        }
        assert_eq!(p.result_fingerprint(), reference.result_fingerprint());
        assert!(hops > 5, "the pipeline actually paused multiple times ({hops})");
    }

    #[test]
    fn incremental_ingest_equals_full_rebuild() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(46));
        let split = obs.len() * 3 / 4;
        let (initial, late) = obs.split_at(split);

        // Incremental: build on the first 75%, then ingest the rest.
        let mut inc = ConstructionPipeline::new(initial.to_vec(), PipelineConfig::default());
        inc.run_to_completion();
        let before_clusters = inc.clusters().len();
        let report = inc.ingest_increment(late.to_vec());
        assert_eq!(report.new_observations, obs.len() - split);
        assert!(report.pairs_scored > 0);

        // Full rebuild over everything.
        let mut full = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
        full.run_to_completion();

        assert_eq!(inc.result_fingerprint(), full.result_fingerprint());
        // The increment only scored pairs touching new records — far fewer
        // than a full rebuild would.
        let full_pairs = {
            let mut p = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
            p.run_to_completion();
            p.state.pairs.len()
        };
        assert!(
            report.pairs_scored < full_pairs,
            "incremental {} vs full {}",
            report.pairs_scored,
            full_pairs
        );
        assert!(inc.clusters().len() >= before_clusters);
    }

    #[test]
    fn repeated_increments_accumulate() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(47));
        let third = obs.len() / 3;
        let mut p = ConstructionPipeline::new(obs[..third].to_vec(), PipelineConfig::default());
        p.run_to_completion();
        p.ingest_increment(obs[third..2 * third].to_vec());
        p.ingest_increment(obs[2 * third..].to_vec());
        let mut full = ConstructionPipeline::new(obs, PipelineConfig::default());
        full.run_to_completion();
        assert_eq!(p.result_fingerprint(), full.result_fingerprint());
        let diff = (p.clusters().len() as i64 - truth.persons.len() as i64).abs();
        assert!(diff <= (truth.persons.len() / 5) as i64);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(44));
        let r = ConstructionPipeline::resume(obs, PipelineConfig::default(), b"not json");
        assert!(r.is_err());
    }

    #[test]
    fn stages_progress_in_order() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(45));
        let mut p = ConstructionPipeline::new(obs, PipelineConfig::default());
        let mut seen = vec![p.stage()];
        while !p.is_done() {
            let s = p.step(10);
            if *seen.last().unwrap() != s {
                seen.push(s);
            }
        }
        assert_eq!(
            seen,
            vec![Stage::Ingest, Stage::Block, Stage::Pair, Stage::Match, Stage::Fuse, Stage::Done]
                .into_iter()
                .filter(|s| seen.contains(s))
                .collect::<Vec<_>>()
        );
        assert_eq!(*seen.last().unwrap(), Stage::Done);
    }
}
