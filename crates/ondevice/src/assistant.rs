//! On-device semantic annotation with contextual relevance ranking (paper
//! Sec. 5, *Semantic Annotation*): the "message Tim that I've added comments
//! to the SIGMOD draft" example — among several contacts named Tim, the one
//! whose conversations mention SIGMOD ranks first. Uses compact hashed
//! embeddings (the "smaller models optimized for on-device deployment").

use crate::fuse::{FusedPerson, PersonalOntology};
use saga_core::text::{hash_embed, normalize_phrase, tokenize};
use saga_core::{KnowledgeGraph, Value};
use serde::{Deserialize, Serialize};

/// A ranked person reference resolved from an utterance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResolvedReference {
    /// The mention text in the utterance.
    pub mention: String,
    /// Candidates best-first: `(fused person index, score)`.
    pub ranked: Vec<(usize, f32)>,
}

/// Compact on-device embedding dimension (small by design).
const DEVICE_DIM: usize = 48;

/// Context profile of a fused person: hashed bag of everything they talk
/// about.
pub fn person_context_embedding(
    kg: &KnowledgeGraph,
    handles: &PersonalOntology,
    person: &FusedPerson,
) -> Vec<f32> {
    let mut words: Vec<String> = Vec::new();
    for v in kg.objects(person.entity, handles.talks_about) {
        if let Value::Text(t) = v {
            words.extend(tokenize(&t).into_iter().map(|t| t.text));
        }
    }
    let refs: Vec<&str> = words.iter().map(String::as_str).collect();
    hash_embed(&refs, DEVICE_DIM)
}

/// Resolves person references in an utterance against the fused personal
/// KG, ranking same-name candidates by contextual relevance.
pub fn resolve_references(
    kg: &KnowledgeGraph,
    handles: &PersonalOntology,
    persons: &[FusedPerson],
    utterance: &str,
) -> Vec<ResolvedReference> {
    let toks = tokenize(utterance);
    let utterance_emb = {
        let refs: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        hash_embed(&refs, DEVICE_DIM)
    };

    // Name index: first-name token → person indices.
    let mut out = Vec::new();
    for tok in &toks {
        let matching: Vec<usize> = persons
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                let norm = normalize_phrase(&p.display_name);
                norm.split(' ').next() == Some(tok.text.as_str())
            })
            .map(|(i, _)| i)
            .collect();
        if matching.is_empty() {
            continue;
        }
        let mut ranked: Vec<(usize, f32)> = matching
            .into_iter()
            .map(|i| {
                let ctx = person_context_embedding(kg, handles, &persons[i]);
                // hash_embed outputs are unit-length (or all-zero), so the
                // dot kernel is exactly cosine here — one pass, no norms.
                let relevance = saga_core::kernels::dot(&utterance_emb, &ctx).max(0.0);
                // Popularity of the person on-device (observation count).
                let familiarity = (persons[i].members.len() as f32 / 20.0).min(0.3);
                (i, relevance + familiarity)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out.push(ResolvedReference { mention: tok.text.clone(), ranked });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse_clusters, personal_ontology};
    use crate::sources::{PersonObservation, SourceKind};

    fn obs(name: &str, phone: &str, context: &str, id: u64) -> PersonObservation {
        PersonObservation {
            source: SourceKind::Messages,
            record_id: id,
            name: name.into(),
            phone: Some(phone.into()),
            email: None,
            context: context.into(),
        }
    }

    fn two_tims() -> (KnowledgeGraph, PersonalOntology, Vec<FusedPerson>) {
        let (ont, handles) = personal_ontology();
        let mut kg = KnowledgeGraph::new(ont);
        let observations = vec![
            obs("Tim Archer", "111", "about the sigmod draft comments", 0),
            obs("Tim Archer", "111", "about the sigmod paper review", 1),
            obs("Tim Novak", "222", "about soccer practice on sunday", 2),
            obs("Tim Novak", "222", "about the soccer tournament", 3),
        ];
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let fused = fuse_clusters(&mut kg, &handles, &observations, &clusters);
        (kg, handles, fused)
    }

    #[test]
    fn sigmod_context_ranks_the_coworker_tim_first() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(
            &kg,
            &handles,
            &fused,
            "message Tim that I've added comments to the SIGMOD draft",
        );
        let tim_ref = refs.iter().find(|r| r.mention == "tim").expect("Tim resolved");
        assert_eq!(tim_ref.ranked.len(), 2, "both Tims are candidates");
        let top = &fused[tim_ref.ranked[0].0];
        assert_eq!(top.display_name, "Tim Archer", "SIGMOD context → coworker");
        assert!(tim_ref.ranked[0].1 > tim_ref.ranked[1].1);
    }

    #[test]
    fn soccer_context_flips_the_ranking() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(&kg, &handles, &fused, "tell Tim the soccer practice moved");
        let tim_ref = refs.iter().find(|r| r.mention == "tim").unwrap();
        let top = &fused[tim_ref.ranked[0].0];
        assert_eq!(top.display_name, "Tim Novak", "soccer context → the other Tim");
    }

    #[test]
    fn unknown_names_resolve_to_nothing() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(&kg, &handles, &fused, "call Archibald tomorrow");
        assert!(refs.is_empty());
    }
}
