//! On-device semantic annotation with contextual relevance ranking (paper
//! Sec. 5, *Semantic Annotation*): the "message Tim that I've added comments
//! to the SIGMOD draft" example — among several contacts named Tim, the one
//! whose conversations mention SIGMOD ranks first. Uses compact hashed
//! embeddings (the "smaller models optimized for on-device deployment").

use crate::fuse::{FusedPerson, PersonalOntology};
use crate::spill::{SpillSorter, SpillStats};
use saga_ann::{Metric, QuantizedTable, QuantizedVector};
use saga_core::text::{hash_embed, normalize_phrase, tokenize};
use saga_core::{KnowledgeGraph, Result, Value};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// A ranked person reference resolved from an utterance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedReference {
    /// The mention text in the utterance.
    pub mention: String,
    /// Candidates best-first: `(fused person index, score)`.
    pub ranked: Vec<(usize, f32)>,
}

/// Compact on-device embedding dimension (small by design).
const DEVICE_DIM: usize = 48;

/// Context profile of a fused person: hashed bag of everything they talk
/// about.
pub fn person_context_embedding(
    kg: &KnowledgeGraph,
    handles: &PersonalOntology,
    person: &FusedPerson,
) -> Vec<f32> {
    let mut words: Vec<String> = Vec::new();
    for v in kg.objects(person.entity, handles.talks_about) {
        if let Value::Text(t) = v {
            words.extend(tokenize(&t).into_iter().map(|t| t.text));
        }
    }
    let refs: Vec<&str> = words.iter().map(String::as_str).collect();
    hash_embed(&refs, DEVICE_DIM)
}

/// The compiled on-device serving asset: every fused person's context
/// embedding quantized to i8 (the paper's "floating point precision
/// reduction" compression lever), plus their precomputed familiarity
/// prior. Built once per KG increment; queries score raw i8 rows through
/// the integer kernels without dequantizing and without touching the KG.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextAsset {
    /// First normalized name token per person, mirroring `table` row order.
    first_names: Vec<String>,
    /// Quantized context embeddings; row `i` belongs to person `i`.
    table: QuantizedTable,
    /// Observation-count prior per person, capped at 0.3.
    familiarity: Vec<f32>,
}

impl ContextAsset {
    /// Builds the asset in memory from the fused personal KG.
    pub fn build(kg: &KnowledgeGraph, handles: &PersonalOntology, persons: &[FusedPerson]) -> Self {
        let table = QuantizedTable::build(
            DEVICE_DIM,
            persons
                .iter()
                .enumerate()
                .map(|(i, p)| (i as u64, person_context_embedding(kg, handles, p))),
        );
        Self {
            first_names: persons.iter().map(first_name).collect(),
            table,
            familiarity: persons.iter().map(familiarity).collect(),
        }
    }

    /// Builds the asset with a hard memory budget on the staged rows:
    /// each context embedding is quantized immediately (so only i8 rows
    /// are buffered) and staged through the external [`SpillSorter`],
    /// which spills to `dir` whenever the buffer would exceed
    /// `budget_bytes`. Produces a table identical to [`ContextAsset::build`].
    pub fn build_spilled(
        kg: &KnowledgeGraph,
        handles: &PersonalOntology,
        persons: &[FusedPerson],
        dir: &Path,
        budget_bytes: usize,
    ) -> Result<(Self, SpillStats)> {
        // f32 scales are staged as raw bits because spill items must be
        // totally ordered; the leading index keeps rows in person order.
        let mut sorter: SpillSorter<(u32, u32, Vec<i8>)> = SpillSorter::new(dir, budget_bytes)?;
        for (i, p) in persons.iter().enumerate() {
            let q = QuantizedVector::quantize(&person_context_embedding(kg, handles, p));
            sorter.push((i as u32, q.scale.to_bits(), q.data))?;
        }
        let (rows, stats) = sorter.finish()?;
        let table = QuantizedTable::from_quantized_rows(
            DEVICE_DIM,
            rows.into_iter().map(|(i, scale_bits, data)| {
                (i as u64, QuantizedVector { scale: f32::from_bits(scale_bits), data })
            }),
        );
        let asset = Self {
            first_names: persons.iter().map(first_name).collect(),
            table,
            familiarity: persons.iter().map(familiarity).collect(),
        };
        Ok((asset, stats))
    }

    /// Number of persons in the asset.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True when the asset is empty.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Payload bytes of the quantized embedding table.
    pub fn table_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// Bytes the same embeddings would occupy as f32 rows.
    pub fn f32_table_bytes(&self) -> usize {
        self.table.len() * self.table.dim() * std::mem::size_of::<f32>()
    }
}

fn first_name(p: &FusedPerson) -> String {
    normalize_phrase(&p.display_name).split(' ').next().unwrap_or_default().to_string()
}

fn familiarity(p: &FusedPerson) -> f32 {
    (p.members.len() as f32 / 20.0).min(0.3)
}

/// Resolves person references in an utterance against the fused personal
/// KG, ranking same-name candidates by contextual relevance.
///
/// Convenience wrapper: compiles a [`ContextAsset`] and serves from it.
/// Callers resolving more than one utterance should build the asset once
/// and use [`resolve_references_with_asset`].
pub fn resolve_references(
    kg: &KnowledgeGraph,
    handles: &PersonalOntology,
    persons: &[FusedPerson],
    utterance: &str,
) -> Vec<ResolvedReference> {
    resolve_references_with_asset(&ContextAsset::build(kg, handles, persons), utterance)
}

/// Resolves person references serving entirely from the quantized
/// [`ContextAsset`]: candidate relevance is scored against raw i8 context
/// rows through the integer kernels — no dequantization, no KG access,
/// no per-person f32 context vectors.
pub fn resolve_references_with_asset(
    asset: &ContextAsset,
    utterance: &str,
) -> Vec<ResolvedReference> {
    let toks = tokenize(utterance);
    let utterance_emb = {
        let refs: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        hash_embed(&refs, DEVICE_DIM)
    };

    // Name index: first-name token → person indices.
    let mut out = Vec::new();
    for tok in &toks {
        let matching: Vec<usize> = asset
            .first_names
            .iter()
            .enumerate()
            .filter(|(_, name)| name.as_str() == tok.text.as_str())
            .map(|(i, _)| i)
            .collect();
        if matching.is_empty() {
            continue;
        }
        let mut ranked: Vec<(usize, f32)> = matching
            .into_iter()
            .map(|i| {
                // hash_embed outputs are unit-length (or all-zero), so the
                // mixed-precision dot is cosine up to quantization error —
                // one integer-kernel pass per candidate, no norms.
                let relevance = asset.table.score_row(Metric::Dot, &utterance_emb, i).max(0.0);
                (i, relevance + asset.familiarity[i])
            })
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        out.push(ResolvedReference { mention: tok.text.clone(), ranked });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::{fuse_clusters, personal_ontology};
    use crate::sources::{PersonObservation, SourceKind};

    fn obs(name: &str, phone: &str, context: &str, id: u64) -> PersonObservation {
        PersonObservation {
            source: SourceKind::Messages,
            record_id: id,
            name: name.into(),
            phone: Some(phone.into()),
            email: None,
            context: context.into(),
        }
    }

    fn two_tims() -> (KnowledgeGraph, PersonalOntology, Vec<FusedPerson>) {
        let (ont, handles) = personal_ontology();
        let mut kg = KnowledgeGraph::new(ont);
        let observations = vec![
            obs("Tim Archer", "111", "about the sigmod draft comments", 0),
            obs("Tim Archer", "111", "about the sigmod paper review", 1),
            obs("Tim Novak", "222", "about soccer practice on sunday", 2),
            obs("Tim Novak", "222", "about the soccer tournament", 3),
        ];
        let clusters = vec![vec![0, 1], vec![2, 3]];
        let fused = fuse_clusters(&mut kg, &handles, &observations, &clusters);
        (kg, handles, fused)
    }

    #[test]
    fn sigmod_context_ranks_the_coworker_tim_first() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(
            &kg,
            &handles,
            &fused,
            "message Tim that I've added comments to the SIGMOD draft",
        );
        let tim_ref = refs.iter().find(|r| r.mention == "tim").expect("Tim resolved");
        assert_eq!(tim_ref.ranked.len(), 2, "both Tims are candidates");
        let top = &fused[tim_ref.ranked[0].0];
        assert_eq!(top.display_name, "Tim Archer", "SIGMOD context → coworker");
        assert!(tim_ref.ranked[0].1 > tim_ref.ranked[1].1);
    }

    #[test]
    fn soccer_context_flips_the_ranking() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(&kg, &handles, &fused, "tell Tim the soccer practice moved");
        let tim_ref = refs.iter().find(|r| r.mention == "tim").unwrap();
        let top = &fused[tim_ref.ranked[0].0];
        assert_eq!(top.display_name, "Tim Novak", "soccer context → the other Tim");
    }

    #[test]
    fn unknown_names_resolve_to_nothing() {
        let (kg, handles, fused) = two_tims();
        let refs = resolve_references(&kg, &handles, &fused, "call Archibald tomorrow");
        assert!(refs.is_empty());
    }

    #[test]
    fn asset_serving_matches_direct_resolution() {
        let (kg, handles, fused) = two_tims();
        let asset = ContextAsset::build(&kg, &handles, &fused);
        for utterance in [
            "message Tim that I've added comments to the SIGMOD draft",
            "tell Tim the soccer practice moved",
            "call Archibald tomorrow",
        ] {
            let direct = resolve_references(&kg, &handles, &fused, utterance);
            let served = resolve_references_with_asset(&asset, utterance);
            assert_eq!(direct.len(), served.len(), "{utterance}");
            for (d, s) in direct.iter().zip(&served) {
                assert_eq!(d.mention, s.mention);
                let d_order: Vec<usize> = d.ranked.iter().map(|r| r.0).collect();
                let s_order: Vec<usize> = s.ranked.iter().map(|r| r.0).collect();
                assert_eq!(d_order, s_order, "{utterance}: ranking diverged");
            }
        }
    }

    #[test]
    fn asset_is_smaller_than_f32_context_vectors() {
        let (kg, handles, fused) = two_tims();
        let asset = ContextAsset::build(&kg, &handles, &fused);
        assert_eq!(asset.len(), fused.len());
        // Quantized row = dim i8 + scale + norm + id; f32 row = 4·dim.
        // At DEVICE_DIM = 48 that is a 3× reduction, 4× on the payload.
        assert!(
            asset.table_bytes() * 2 < asset.f32_table_bytes(),
            "{} vs {}",
            asset.table_bytes(),
            asset.f32_table_bytes()
        );
    }

    #[test]
    fn spilled_build_matches_in_memory_build() {
        // A population large enough that the tiny budget must spill runs.
        let (ont, handles) = personal_ontology();
        let mut kg = KnowledgeGraph::new(ont);
        let names = ["tim", "ana", "bo", "cy", "dee", "eli", "fay", "gus"];
        let observations: Vec<PersonObservation> = (0..40u64)
            .map(|i| {
                obs(
                    &format!("{} Surname{i}", names[(i % 8) as usize]),
                    &format!("{i}"),
                    &format!("topic {i} about project {}", i % 5),
                    i,
                )
            })
            .collect();
        let clusters: Vec<Vec<usize>> = (0..40).map(|i| vec![i]).collect();
        let fused = fuse_clusters(&mut kg, &handles, &observations, &clusters);
        let dir = std::env::temp_dir()
            .join("saga-asset-tests")
            .join(format!("{}-spilled", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let budget = 1024;
        let (spilled, stats) =
            ContextAsset::build_spilled(&kg, &handles, &fused, &dir, budget).unwrap();
        assert_eq!(stats.items, fused.len());
        assert!(stats.runs_spilled > 0, "tiny budget must spill");
        assert!(
            stats.peak_memory_bytes <= budget + 512,
            "peak {} exceeds budget {budget}",
            stats.peak_memory_bytes
        );
        let in_memory = ContextAsset::build(&kg, &handles, &fused);
        for utterance in ["message tim about project 3", "ask ana about topic 9"] {
            assert_eq!(
                resolve_references_with_asset(&spilled, utterance),
                resolve_references_with_asset(&in_memory, utterance),
                "{utterance}"
            );
        }
    }
}
