//! Entity resolution: normalization, blocking, pairwise matching, and
//! union-find clustering (the Fig. 7 "three Tims → one Person" task).

use crate::sources::PersonObservation;
use crate::spill::{SpillSorter, SpillStats};
use saga_core::text::{jaccard, normalize_phrase};
use saga_core::Result;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;

/// Normalizes a phone number to digits only (drops a leading country `1`
/// for 11-digit North-American numbers).
pub fn normalize_phone(phone: &str) -> String {
    let digits: String = phone.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() == 11 && digits.starts_with('1') {
        digits[1..].to_owned()
    } else {
        digits
    }
}

/// Normalizes an email address (lowercase, trimmed).
pub fn normalize_email(email: &str) -> String {
    email.trim().to_lowercase()
}

/// A blocking key: observations sharing a key become candidate pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BlockKey {
    /// Normalized phone number.
    Phone(String),
    /// Normalized email address.
    Email(String),
    /// First name token (catches short-form message senders).
    NameToken(String),
}

/// Emits the blocking keys of one observation.
pub fn block_keys(o: &PersonObservation) -> Vec<BlockKey> {
    let mut keys = Vec::new();
    if let Some(p) = &o.phone {
        let n = normalize_phone(p);
        if !n.is_empty() {
            keys.push(BlockKey::Phone(n));
        }
    }
    if let Some(e) = &o.email {
        let n = normalize_email(e);
        if !n.is_empty() {
            keys.push(BlockKey::Email(n));
        }
    }
    if let Some(first) = normalize_phrase(&o.name).split(' ').next() {
        if !first.is_empty() {
            keys.push(BlockKey::NameToken(first.to_owned()));
        }
    }
    keys
}

/// Pairwise-blocking output: candidate pairs of observation indices.
#[derive(Debug, Clone, Default)]
pub struct BlockingResult {
    /// Candidate observation-index pairs.
    pub pairs: Vec<(usize, usize)>,
    /// Spill-sorter statistics of the blocking run.
    pub spill_stats: SpillStats,
}

/// Memory-bounded blocking: sorts `(key, index)` pairs with a spill sorter
/// and emits candidate pairs within each key group (groups capped to avoid
/// quadratic blowup on hub keys like very common first names).
pub fn block_observations(
    observations: &[PersonObservation],
    spill_dir: &Path,
    memory_budget: usize,
    max_block_size: usize,
) -> Result<BlockingResult> {
    let mut sorter: SpillSorter<(BlockKey, usize)> = SpillSorter::new(spill_dir, memory_budget)?;
    for (i, o) in observations.iter().enumerate() {
        for k in block_keys(o) {
            sorter.push((k, i))?;
        }
    }
    let (sorted, spill_stats) = sorter.finish()?;

    let mut pairs = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i;
        while j + 1 < sorted.len() && sorted[j + 1].0 == sorted[i].0 {
            j += 1;
        }
        let group = &sorted[i..=j];
        if group.len() <= max_block_size {
            for a in 0..group.len() {
                for b in a + 1..group.len() {
                    let (x, y) = (group[a].1, group[b].1);
                    if x != y {
                        pairs.push((x.min(y), x.max(y)));
                    }
                }
            }
        }
        i = j + 1;
    }
    pairs.sort_unstable();
    pairs.dedup();
    Ok(BlockingResult { pairs, spill_stats })
}

/// Match decision features and score.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MatchScore {
    /// Exact normalized-phone agreement.
    pub phone_match: bool,
    /// Exact normalized-email agreement.
    pub email_match: bool,
    /// Token-Jaccard name similarity.
    pub name_similarity: f32,
    /// Score; higher is better.
    pub score: f32,
}

/// Scores an observation pair. Strong identifiers (phone/email) dominate;
/// name similarity alone is not sufficient (two different Tims must NOT
/// merge on first name).
pub fn score_pair(a: &PersonObservation, b: &PersonObservation) -> MatchScore {
    let phone_match = match (&a.phone, &b.phone) {
        (Some(x), Some(y)) => normalize_phone(x) == normalize_phone(y),
        _ => false,
    };
    let email_match = match (&a.email, &b.email) {
        (Some(x), Some(y)) => normalize_email(x) == normalize_email(y),
        _ => false,
    };
    let name_similarity = jaccard(&a.name, &b.name);
    // First-name containment (message "Tim" vs contact "Tim Archer").
    let a_first = normalize_phrase(&a.name);
    let b_first = normalize_phrase(&b.name);
    let name_compatible = a_first.split(' ').next() == b_first.split(' ').next();

    let mut score = 0.0f32;
    if phone_match {
        score += 1.0;
    }
    if email_match {
        score += 1.0;
    }
    if name_compatible {
        score += 0.2 * (0.5 + name_similarity / 2.0);
    }
    MatchScore { phone_match, email_match, name_similarity, score }
}

/// Union-find over observation indices.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    /// Creates a new instance.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    /// Finds the root of an element (path compression).
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Merges the sets containing `a` and `b`.
    pub fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }

    /// Clusters as lists of member indices, sorted for determinism.
    pub fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for x in 0..n {
            let r = self.find(x);
            groups.entry(r).or_default().push(x);
        }
        let mut out: Vec<Vec<usize>> = groups.into_values().collect();
        out.sort_by_key(|g| g[0]);
        out
    }
}

/// Full matching: blocking → pairwise scoring → transitive clustering.
/// Pairs with `score >= threshold` merge.
pub fn resolve_entities(
    observations: &[PersonObservation],
    spill_dir: &Path,
    memory_budget: usize,
    threshold: f32,
) -> Result<(Vec<Vec<usize>>, SpillStats)> {
    let blocking = block_observations(observations, spill_dir, memory_budget, 256)?;
    let mut uf = UnionFind::new(observations.len());
    for (a, b) in &blocking.pairs {
        let s = score_pair(&observations[*a], &observations[*b]);
        if s.score >= threshold {
            uf.union(*a, *b);
        }
    }
    Ok((uf.clusters(), blocking.spill_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sources::{generate_device_data, DeviceDataConfig, SourceKind};

    fn spill_dir(name: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir()
            .join("saga-match-tests")
            .join(format!("{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn phone_and_email_normalization() {
        assert_eq!(normalize_phone("+1 555 123 4567"), "5551234567");
        assert_eq!(normalize_phone("555-123-4567"), "5551234567");
        assert_eq!(normalize_phone("+44 20 7946 0958"), "442079460958");
        assert_eq!(normalize_email(" Tim.Archer@Example.COM "), "tim.archer@example.com");
    }

    #[test]
    fn the_three_tims_consolidate() {
        // Fig. 7: contact + message sender + calendar invitee, linked via
        // phone (contact↔message) and email (contact↔calendar).
        let obs = vec![
            PersonObservation {
                source: SourceKind::Contacts,
                record_id: 0,
                name: "Tim Archer".into(),
                phone: Some("+1 555 111 2222".into()),
                email: Some("tim@example.com".into()),
                context: String::new(),
            },
            PersonObservation {
                source: SourceKind::Messages,
                record_id: 1,
                name: "Tim".into(),
                phone: Some("5551112222".into()),
                email: None,
                context: "about the sigmod draft".into(),
            },
            PersonObservation {
                source: SourceKind::Calendar,
                record_id: 2,
                name: "Tim Archer".into(),
                phone: None,
                email: Some("TIM@example.com".into()),
                context: "meeting: sigmod draft".into(),
            },
            // A different Tim: same first name, different identifiers.
            PersonObservation {
                source: SourceKind::Contacts,
                record_id: 3,
                name: "Tim Novak".into(),
                phone: Some("+1 555 999 8888".into()),
                email: Some("tnovak@example.com".into()),
                context: String::new(),
            },
        ];
        let (clusters, _) = resolve_entities(&obs, &spill_dir("tims"), 1 << 20, 0.9).unwrap();
        let non_singleton: Vec<_> = clusters.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(non_singleton.len(), 1, "exactly one merged Tim: {clusters:?}");
        assert_eq!(non_singleton[0], &vec![0, 1, 2]);
        // Tim Novak stays separate.
        assert!(clusters.iter().any(|c| c == &vec![3]));
    }

    #[test]
    fn resolution_matches_ground_truth_well() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(21));
        let (clusters, _) = resolve_entities(&obs, &spill_dir("truth"), 1 << 20, 0.9).unwrap();
        // Pairwise precision/recall vs ground truth.
        let mut owner_of = vec![0usize; obs.len()];
        for (i, o) in obs.iter().enumerate() {
            owner_of[i] = truth.owner[&(o.source, o.record_id)];
        }
        let mut cluster_of = vec![usize::MAX; obs.len()];
        for (ci, c) in clusters.iter().enumerate() {
            for &i in c {
                cluster_of[i] = ci;
            }
        }
        let (mut tp, mut fp, mut fn_) = (0u64, 0u64, 0u64);
        for i in 0..obs.len() {
            for j in i + 1..obs.len() {
                let same_truth = owner_of[i] == owner_of[j];
                let same_pred = cluster_of[i] == cluster_of[j];
                match (same_pred, same_truth) {
                    (true, true) => tp += 1,
                    (true, false) => fp += 1,
                    (false, true) => fn_ += 1,
                    _ => {}
                }
            }
        }
        let precision = tp as f64 / (tp + fp).max(1) as f64;
        let recall = tp as f64 / (tp + fn_).max(1) as f64;
        assert!(precision > 0.95, "precision {precision}");
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn blocking_respects_memory_budget() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(22));
        let budget = 8 * 1024;
        let r = block_observations(&obs, &spill_dir("budget"), budget, 256).unwrap();
        assert!(r.spill_stats.peak_memory_bytes <= budget + 256);
        assert!(r.spill_stats.runs_spilled > 0);
        assert!(!r.pairs.is_empty());
    }

    #[test]
    fn union_find_transitivity() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
        let clusters = uf.clusters();
        assert_eq!(clusters.len(), 3);
        assert_eq!(clusters[0], vec![0, 1, 2]);
    }
}
