//! Memory-bounded external sorting — the disk-oriented, tunable-buffer
//! construction primitive of paper Sec. 5 ("Resource Constraints"):
//! "expensive computations (e.g., pairwise blocking ...) spill to disk as
//! necessary" and "the amount of memory used is bounded".
//!
//! Invariant (checked by tests and experiment E7): peak buffered bytes
//! never exceed the configured budget, regardless of input size.

use saga_core::persist::{FrameReader, FrameWriter};
use saga_core::{Result, SagaError};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::{Path, PathBuf};

/// Statistics of one spill-sort run.
#[derive(Debug, Clone, Copy, Default, Serialize, serde::Deserialize)]
pub struct SpillStats {
    /// Sorted runs written to disk.
    pub runs_spilled: usize,
    /// Peak in-memory buffer size in bytes (serialized measure).
    pub peak_memory_bytes: usize,
    /// Bytes written to spill runs.
    pub bytes_spilled: usize,
    /// Items pushed into the sorter.
    pub items: usize,
}

impl SpillStats {
    /// Record this run through an obs scope (call once per run — counters
    /// add): one counter per field; `peak_memory_bytes` is recorded as a
    /// high-water mark counter, meaningful only for a single run per scope.
    pub fn record_to(&self, scope: &saga_core::obs::Scope) {
        scope.counter("runs_spilled").add(self.runs_spilled as u64);
        scope.counter("peak_memory_bytes").add(self.peak_memory_bytes as u64);
        scope.counter("bytes_spilled").add(self.bytes_spilled as u64);
        scope.counter("items").add(self.items as u64);
    }
}

/// External sorter with a hard memory budget. Items are measured by their
/// serialized size; when the buffer would exceed the budget it is sorted
/// and spilled as a run, and `finish` k-way-merges all runs.
pub struct SpillSorter<T> {
    budget_bytes: usize,
    dir: PathBuf,
    buffer: Vec<T>,
    buffered_bytes: usize,
    runs: Vec<PathBuf>,
    stats: SpillStats,
}

impl<T: Serialize + DeserializeOwned + Ord> SpillSorter<T> {
    /// Creates a sorter spilling into `dir` with the given budget.
    pub fn new(dir: &Path, budget_bytes: usize) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            budget_bytes: budget_bytes.max(1024),
            dir: dir.to_path_buf(),
            buffer: Vec::new(),
            buffered_bytes: 0,
            runs: Vec::new(),
            stats: SpillStats::default(),
        })
    }

    /// Adds an item, spilling the buffer first if it would exceed budget.
    pub fn push(&mut self, item: T) -> Result<()> {
        let size = serde_json::to_vec(&item)?.len();
        if self.buffered_bytes + size > self.budget_bytes && !self.buffer.is_empty() {
            self.spill_run()?;
        }
        self.buffered_bytes += size;
        self.stats.peak_memory_bytes = self.stats.peak_memory_bytes.max(self.buffered_bytes);
        self.stats.items += 1;
        self.buffer.push(item);
        Ok(())
    }

    fn spill_run(&mut self) -> Result<()> {
        self.buffer.sort();
        let path = self.dir.join(format!("run-{}.spill", self.runs.len()));
        let mut w = FrameWriter::create(&path)?;
        for item in self.buffer.drain(..) {
            let bytes = serde_json::to_vec(&item)?;
            self.stats.bytes_spilled += bytes.len();
            w.write(&bytes)?;
        }
        w.flush()?;
        self.runs.push(path);
        self.stats.runs_spilled += 1;
        self.buffered_bytes = 0;
        Ok(())
    }

    /// Finishes: returns all items in sorted order plus the run stats, then
    /// removes the spill files. Runs are streamed frame-by-frame, so merge
    /// memory is one head item per run.
    pub fn finish(mut self) -> Result<(Vec<T>, SpillStats)> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        self.buffer.sort();
        // Source 0 is the in-memory buffer; sources 1..=n are disk runs.
        let mut memory: std::collections::VecDeque<T> = self.buffer.drain(..).collect();
        let mut readers: Vec<FrameReader> = Vec::new();
        for r in &self.runs {
            readers.push(FrameReader::open(r)?);
        }
        let next_from = |src: usize,
                         memory: &mut std::collections::VecDeque<T>,
                         readers: &mut Vec<FrameReader>|
         -> Result<Option<T>> {
            if src == 0 {
                Ok(memory.pop_front())
            } else {
                match readers[src - 1].next_frame()? {
                    Some(bytes) => Ok(Some(serde_json::from_slice(&bytes)?)),
                    None => Ok(None),
                }
            }
        };

        let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::new();
        for src in 0..=readers.len() {
            if let Some(v) = next_from(src, &mut memory, &mut readers)? {
                heap.push(Reverse((v, src)));
            }
        }
        let mut out = Vec::with_capacity(self.stats.items);
        while let Some(Reverse((v, src))) = heap.pop() {
            out.push(v);
            if let Some(next) = next_from(src, &mut memory, &mut readers)? {
                heap.push(Reverse((next, src)));
            }
        }

        for r in &self.runs {
            std::fs::remove_file(r).ok();
        }
        if out.len() != self.stats.items {
            return Err(SagaError::Corrupt(format!(
                "spill merge lost items: {} != {}",
                out.len(),
                self.stats.items
            )));
        }
        Ok((out, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("saga-spill-tests")
            .join(format!("{}-{name}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn sorts_like_in_memory() {
        let d = dir("sorts");
        let mut sorter: SpillSorter<(u32, String)> = SpillSorter::new(&d, 2048).unwrap();
        let mut expected = Vec::new();
        for i in 0..500u32 {
            let item = ((i * 7919) % 500, format!("payload-{i}"));
            expected.push(item.clone());
            sorter.push(item).unwrap();
        }
        expected.sort();
        let (got, stats) = sorter.finish().unwrap();
        assert_eq!(got, expected);
        assert!(stats.runs_spilled > 0, "tiny budget must spill");
        assert_eq!(stats.items, 500);
    }

    #[test]
    fn memory_budget_is_respected() {
        let d = dir("budget");
        let budget = 4096;
        let mut sorter: SpillSorter<(u64, String)> = SpillSorter::new(&d, budget).unwrap();
        for i in 0..2000u64 {
            sorter.push((i.wrapping_mul(0x9e3779b9) % 2000, "x".repeat(40))).unwrap();
        }
        let (_, stats) = sorter.finish().unwrap();
        assert!(
            stats.peak_memory_bytes <= budget + 128,
            "peak {} exceeds budget {budget}",
            stats.peak_memory_bytes
        );
    }

    #[test]
    fn large_budget_never_spills() {
        let d = dir("nospill");
        let mut sorter: SpillSorter<u32> = SpillSorter::new(&d, 1 << 24).unwrap();
        for i in (0..100).rev() {
            sorter.push(i).unwrap();
        }
        let (got, stats) = sorter.finish().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<u32>>());
        assert_eq!(stats.runs_spilled, 0);
        assert_eq!(stats.bytes_spilled, 0);
    }

    #[test]
    fn empty_input() {
        let d = dir("empty");
        let sorter: SpillSorter<u32> = SpillSorter::new(&d, 4096).unwrap();
        let (got, stats) = sorter.finish().unwrap();
        assert!(got.is_empty());
        assert_eq!(stats.items, 0);
    }

    #[test]
    fn duplicates_preserved() {
        let d = dir("dups");
        let mut sorter: SpillSorter<u8> = SpillSorter::new(&d, 1024).unwrap();
        for _ in 0..300 {
            sorter.push(7).unwrap();
        }
        let (got, _) = sorter.finish().unwrap();
        assert_eq!(got.len(), 300);
        assert!(got.iter().all(|&x| x == 7));
    }
}
