//! # saga-ondevice
//!
//! Private on-device knowledge (paper Sec. 5): personal KG construction
//! from contacts/messages/calendar with entity resolution and fusion
//! (Fig. 7), a pausable incremental construction pipeline, memory-bounded
//! spill-to-disk operators, per-source cross-device sync with computation
//! offload, on-device semantic annotation with contextual relevance
//! ranking, and the three global-knowledge enrichment paths (static asset,
//! piggyback, PIR/DP private retrieval).

#![warn(missing_docs)]

pub mod assistant;
pub mod enrich;
pub mod fuse;
pub mod matching;
pub mod personalize;
pub mod pipeline;
pub mod sources;
pub mod spill;
pub mod sync;

pub use assistant::{
    person_context_embedding, resolve_references, resolve_references_with_asset, ContextAsset,
    ResolvedReference,
};
pub use enrich::{
    decode_pir_block, dp_count, piggyback_answer, pir_fetch, EnrichmentPath, GlobalKnowledge,
    PirDatabase, PirFetch, StaticAsset,
};
pub use fuse::{fuse_clusters, personal_ontology, FusedPerson, PersonalOntology};
pub use matching::{
    block_observations, normalize_email, normalize_phone, resolve_entities, score_pair, BlockKey,
    MatchScore, UnionFind,
};
pub use personalize::{build_preferences, recommend, PreferenceProfile};
pub use pipeline::{ConstructionPipeline, IncrementReport, PipelineConfig, Stage};
pub use sources::{
    generate_device_data, DeviceDataConfig, DeviceTruth, PersonObservation, SourceKind, TruePerson,
};
pub use spill::{SpillSorter, SpillStats};
pub use sync::{
    gossip_until_stable, gossip_until_stable_lossy, offload_compute, sync_pair, sync_pair_lossy,
    Device, DeviceId, DeviceTier, DivergenceClock, EntityUpdate, LossyLink, SourceOp, SyncPolicy,
    SyncReport, ViewArtifact,
};
