//! On-device data sources (contacts, messages, calendar) and the synthetic
//! device-data generator with entity-resolution ground truth.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which on-device source a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SourceKind {
    /// The address book.
    Contacts,
    /// Message threads (sender observations).
    Messages,
    /// Calendar events (invitee observations).
    Calendar,
}

impl SourceKind {
    /// All source kinds.
    pub const ALL: [SourceKind; 3] =
        [SourceKind::Contacts, SourceKind::Messages, SourceKind::Calendar];
}

/// A normalized observation of a person from one source record — the unit
/// the entity-resolution pipeline consumes. (Fig. 7: contact cards, message
/// senders and calendar invitees all observe "Tim" differently.)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PersonObservation {
    /// Originating source kind.
    pub source: SourceKind,
    /// Record id within the source.
    pub record_id: u64,
    /// Name as it appeared (may be a short form).
    pub name: String,
    /// Phone number(s).
    pub phone: Option<String>,
    /// Email address(es).
    pub email: Option<String>,
    /// Free-text context (message text, event title) for contextual
    /// relevance ranking.
    pub context: String,
}

/// Ground truth for the generator: which observations belong to which
/// person.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DeviceTruth {
    /// `(source, record_id)` → ground-truth person index.
    pub owner: std::collections::HashMap<(SourceKind, u64), usize>,
    /// Ground-truth person profiles.
    pub persons: Vec<TruePerson>,
}

/// A ground-truth person on the device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TruePerson {
    /// Canonical full name.
    pub full_name: String,
    /// Phone number(s).
    pub phone: String,
    /// Email address(es).
    pub email: String,
    /// Topics this person talks about (drives message content).
    pub topics: Vec<String>,
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceDataConfig {
    /// RNG seed (determinism).
    pub seed: u64,
    /// Ground-truth persons to generate.
    pub num_persons: usize,
    /// Messages per person (average).
    pub messages_per_person: usize,
    /// Calendar events per person (average).
    pub events_per_person: usize,
    /// Fraction of persons sharing a first name with someone else (the
    /// "two Tims" ambiguity).
    pub first_name_collision_rate: f64,
}

impl Default for DeviceDataConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            num_persons: 300,
            messages_per_person: 4,
            events_per_person: 2,
            first_name_collision_rate: 0.2,
        }
    }
}

impl DeviceDataConfig {
    /// Small dataset for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self { seed, num_persons: 40, ..Self::default() }
    }
}

const FIRSTS: &[&str] = &[
    "tim", "anna", "miguel", "sara", "leo", "nina", "omar", "ruth", "ivan", "mei", "kai", "zoe",
    "raj", "lucy", "sam", "vera", "hugo", "iris", "noel", "dana",
];
const LASTS: &[&str] = &[
    "archer",
    "bellamy",
    "cruz",
    "dalton",
    "ellis",
    "fontaine",
    "grieves",
    "holt",
    "imai",
    "jensen",
    "kovacs",
    "lindqvist",
    "moreau",
    "novak",
    "ortega",
    "petrov",
    "quirke",
    "rossi",
    "sato",
    "tanaka",
];
const TOPICS: &[&str] = &[
    "sigmod draft",
    "quarterly budget",
    "soccer practice",
    "book club",
    "road trip",
    "house renovation",
    "piano recital",
    "tax filing",
    "hiking plan",
    "birthday party",
];

/// Generates device observations and their ground truth. Deterministic.
pub fn generate_device_data(cfg: &DeviceDataConfig) -> (Vec<PersonObservation>, DeviceTruth) {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut truth = DeviceTruth::default();
    let mut observations = Vec::new();
    let mut record_id = 0u64;

    // Build persons; force some first-name collisions.
    let mut used_firsts: Vec<&str> = Vec::new();
    for i in 0..cfg.num_persons {
        let first = if !used_firsts.is_empty() && rng.gen_bool(cfg.first_name_collision_rate) {
            used_firsts[rng.gen_range(0..used_firsts.len())]
        } else {
            let f = FIRSTS[rng.gen_range(0..FIRSTS.len())];
            used_firsts.push(f);
            f
        };
        let last = LASTS[rng.gen_range(0..LASTS.len())];
        let full_name =
            format!("{} {}", saga_core::synth::titlecase(first), saga_core::synth::titlecase(last));
        let phone = format!("+1 555 {:03} {:04}", i % 1000, rng.gen_range(0..10000));
        let email = format!("{first}.{last}{i}@example.com");
        let topics: Vec<String> =
            (0..2).map(|_| TOPICS[rng.gen_range(0..TOPICS.len())].to_owned()).collect();
        truth.persons.push(TruePerson { full_name, phone, email, topics });
    }

    for (pi, person) in truth.persons.iter().enumerate() {
        let first = person.full_name.split(' ').next().unwrap().to_owned();

        // Contact card: full name + phone + email.
        observations.push(PersonObservation {
            source: SourceKind::Contacts,
            record_id,
            name: person.full_name.clone(),
            phone: Some(person.phone.clone()),
            email: Some(person.email.clone()),
            context: String::new(),
        });
        truth.owner.insert((SourceKind::Contacts, record_id), pi);
        record_id += 1;

        // Messages: short-form name + phone, topical text.
        let n_msgs = 1 + rng.gen_range(0..cfg.messages_per_person * 2);
        for _ in 0..n_msgs {
            let topic = &person.topics[rng.gen_range(0..person.topics.len())];
            observations.push(PersonObservation {
                source: SourceKind::Messages,
                record_id,
                name: first.clone(),
                phone: Some(person.phone.clone()),
                email: None,
                context: format!("about the {topic}"),
            });
            truth.owner.insert((SourceKind::Messages, record_id), pi);
            record_id += 1;
        }

        // Calendar invitees: full name + email, event-title context.
        let n_events = 1 + rng.gen_range(0..cfg.events_per_person * 2);
        for _ in 0..n_events {
            let topic = &person.topics[rng.gen_range(0..person.topics.len())];
            observations.push(PersonObservation {
                source: SourceKind::Calendar,
                record_id,
                name: person.full_name.clone(),
                phone: None,
                email: Some(person.email.clone()),
                context: format!("meeting: {topic}"),
            });
            truth.owner.insert((SourceKind::Calendar, record_id), pi);
            record_id += 1;
        }
    }

    (observations, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_complete() {
        let (a, ta) = generate_device_data(&DeviceDataConfig::tiny(1));
        let (b, _) = generate_device_data(&DeviceDataConfig::tiny(1));
        assert_eq!(a, b);
        assert_eq!(ta.owner.len(), a.len());
        for o in &a {
            assert!(ta.owner.contains_key(&(o.source, o.record_id)));
        }
    }

    #[test]
    fn all_sources_observed_per_person() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(2));
        for pi in 0..truth.persons.len() {
            for kind in SourceKind::ALL {
                assert!(
                    obs.iter()
                        .any(|o| o.source == kind && truth.owner[&(o.source, o.record_id)] == pi),
                    "person {pi} missing {kind:?}"
                );
            }
        }
    }

    #[test]
    fn name_collisions_exist() {
        let (_, truth) = generate_device_data(&DeviceDataConfig::tiny(3));
        let mut firsts: std::collections::HashMap<&str, usize> = Default::default();
        for p in &truth.persons {
            *firsts.entry(p.full_name.split(' ').next().unwrap()).or_default() += 1;
        }
        assert!(firsts.values().any(|&c| c > 1), "some first names must collide");
    }

    #[test]
    fn message_observations_use_short_names() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(4));
        let msg = obs.iter().find(|o| o.source == SourceKind::Messages).unwrap();
        let person = &truth.persons[truth.owner[&(msg.source, msg.record_id)]];
        assert_eq!(msg.name, person.full_name.split(' ').next().unwrap());
        assert!(msg.email.is_none());
        assert!(msg.phone.is_some());
    }
}
