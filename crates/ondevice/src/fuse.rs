//! Graph fusion: turning observation clusters into a consolidated personal
//! knowledge graph in a unified ontology (Fig. 7, right side).

use crate::sources::{PersonObservation, SourceKind};
use saga_core::{EntityBuilder, EntityId, KnowledgeGraph, Ontology, Triple, Value, ValueKind};
use serde::{Deserialize, Serialize};

/// Predicate/type handles of the personal ontology.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PersonalOntology {
    /// The person type.
    pub person: saga_core::TypeId,
    /// Phone number(s).
    pub phone: saga_core::PredicateId,
    /// Email address(es).
    pub email: saga_core::PredicateId,
    /// Name as observed in a source.
    pub observed_name: saga_core::PredicateId,
    /// Topical context facts.
    pub talks_about: saga_core::PredicateId,
}

/// Builds the unified personal ontology.
pub fn personal_ontology() -> (Ontology, PersonalOntology) {
    use saga_core::{Cardinality::Multi, Volatility::Slow};
    let mut o = Ontology::new();
    let person = o.add_type("person", None);
    let handles = PersonalOntology {
        person,
        phone: o.add_predicate(
            "phone",
            "phone number",
            ValueKind::Text,
            Some(person),
            Multi,
            Slow,
            true,
        ),
        email: o.add_predicate(
            "email",
            "email address",
            ValueKind::Text,
            Some(person),
            Multi,
            Slow,
            true,
        ),
        observed_name: o.add_predicate(
            "observed_name",
            "observed name",
            ValueKind::Text,
            Some(person),
            Multi,
            Slow,
            true,
        ),
        talks_about: o.add_predicate(
            "talks_about",
            "talks about",
            ValueKind::Text,
            Some(person),
            Multi,
            Slow,
            false,
        ),
    };
    (o, handles)
}

/// A fused person entity with its source provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FusedPerson {
    /// The entity concerned.
    pub entity: EntityId,
    /// Longest observed name (canonical display).
    pub display_name: String,
    /// Member observations as `(source, record_id)`.
    pub members: Vec<(SourceKind, u64)>,
}

/// Fuses clusters into `kg`, returning the fused person records. Each
/// cluster becomes one Person entity with phone/email/name facts and
/// topical context facts (for contextual relevance ranking).
pub fn fuse_clusters(
    kg: &mut KnowledgeGraph,
    handles: &PersonalOntology,
    observations: &[PersonObservation],
    clusters: &[Vec<usize>],
) -> Vec<FusedPerson> {
    let mut out = Vec::with_capacity(clusters.len());
    for cluster in clusters {
        let members: Vec<&PersonObservation> = cluster.iter().map(|&i| &observations[i]).collect();
        let display_name =
            members.iter().map(|o| o.name.clone()).max_by_key(|n| n.len()).unwrap_or_default();

        let entity = kg.add_entity(
            EntityBuilder::new(&display_name, handles.person)
                .description("personal contact")
                .popularity((cluster.len() as f32 / 10.0).min(1.0)),
        );
        for o in &members {
            let src = kg.register_source(source_name(o.source));
            if let Some(p) = &o.phone {
                kg.insert_with(
                    Triple::new(
                        entity,
                        handles.phone,
                        Value::Text(crate::matching::normalize_phone(p)),
                    ),
                    src,
                    1.0,
                );
            }
            if let Some(e) = &o.email {
                kg.insert_with(
                    Triple::new(
                        entity,
                        handles.email,
                        Value::Text(crate::matching::normalize_email(e)),
                    ),
                    src,
                    1.0,
                );
            }
            kg.insert_with(
                Triple::new(entity, handles.observed_name, Value::Text(o.name.clone())),
                src,
                1.0,
            );
            if !o.context.is_empty() {
                kg.insert_with(
                    Triple::new(entity, handles.talks_about, Value::Text(o.context.clone())),
                    src,
                    0.8,
                );
            }
        }
        out.push(FusedPerson {
            entity,
            display_name,
            members: members.iter().map(|o| (o.source, o.record_id)).collect(),
        });
    }
    kg.commit();
    out
}

fn source_name(kind: SourceKind) -> &'static str {
    match kind {
        SourceKind::Contacts => "contacts",
        SourceKind::Messages => "messages",
        SourceKind::Calendar => "calendar",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::resolve_entities;
    use crate::sources::{generate_device_data, DeviceDataConfig};

    #[test]
    fn fusion_builds_consolidated_entities() {
        let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(31));
        let dir = std::env::temp_dir().join(format!("saga-fuse-{}", std::process::id()));
        let (clusters, _) = resolve_entities(&obs, &dir, 1 << 20, 0.9).unwrap();
        let (ont, handles) = personal_ontology();
        let mut kg = KnowledgeGraph::new(ont);
        let fused = fuse_clusters(&mut kg, &handles, &obs, &clusters);
        assert_eq!(fused.len(), clusters.len());
        // Cluster count should approximate the true person count.
        let diff = (fused.len() as i64 - truth.persons.len() as i64).abs();
        assert!(
            diff <= (truth.persons.len() / 5) as i64,
            "clusters {} vs persons {}",
            fused.len(),
            truth.persons.len()
        );
        // Each fused person has phone and email facts (contact always present).
        let multi: Vec<&FusedPerson> = fused.iter().filter(|f| f.members.len() > 1).collect();
        assert!(!multi.is_empty());
        for f in multi.iter().take(10) {
            assert!(!kg.objects(f.entity, handles.phone).is_empty());
            assert!(!kg.objects(f.entity, handles.observed_name).is_empty());
        }
        kg.check_invariants().unwrap();
    }

    #[test]
    fn display_name_prefers_full_form() {
        let (obs, _) = generate_device_data(&DeviceDataConfig::tiny(31));
        let dir = std::env::temp_dir().join(format!("saga-fuse2-{}", std::process::id()));
        let (clusters, _) = resolve_entities(&obs, &dir, 1 << 20, 0.9).unwrap();
        let (ont, handles) = personal_ontology();
        let mut kg = KnowledgeGraph::new(ont);
        let fused = fuse_clusters(&mut kg, &handles, &obs, &clusters);
        for f in fused.iter().filter(|f| f.members.len() > 2).take(10) {
            assert!(
                f.display_name.contains(' '),
                "multi-source person uses full name, got {:?}",
                f.display_name
            );
        }
    }
}
