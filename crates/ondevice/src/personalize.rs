//! Private personalization from global knowledge (paper Sec. 5, *Global
//! Knowledge Enrichment*): "knowing the typical genre and release year of
//! music the user likes to listen to can help personalize music
//! recommendations" — computed entirely on-device from the user's private
//! listening history joined against the (privately obtained) global facts.

use crate::enrich::GlobalKnowledge;
use saga_core::{EntityId, PredicateId, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An aggregated preference profile.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PreferenceProfile {
    /// Genre entity → interaction count, most preferred first.
    pub genres: Vec<(EntityId, usize)>,
    /// Mean release year of consumed items (None without date facts).
    pub typical_release_year: Option<f64>,
    /// History items that had no covering global facts — candidates for
    /// private retrieval (enrichment path 3).
    pub uncovered: Vec<EntityId>,
}

/// Builds a preference profile from a private interaction history (e.g.
/// played songs) and the device's global knowledge. Nothing leaves the
/// device: the join runs over locally held facts only.
pub fn build_preferences(
    global: &GlobalKnowledge,
    history: &[EntityId],
    genre_predicate: PredicateId,
    release_predicate: PredicateId,
) -> PreferenceProfile {
    let mut genre_counts: HashMap<EntityId, usize> = HashMap::new();
    let mut year_sum = 0f64;
    let mut year_n = 0usize;
    let mut uncovered = Vec::new();

    for &item in history {
        let facts = global.facts_of(item);
        if facts.is_empty() {
            uncovered.push(item);
            continue;
        }
        for fact in facts {
            if fact.predicate == genre_predicate {
                if let Value::Entity(g) = fact.object {
                    *genre_counts.entry(g).or_default() += 1;
                }
            } else if fact.predicate == release_predicate {
                if let Value::Date(d) = fact.object {
                    year_sum += d.year as f64;
                    year_n += 1;
                }
            }
        }
    }
    let mut genres: Vec<(EntityId, usize)> = genre_counts.into_iter().collect();
    genres.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    uncovered.sort_unstable();
    uncovered.dedup();
    PreferenceProfile {
        genres,
        typical_release_year: if year_n == 0 { None } else { Some(year_sum / year_n as f64) },
        uncovered,
    }
}

/// Recommends unseen items from the global knowledge whose genre matches
/// the profile, most-preferred genres first. Pure on-device computation.
pub fn recommend(
    global: &GlobalKnowledge,
    profile: &PreferenceProfile,
    history: &[EntityId],
    genre_predicate: PredicateId,
    k: usize,
) -> Vec<EntityId> {
    let seen: std::collections::HashSet<EntityId> = history.iter().copied().collect();
    let genre_rank: HashMap<EntityId, usize> =
        profile.genres.iter().enumerate().map(|(i, (g, _))| (*g, i)).collect();
    let mut candidates: Vec<(usize, EntityId)> = Vec::new();
    for (fact, _) in &global.facts {
        if fact.predicate != genre_predicate || seen.contains(&fact.subject) {
            continue;
        }
        if let Value::Entity(g) = fact.object {
            if let Some(&rank) = genre_rank.get(&g) {
                candidates.push((rank, fact.subject));
            }
        }
    }
    candidates.sort();
    candidates.dedup_by_key(|(_, e)| *e);
    candidates.into_iter().map(|(_, e)| e).take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enrich::StaticAsset;
    use saga_core::synth::{generate, SynthConfig};

    fn setup() -> (saga_core::synth::SynthKg, GlobalKnowledge) {
        let s = generate(&SynthConfig::tiny(261));
        // Ship an asset with a low popularity bar so songs are included.
        let asset = StaticAsset::build(&s.kg, 0.2);
        let mut g = GlobalKnowledge::default();
        g.load_static_asset(&asset);
        (s, g)
    }

    #[test]
    fn preferences_reflect_listening_history() {
        let (s, g) = setup();
        // History: songs of one genre the asset covers.
        let mut history = Vec::new();
        let mut expected_genre = None;
        for &song in &s.songs {
            let facts = g.facts_of(song);
            let genre = facts.iter().find_map(|f| {
                (f.predicate == s.preds.genre).then(|| f.object.as_entity()).flatten()
            });
            if let Some(genre) = genre {
                if expected_genre.is_none() {
                    expected_genre = Some(genre);
                }
                if expected_genre == Some(genre) {
                    history.push(song);
                }
            }
        }
        assert!(history.len() >= 2, "need covered songs of one genre");
        let profile = build_preferences(&g, &history, s.preds.genre, s.preds.release_date);
        assert_eq!(profile.genres.first().map(|(g, _)| *g), expected_genre);
        assert!(profile.typical_release_year.is_some());
        let year = profile.typical_release_year.unwrap();
        assert!((1950.0..2025.0).contains(&year), "year {year}");
    }

    #[test]
    fn uncovered_items_flagged_for_private_retrieval() {
        let (_, g) = setup();
        let ghost = EntityId(u64::MAX - 17);
        let profile =
            build_preferences(&g, &[ghost], saga_core::PredicateId(0), saga_core::PredicateId(1));
        assert_eq!(profile.uncovered, vec![ghost]);
        assert!(profile.genres.is_empty());
    }

    #[test]
    fn recommendations_match_preferred_genre_and_exclude_history() {
        let (s, g) = setup();
        let mut history = Vec::new();
        for &song in &s.songs {
            if g.facts_of(song).iter().any(|f| f.predicate == s.preds.genre) {
                history.push(song);
            }
            if history.len() == 3 {
                break;
            }
        }
        if history.is_empty() {
            return; // asset too small at this seed; covered elsewhere
        }
        let profile = build_preferences(&g, &history, s.preds.genre, s.preds.release_date);
        let recs = recommend(&g, &profile, &history, s.preds.genre, 5);
        for r in &recs {
            assert!(!history.contains(r), "recommended an already-played item");
            // Each recommendation's genre is one of the profile's genres.
            let genres: Vec<EntityId> = g
                .facts_of(*r)
                .iter()
                .filter(|f| f.predicate == s.preds.genre)
                .filter_map(|f| f.object.as_entity())
                .collect();
            assert!(genres.iter().any(|gid| profile.genres.iter().any(|(pg, _)| pg == gid)));
        }
    }
}
