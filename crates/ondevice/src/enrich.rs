//! Global knowledge enrichment (paper Sec. 5, paths (1)–(3)):
//!
//! 1. a **static knowledge asset** — a maintained graph-engine view of
//!    popular entities shipped to every device with no client request;
//! 2. **piggyback enrichment** — facts about entities the user already
//!    asked a server about ride along with the answer;
//! 3. **private retrieval** — 2-server XOR cPIR (information-theoretic,
//!    after Chor et al.) and Laplace-noised differentially-private counts
//!    for knowledge not covered by (1) or (2).

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use saga_core::{EntityId, KnowledgeGraph, Triple};
use saga_graph::{GraphView, ViewDef};
use serde::{Deserialize, Serialize};

/// The static knowledge asset: popular entities and their facts, serialized
/// as a self-contained mini-KG. Built server-side from a maintained view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StaticAsset {
    /// `(entity id, name, type name, popularity)` for entities in the asset.
    pub entities: Vec<(EntityId, String, String, f32)>,
    /// Facts among asset entities (server-side ids).
    pub triples: Vec<Triple>,
    /// Version of the view the asset reflects.
    pub version: u64,
}

impl StaticAsset {
    /// Builds the asset from the server KG: the `static_knowledge_asset`
    /// view plus the entity records it references.
    pub fn build(server: &KnowledgeGraph, min_popularity: f32) -> Self {
        let view = GraphView::materialize(server, ViewDef::static_knowledge_asset(min_popularity));
        let triples: Vec<Triple> = view.triples().cloned().collect();
        let mut ids: Vec<EntityId> = view.entities();
        // Also include entities referenced only as subjects of literal facts.
        ids.extend(triples.iter().map(|t| t.subject));
        ids.sort_unstable();
        ids.dedup();
        let entities = ids
            .into_iter()
            .map(|id| {
                let e = server.entity(id);
                let ty = server.ontology().type_info(e.entity_type).name.clone();
                (id, e.name.clone(), ty, e.popularity)
            })
            .collect();
        Self { entities, triples, version: server.current_commit() }
    }

    /// Asset payload size in bytes (shipping cost).
    pub fn payload_bytes(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Facts about one entity in the asset.
    pub fn facts_of(&self, entity: EntityId) -> Vec<&Triple> {
        self.triples.iter().filter(|t| t.subject == entity).collect()
    }

    /// Looks an entity up by exact name.
    pub fn find_by_name(&self, name: &str) -> Option<EntityId> {
        self.entities.iter().find(|(_, n, _, _)| n == name).map(|(id, _, _, _)| *id)
    }
}

/// The device-side global knowledge store: asset facts plus facts obtained
/// through piggyback and private retrieval, with bookkeeping of where each
/// fact came from (privacy accounting).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalKnowledge {
    /// Facts by subject, with the path that delivered them.
    pub facts: Vec<(Triple, EnrichmentPath)>,
    /// Bytes received per path (the cost asymmetry of Sec. 5).
    pub bytes_by_path: std::collections::BTreeMap<EnrichmentPath, usize>,
}

/// Which enrichment path delivered a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnrichmentPath {
    /// Path 1: the shipped static asset.
    StaticAsset,
    /// Path 2: riding an existing server interaction.
    Piggyback,
    /// Path 3: PIR / differentially-private queries.
    PrivateRetrieval,
}

impl GlobalKnowledge {
    /// Loads the static asset (path 1). No request leaves the device.
    pub fn load_static_asset(&mut self, asset: &StaticAsset) {
        let bytes = asset.payload_bytes();
        for t in &asset.triples {
            self.facts.push((t.clone(), EnrichmentPath::StaticAsset));
        }
        *self.bytes_by_path.entry(EnrichmentPath::StaticAsset).or_default() += bytes;
    }

    /// Ingests piggybacked facts from a server interaction (path 2).
    pub fn ingest_piggyback(&mut self, facts: &[Triple]) {
        let bytes = serde_json::to_vec(facts).map(|v| v.len()).unwrap_or(0);
        for t in facts {
            self.facts.push((t.clone(), EnrichmentPath::Piggyback));
        }
        *self.bytes_by_path.entry(EnrichmentPath::Piggyback).or_default() += bytes;
    }

    /// Facts known about a subject.
    pub fn facts_of(&self, entity: EntityId) -> Vec<&Triple> {
        self.facts.iter().filter(|(t, _)| t.subject == entity).map(|(t, _)| t).collect()
    }

    /// Number of facts delivered by each path.
    pub fn count_by_path(&self, path: EnrichmentPath) -> usize {
        self.facts.iter().filter(|(_, p)| *p == path).count()
    }
}

/// Server-side piggyback: answering a query about `entity` also returns its
/// 1-hop facts ("we can include the fact that the Blue Jays are a baseball
/// team located in Toronto").
pub fn piggyback_answer(server: &KnowledgeGraph, entity: EntityId) -> Vec<Triple> {
    server.triples_of(entity).collect()
}

// ---------------------------------------------------------------- PIR ----

/// A PIR database: fixed-size blocks, one per entity bundle.
#[derive(Debug, Clone)]
pub struct PirDatabase {
    block_size: usize,
    blocks: Vec<Vec<u8>>,
    /// Entity → block index.
    index: std::collections::HashMap<EntityId, usize>,
}

impl PirDatabase {
    /// Packs each asset entity's facts into a fixed-size block.
    pub fn from_asset(asset: &StaticAsset, block_size: usize) -> Self {
        let mut blocks = Vec::new();
        let mut index = std::collections::HashMap::new();
        for (id, _, _, _) in &asset.entities {
            let facts: Vec<&Triple> = asset.facts_of(*id);
            let mut payload = serde_json::to_vec(&facts).unwrap_or_default();
            payload.truncate(block_size);
            payload.resize(block_size, 0);
            index.insert(*id, blocks.len());
            blocks.push(payload);
        }
        Self { block_size, blocks, index }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Block index of an entity.
    pub fn block_of(&self, entity: EntityId) -> Option<usize> {
        self.index.get(&entity).copied()
    }

    /// Server-side answer: XOR of all blocks selected by the query
    /// bitvector. The server learns only the (random-looking) bitvector.
    pub fn answer(&self, selector: &[bool]) -> Vec<u8> {
        let mut out = vec![0u8; self.block_size];
        for (i, sel) in selector.iter().enumerate() {
            if *sel {
                for (o, b) in out.iter_mut().zip(&self.blocks[i]) {
                    *o ^= b;
                }
            }
        }
        out
    }
}

/// Outcome of one PIR fetch.
#[derive(Debug, Clone)]
pub struct PirFetch {
    /// The recovered block (trailing zero padding included).
    pub block: Vec<u8>,
    /// Upload + download bytes across both servers.
    pub bytes_transferred: usize,
    /// Cost of a direct (non-private) fetch of the same block, for the
    /// price-of-privacy comparison.
    pub direct_fetch_bytes: usize,
}

/// 2-server XOR cPIR: server A gets a uniformly random selector `r`,
/// server B gets `r ⊕ e_i`; XOR of the answers is block `i`. Neither server
/// learns `i` (information-theoretic privacy, non-colluding assumption).
pub fn pir_fetch(
    server_a: &PirDatabase,
    server_b: &PirDatabase,
    target: usize,
    seed: u64,
) -> PirFetch {
    assert_eq!(server_a.len(), server_b.len(), "replicated databases must match");
    assert!(target < server_a.len(), "target out of range");
    let n = server_a.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let r: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut r_xor_e: Vec<bool> = r.clone();
    r_xor_e[target] = !r_xor_e[target];

    let ans_a = server_a.answer(&r);
    let ans_b = server_b.answer(&r_xor_e);
    let block: Vec<u8> = ans_a.iter().zip(&ans_b).map(|(a, b)| a ^ b).collect();

    // Upload: one bit per block per server; download: one block per server.
    let bytes_transferred = 2 * n.div_ceil(8) + 2 * server_a.block_size;
    PirFetch { block, bytes_transferred, direct_fetch_bytes: server_a.block_size }
}

/// Decodes a PIR block back into triples (strips zero padding).
pub fn decode_pir_block(block: &[u8]) -> Vec<Triple> {
    let end = block.iter().rposition(|&b| b != 0).map(|p| p + 1).unwrap_or(0);
    serde_json::from_slice(&block[..end]).unwrap_or_default()
}

// ------------------------------------------------------------ DP counts --

/// A Laplace-noised count query (ε-differential privacy for counting
/// queries with sensitivity 1).
pub fn dp_count(true_count: usize, epsilon: f64, seed: u64) -> f64 {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Inverse-CDF sampling of Laplace(0, 1/ε).
    let u: f64 = rng.gen_range(-0.5..0.5);
    let noise = -(1.0 / epsilon) * u.signum() * (1.0 - 2.0 * u.abs()).ln();
    true_count as f64 + noise
}

#[cfg(test)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    fn asset() -> (saga_core::synth::SynthKg, StaticAsset) {
        let s = generate(&SynthConfig::tiny(51));
        let a = StaticAsset::build(&s.kg, 0.5);
        (s, a)
    }

    #[test]
    fn asset_contains_only_popular_entities() {
        let (s, a) = asset();
        assert!(!a.entities.is_empty());
        assert!(!a.triples.is_empty());
        for (id, _, _, pop) in &a.entities {
            assert!(*pop >= 0.5, "entity {id} too unpopular for the asset");
        }
        assert!(a.entities.len() < s.kg.num_entities());
        // The flagship scenario entity is popular enough to ship.
        assert!(a.find_by_name("Michael Jordan").is_some());
    }

    #[test]
    fn device_loads_asset_without_any_request() {
        let (_, a) = asset();
        let mut g = GlobalKnowledge::default();
        g.load_static_asset(&a);
        assert_eq!(g.count_by_path(EnrichmentPath::StaticAsset), a.triples.len());
        assert!(g.bytes_by_path[&EnrichmentPath::StaticAsset] > 0);
    }

    #[test]
    fn piggyback_delivers_one_hop_facts() {
        let (s, _) = asset();
        let mut g = GlobalKnowledge::default();
        let facts = piggyback_answer(&s.kg, s.scenario.benicio);
        assert!(!facts.is_empty());
        g.ingest_piggyback(&facts);
        assert_eq!(g.facts_of(s.scenario.benicio).len(), facts.len());
        assert_eq!(g.count_by_path(EnrichmentPath::Piggyback), facts.len());
    }

    #[test]
    fn pir_recovers_exactly_the_target_block() {
        let (_, a) = asset();
        let db_a = PirDatabase::from_asset(&a, 2048);
        let db_b = PirDatabase::from_asset(&a, 2048);
        let target_entity = a.entities[3].0;
        let idx = db_a.block_of(target_entity).unwrap();
        let fetch = pir_fetch(&db_a, &db_b, idx, 42);
        let triples = decode_pir_block(&fetch.block);
        let expected: Vec<Triple> = a.facts_of(target_entity).into_iter().cloned().collect();
        assert_eq!(triples, expected);
    }

    #[test]
    fn pir_is_much_more_expensive_than_direct() {
        let (_, a) = asset();
        let db_a = PirDatabase::from_asset(&a, 1024);
        let db_b = PirDatabase::from_asset(&a, 1024);
        let fetch = pir_fetch(&db_a, &db_b, 0, 7);
        assert!(
            fetch.bytes_transferred > fetch.direct_fetch_bytes,
            "privacy must cost more: {} vs {}",
            fetch.bytes_transferred,
            fetch.direct_fetch_bytes
        );
    }

    #[test]
    fn pir_queries_look_random_to_each_server() {
        // The selector sent to server A is independent of the target: two
        // different targets with the same seed produce the same selector
        // for A (only B's differs in one position).
        let (_, a) = asset();
        let db = PirDatabase::from_asset(&a, 256);
        let n = db.len();
        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let r1: Vec<bool> = (0..n).map(|_| rng_a.gen()).collect();
        let mut rng_b = ChaCha8Rng::seed_from_u64(9);
        let r2: Vec<bool> = (0..n).map(|_| rng_b.gen()).collect();
        assert_eq!(r1, r2, "server A's view is target-independent");
    }

    #[test]
    fn dp_counts_are_noisy_but_calibrated() {
        let true_count = 100usize;
        let estimates: Vec<f64> = (0..200).map(|i| dp_count(true_count, 1.0, i)).collect();
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
        // Noise actually present.
        assert!(estimates.iter().any(|e| (e - 100.0).abs() > 0.5));
        // Lower epsilon → more noise (on average).
        let spread = |eps: f64| {
            (0..200).map(|i| (dp_count(true_count, eps, 1000 + i) - 100.0).abs()).sum::<f64>()
                / 200.0
        };
        assert!(spread(0.1) > spread(10.0));
    }
}
