//! Cross-device knowledge sync (paper Sec. 5, *Sync*): per-source op-logs,
//! per-source sync policies, gossip exchange with high-water-mark clocks,
//! and computation offload from weak to capable devices.

use crate::sources::{PersonObservation, SourceKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A device identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u8);

/// Compute capability tier (paper: "compare a laptop to a watch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DeviceTier {
    /// Weakest tier; cannot compute views.
    Watch,
    /// Mid tier.
    Phone,
    /// Most capable tier; preferred offload target.
    Laptop,
}

impl DeviceTier {
    /// Whether this tier is allowed to run expensive computations
    /// (materializing views, large-model inference).
    pub fn can_compute_views(self) -> bool {
        self >= DeviceTier::Phone
    }
}

/// Per-device, per-source sync opt-in.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SyncPolicy {
    synced: std::collections::BTreeSet<SourceKind>,
}

impl SyncPolicy {
    /// Sync all sources.
    pub fn all() -> Self {
        Self { synced: SourceKind::ALL.into_iter().collect() }
    }

    /// Sync only the listed sources.
    pub fn only(sources: &[SourceKind]) -> Self {
        Self { synced: sources.iter().copied().collect() }
    }

    /// Whether `source` is synced under this policy.
    pub fn syncs(&self, source: SourceKind) -> bool {
        self.synced.contains(&source)
    }
}

/// One op in a per-source append-only log: an observation ingested on some
/// origin device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SourceOp {
    /// Device the op originated on.
    pub origin: DeviceId,
    /// Originating source kind.
    pub source: SourceKind,
    /// Sequence number within `(origin, source)`.
    pub seq: u64,
    /// The observed person record.
    pub observation: PersonObservation,
}

/// A per-entity divergence clock: one monotone component per device that
/// has ever updated the entity (a version vector). Comparing two clocks
/// classifies their updates as causally ordered or *concurrent* — the
/// information a last-writer-wins timestamp destroys.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivergenceClock(BTreeMap<DeviceId, u64>);

impl DivergenceClock {
    /// The component for `device` (0 when the device never updated).
    pub fn get(&self, device: DeviceId) -> u64 {
        self.0.get(&device).copied().unwrap_or(0)
    }

    /// Bumps `device`'s component, returning its new value.
    pub fn increment(&mut self, device: DeviceId) -> u64 {
        let c = self.0.entry(device).or_insert(0);
        *c += 1;
        *c
    }

    /// Pointwise maximum — the causal knowledge of both clocks combined.
    pub fn merge(&mut self, other: &DivergenceClock) {
        for (&d, &c) in &other.0 {
            let e = self.0.entry(d).or_insert(0);
            *e = (*e).max(c);
        }
    }

    /// True when every component of `self` is ≥ the matching component of
    /// `other` and at least one is strictly greater: `self`'s update was
    /// made with full knowledge of `other`'s.
    pub fn dominates(&self, other: &DivergenceClock) -> bool {
        let geq = other.0.iter().all(|(d, &c)| self.get(*d) >= c);
        geq && self != other
    }

    /// True when neither clock dominates and they differ: the two updates
    /// raced on different devices.
    pub fn concurrent_with(&self, other: &DivergenceClock) -> bool {
        self != other && !self.dominates(other) && !other.dominates(self)
    }

    /// Sum of all components — the first key of the deterministic total
    /// order used to pick one winner among concurrent updates.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }
}

/// One atomic multi-attribute update to one entity, made on one device.
///
/// The attribute map is the unit of atomicity: conflict resolution always
/// applies a whole update or none of it. Two devices concurrently editing
/// the same entity can therefore never *interleave* attributes — the
/// misattribution failure where a record ends up with device A's phone
/// number attached to device B's email.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntityUpdate {
    /// The updated entity (a personal-KG entity key).
    pub entity: u64,
    /// Device the update was made on.
    pub origin: DeviceId,
    /// The entity's divergence clock *after* this update.
    pub clock: DivergenceClock,
    /// The attributes written, atomically.
    pub attrs: BTreeMap<String, String>,
}

impl EntityUpdate {
    /// Idempotence key: `(entity, origin, origin's clock component)` is
    /// unique because a device bumps its own component on every update.
    fn key(&self) -> (u64, DeviceId, u64) {
        (self.entity, self.origin, self.clock.get(self.origin))
    }
}

/// Deterministic total order over updates to one entity: causal dominance
/// first, then `(clock total, origin)` among concurrent updates. Every
/// replica that holds the same update set resolves the same winner.
fn update_precedes(a: &EntityUpdate, b: &EntityUpdate) -> bool {
    if b.clock.dominates(&a.clock) {
        return true;
    }
    if a.clock.dominates(&b.clock) {
        return false;
    }
    (a.clock.total(), a.origin) < (b.clock.total(), b.origin)
}

/// An artifact produced by offloaded computation (e.g. an expensive view),
/// synced by value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewArtifact {
    /// Artifact name (stable key).
    pub name: String,
    /// Device that computed the artifact.
    pub built_by: DeviceId,
    /// Monotone corpus/artifact version.
    pub version: u64,
    /// Opaque serialized payload.
    pub payload: Vec<u8>,
}

/// A device: its sync policy, capability tier, op log and artifacts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Device {
    /// Identifier.
    pub id: DeviceId,
    /// Deployment tier.
    pub tier: DeviceTier,
    /// Per-source sync opt-in.
    pub policy: SyncPolicy,
    /// All ops this device knows, keyed for idempotence.
    log: BTreeMap<(DeviceId, SourceKind, u64), SourceOp>,
    /// Next local sequence per source.
    next_seq: BTreeMap<SourceKind, u64>,
    /// Received artifacts by name (latest version wins).
    artifacts: BTreeMap<String, ViewArtifact>,
    /// All entity updates this device knows, keyed for idempotence.
    updates: BTreeMap<(u64, DeviceId, u64), EntityUpdate>,
}

impl Device {
    /// Creates a device.
    pub fn new(id: DeviceId, tier: DeviceTier, policy: SyncPolicy) -> Self {
        Self {
            id,
            tier,
            policy,
            log: BTreeMap::new(),
            next_seq: BTreeMap::new(),
            artifacts: BTreeMap::new(),
            updates: BTreeMap::new(),
        }
    }

    /// Applies an atomic multi-attribute update to `entity` on this device.
    ///
    /// The update's clock merges every clock this device has seen for the
    /// entity, then bumps this device's component — so it causally
    /// dominates everything known locally, and is concurrent with (never
    /// ordered against) updates this device has not yet synced.
    pub fn update_entity(&mut self, entity: u64, attrs: BTreeMap<String, String>) {
        let mut clock = DivergenceClock::default();
        for u in self.updates.values().filter(|u| u.entity == entity) {
            clock.merge(&u.clock);
        }
        clock.increment(self.id);
        let update = EntityUpdate { entity, origin: self.id, clock, attrs };
        self.updates.insert(update.key(), update);
    }

    /// The resolved attribute map of `entity`: the attributes of the single
    /// winning update under the deterministic causal-then-total order —
    /// applied wholesale, never merged attribute-by-attribute.
    pub fn entity_view(&self, entity: u64) -> Option<&BTreeMap<String, String>> {
        self.updates
            .values()
            .filter(|u| u.entity == entity)
            .reduce(|best, u| if update_precedes(best, u) { u } else { best })
            .map(|u| &u.attrs)
    }

    /// All updates to `entity` no other known update causally dominates —
    /// the concurrent frontier (length 1 ⇔ no unresolved divergence).
    pub fn divergence_frontier(&self, entity: u64) -> Vec<&EntityUpdate> {
        let all: Vec<&EntityUpdate> =
            self.updates.values().filter(|u| u.entity == entity).collect();
        all.iter().filter(|u| !all.iter().any(|o| o.clock.dominates(&u.clock))).copied().collect()
    }

    /// Ingests a locally-observed record, appending to the op log.
    pub fn ingest_local(&mut self, observation: PersonObservation) {
        let source = observation.source;
        let seq = self.next_seq.entry(source).or_insert(0);
        let op = SourceOp { origin: self.id, source, seq: *seq, observation };
        self.log.insert((self.id, source, *seq), op);
        *seq += 1;
    }

    /// All observations this device can see (its personal-KG input).
    pub fn observations(&self) -> Vec<PersonObservation> {
        self.log.values().map(|op| op.observation.clone()).collect()
    }

    /// Ops of one source.
    pub fn ops_for(&self, source: SourceKind) -> Vec<&SourceOp> {
        self.log.values().filter(|op| op.source == source).collect()
    }

    /// Stable fingerprint of this device's ops for the given sources plus
    /// its entity updates (always synced) — equal fingerprints ⇔ identical
    /// synced state.
    pub fn fingerprint(&self, sources: &[SourceKind]) -> u64 {
        let mut s = String::new();
        for op in self.log.values() {
            if sources.contains(&op.source) {
                s.push_str(&format!(
                    "{:?}|{:?}|{}|{:?};",
                    op.origin, op.source, op.seq, op.observation
                ));
            }
        }
        for u in self.updates.values() {
            s.push_str(&format!("{}|{:?}|{:?}|{:?};", u.entity, u.origin, u.clock, u.attrs));
        }
        saga_core::text::fnv1a(s.as_bytes())
    }

    /// Stores an artifact (newer versions replace older).
    pub fn store_artifact(&mut self, artifact: ViewArtifact) {
        match self.artifacts.get(&artifact.name) {
            Some(existing) if existing.version >= artifact.version => {}
            _ => {
                self.artifacts.insert(artifact.name.clone(), artifact);
            }
        }
    }

    /// Fetches an artifact by name.
    pub fn artifact(&self, name: &str) -> Option<&ViewArtifact> {
        self.artifacts.get(name)
    }
}

/// Report of one sync exchange.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SyncReport {
    /// Ops shipped from the first to the second device.
    pub ops_a_to_b: usize,
    /// Ops shipped from the second to the first device.
    pub ops_b_to_a: usize,
    /// Artifacts copied in either direction.
    pub artifacts_exchanged: usize,
    /// Entity updates copied in either direction.
    pub updates_exchanged: usize,
}

impl SyncReport {
    /// Record this exchange through an obs scope (call once per exchange —
    /// counters add): one counter per field.
    pub fn record_to(&self, scope: &saga_core::obs::Scope) {
        scope.counter("ops_a_to_b").add(self.ops_a_to_b as u64);
        scope.counter("ops_b_to_a").add(self.ops_b_to_a as u64);
        scope.counter("artifacts_exchanged").add(self.artifacts_exchanged as u64);
        scope.counter("updates_exchanged").add(self.updates_exchanged as u64);
    }
}

/// Bidirectional sync: exchanges ops of every source that **both** devices
/// sync (a source kept private by either side never crosses), plus
/// artifacts. Idempotent and commutative.
pub fn sync_pair(a: &mut Device, b: &mut Device) -> SyncReport {
    let mut report = SyncReport::default();
    let shared: Vec<SourceKind> =
        SourceKind::ALL.into_iter().filter(|s| a.policy.syncs(*s) && b.policy.syncs(*s)).collect();

    let from_a: Vec<SourceOp> =
        a.log.values().filter(|op| shared.contains(&op.source)).cloned().collect();
    let from_b: Vec<SourceOp> =
        b.log.values().filter(|op| shared.contains(&op.source)).cloned().collect();

    for op in from_a {
        let key = (op.origin, op.source, op.seq);
        if !b.log.contains_key(&key) {
            b.log.insert(key, op);
            report.ops_a_to_b += 1;
        }
    }
    for op in from_b {
        let key = (op.origin, op.source, op.seq);
        if !a.log.contains_key(&key) {
            a.log.insert(key, op);
            report.ops_b_to_a += 1;
        }
    }

    // Entity updates flow both ways; the keyed map absorbs re-sends.
    for u in a.updates.values().cloned().collect::<Vec<_>>() {
        if b.updates.insert(u.key(), u).is_none() {
            report.updates_exchanged += 1;
        }
    }
    for u in b.updates.values().cloned().collect::<Vec<_>>() {
        if a.updates.insert(u.key(), u).is_none() {
            report.updates_exchanged += 1;
        }
    }

    // Artifacts flow freely (they contain only derived, shareable state).
    let arts_a: Vec<ViewArtifact> = a.artifacts.values().cloned().collect();
    let arts_b: Vec<ViewArtifact> = b.artifacts.values().cloned().collect();
    for art in arts_a {
        if b.artifacts.get(&art.name).map_or(true, |e| e.version < art.version) {
            b.store_artifact(art);
            report.artifacts_exchanged += 1;
        }
    }
    for art in arts_b {
        if a.artifacts.get(&art.name).map_or(true, |e| e.version < art.version) {
            a.store_artifact(art);
            report.artifacts_exchanged += 1;
        }
    }
    report
}

/// A deterministic lossy message channel: each message sent through the
/// link is delivered 0 (dropped), 1, or 2 (duplicated) times, decided by a
/// seeded hash of the running message counter. Because the per-source op
/// log is keyed and artifact versions are monotone, [`sync_pair_lossy`]
/// stays idempotent under both loss modes — duplication is absorbed and
/// drops are healed by later gossip rounds.
#[derive(Debug, Clone)]
pub struct LossyLink {
    seed: u64,
    drop_rate: f64,
    dup_rate: f64,
    sent: u64,
    /// Messages the link has swallowed.
    pub dropped: u64,
    /// Messages the link has delivered twice.
    pub duplicated: u64,
}

impl LossyLink {
    /// A link dropping `drop_rate` and duplicating `dup_rate` of messages.
    pub fn new(seed: u64, drop_rate: f64, dup_rate: f64) -> Self {
        Self { seed, drop_rate, dup_rate, sent: 0, dropped: 0, duplicated: 0 }
    }

    /// A link that delivers everything exactly once.
    pub fn perfect() -> Self {
        Self::new(0, 0.0, 0.0)
    }

    /// How many copies of the next message arrive (0, 1 or 2).
    fn copies(&mut self) -> usize {
        let n = self.sent;
        self.sent += 1;
        if saga_core::fault::unit_hash(self.seed, &[n, 0]) < self.drop_rate {
            self.dropped += 1;
            return 0;
        }
        if saga_core::fault::unit_hash(self.seed, &[n, 1]) < self.dup_rate {
            self.duplicated += 1;
            2
        } else {
            1
        }
    }
}

/// [`sync_pair`] over a lossy link: every op and artifact message passes
/// through `link` and may be dropped or duplicated in flight. Reported
/// counts reflect state that actually changed, so duplicated deliveries
/// and re-sends of already-known ops count zero.
pub fn sync_pair_lossy(a: &mut Device, b: &mut Device, link: &mut LossyLink) -> SyncReport {
    let mut report = SyncReport::default();
    let shared: Vec<SourceKind> =
        SourceKind::ALL.into_iter().filter(|s| a.policy.syncs(*s) && b.policy.syncs(*s)).collect();

    let from_a: Vec<SourceOp> =
        a.log.values().filter(|op| shared.contains(&op.source)).cloned().collect();
    let from_b: Vec<SourceOp> =
        b.log.values().filter(|op| shared.contains(&op.source)).cloned().collect();

    for op in from_a {
        let key = (op.origin, op.source, op.seq);
        for _ in 0..link.copies() {
            if !b.log.contains_key(&key) {
                b.log.insert(key, op.clone());
                report.ops_a_to_b += 1;
            }
        }
    }
    for op in from_b {
        let key = (op.origin, op.source, op.seq);
        for _ in 0..link.copies() {
            if !a.log.contains_key(&key) {
                a.log.insert(key, op.clone());
                report.ops_b_to_a += 1;
            }
        }
    }

    for u in a.updates.values().cloned().collect::<Vec<_>>() {
        for _ in 0..link.copies() {
            if b.updates.insert(u.key(), u.clone()).is_none() {
                report.updates_exchanged += 1;
            }
        }
    }
    for u in b.updates.values().cloned().collect::<Vec<_>>() {
        for _ in 0..link.copies() {
            if a.updates.insert(u.key(), u.clone()).is_none() {
                report.updates_exchanged += 1;
            }
        }
    }

    let arts_a: Vec<ViewArtifact> = a.artifacts.values().cloned().collect();
    let arts_b: Vec<ViewArtifact> = b.artifacts.values().cloned().collect();
    for art in arts_a {
        for _ in 0..link.copies() {
            if b.artifacts.get(&art.name).map_or(true, |e| e.version < art.version) {
                b.store_artifact(art.clone());
                report.artifacts_exchanged += 1;
            }
        }
    }
    for art in arts_b {
        for _ in 0..link.copies() {
            if a.artifacts.get(&art.name).map_or(true, |e| e.version < art.version) {
                a.store_artifact(art.clone());
                report.artifacts_exchanged += 1;
            }
        }
    }
    report
}

/// Whether every device pair agrees on the sources both of them sync.
fn gossip_converged(devices: &[Device]) -> bool {
    for i in 0..devices.len() {
        for j in i + 1..devices.len() {
            let shared: Vec<SourceKind> = SourceKind::ALL
                .into_iter()
                .filter(|s| devices[i].policy.syncs(*s) && devices[j].policy.syncs(*s))
                .collect();
            if devices[i].fingerprint(&shared) != devices[j].fingerprint(&shared) {
                return false;
            }
        }
    }
    true
}

/// Gossip over a lossy link until every pair agrees on its shared sources
/// (a "no ops moved" round is not proof of convergence when the link can
/// drop an entire exchange). Returns the rounds used; `max_rounds` means
/// the gossip may not have converged.
pub fn gossip_until_stable_lossy(
    devices: &mut [Device],
    link: &mut LossyLink,
    max_rounds: usize,
) -> usize {
    for round in 1..=max_rounds {
        for i in 0..devices.len() {
            for j in i + 1..devices.len() {
                let (left, right) = devices.split_at_mut(j);
                sync_pair_lossy(&mut left[i], &mut right[0], link);
            }
        }
        if gossip_converged(devices) {
            return round;
        }
    }
    max_rounds
}

/// Runs gossip rounds over all device pairs until no ops move; returns the
/// number of rounds needed.
pub fn gossip_until_stable(devices: &mut [Device], max_rounds: usize) -> usize {
    for round in 1..=max_rounds {
        let mut moved = 0;
        for i in 0..devices.len() {
            for j in i + 1..devices.len() {
                let (left, right) = devices.split_at_mut(j);
                let r = sync_pair(&mut left[i], &mut right[0]);
                moved += r.ops_a_to_b + r.ops_b_to_a + r.updates_exchanged;
            }
        }
        if moved == 0 {
            return round;
        }
    }
    max_rounds
}

/// Offload: the most capable device computes `build` and the artifact is
/// then synced to the others (paper: "offloading expensive computation to
/// more powerful devices ... and syncing the result"). Returns the builder.
pub fn offload_compute(
    devices: &mut [Device],
    name: &str,
    version: u64,
    build: impl Fn(&Device) -> Vec<u8>,
) -> Option<DeviceId> {
    let builder_idx = devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.tier.can_compute_views())
        .max_by_key(|(_, d)| d.tier)?
        .0;
    let payload = build(&devices[builder_idx]);
    let artifact =
        ViewArtifact { name: name.to_owned(), built_by: devices[builder_idx].id, version, payload };
    for d in devices.iter_mut() {
        d.store_artifact(artifact.clone());
    }
    Some(artifact.built_by)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(source: SourceKind, id: u64, name: &str) -> PersonObservation {
        PersonObservation {
            source,
            record_id: id,
            name: name.into(),
            phone: None,
            email: Some(format!("{name}@example.com")),
            context: String::new(),
        }
    }

    fn three_devices() -> Vec<Device> {
        // Laptop syncs everything; phone syncs everything; watch syncs only
        // contacts. The phone holds the calendar (not synced by watch).
        let mut laptop = Device::new(DeviceId(0), DeviceTier::Laptop, SyncPolicy::all());
        let mut phone = Device::new(
            DeviceId(1),
            DeviceTier::Phone,
            SyncPolicy::only(&[SourceKind::Contacts, SourceKind::Messages]),
        );
        let mut watch =
            Device::new(DeviceId(2), DeviceTier::Watch, SyncPolicy::only(&[SourceKind::Contacts]));
        laptop.ingest_local(obs(SourceKind::Contacts, 0, "tim"));
        laptop.ingest_local(obs(SourceKind::Calendar, 1, "tim"));
        phone.ingest_local(obs(SourceKind::Messages, 0, "ana"));
        phone.ingest_local(obs(SourceKind::Contacts, 1, "ana"));
        watch.ingest_local(obs(SourceKind::Contacts, 0, "leo"));
        vec![laptop, phone, watch]
    }

    #[test]
    fn synced_sources_converge_private_sources_do_not_leak() {
        let mut devices = three_devices();
        let rounds = gossip_until_stable(&mut devices, 10);
        assert!(rounds <= 3, "converged in {rounds} rounds");

        // Contacts converge everywhere.
        let c = [SourceKind::Contacts];
        assert_eq!(devices[0].fingerprint(&c), devices[1].fingerprint(&c));
        assert_eq!(devices[1].fingerprint(&c), devices[2].fingerprint(&c));
        assert_eq!(devices[2].ops_for(SourceKind::Contacts).len(), 3);

        // Messages converge between laptop and phone only.
        let m = [SourceKind::Messages];
        assert_eq!(devices[0].fingerprint(&m), devices[1].fingerprint(&m));
        assert!(devices[2].ops_for(SourceKind::Messages).is_empty(), "watch never syncs messages");

        // Calendar stays on the laptop (phone doesn't sync calendar).
        assert_eq!(devices[0].ops_for(SourceKind::Calendar).len(), 1);
        assert!(devices[1].ops_for(SourceKind::Calendar).is_empty());
        assert!(devices[2].ops_for(SourceKind::Calendar).is_empty());
    }

    #[test]
    fn sync_is_idempotent() {
        let mut devices = three_devices();
        gossip_until_stable(&mut devices, 10);
        let before: Vec<u64> = devices.iter().map(|d| d.fingerprint(&SourceKind::ALL)).collect();
        let (a, b) = devices.split_at_mut(1);
        let r = sync_pair(&mut a[0], &mut b[0]);
        assert_eq!(r.ops_a_to_b + r.ops_b_to_a, 0, "no-op after convergence");
        let after: Vec<u64> = devices.iter().map(|d| d.fingerprint(&SourceKind::ALL)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn local_ingest_after_sync_propagates() {
        let mut devices = three_devices();
        gossip_until_stable(&mut devices, 10);
        devices[2].ingest_local(obs(SourceKind::Contacts, 5, "zoe"));
        gossip_until_stable(&mut devices, 10);
        for d in &devices {
            assert!(
                d.ops_for(SourceKind::Contacts).iter().any(|o| o.observation.name == "zoe"),
                "device {:?} missing new contact",
                d.id
            );
        }
    }

    #[test]
    fn offload_picks_most_capable_and_ships_artifact() {
        let mut devices = three_devices();
        let builder = offload_compute(&mut devices, "popular-contacts-view", 1, |d| {
            format!("built-from-{}-ops", d.observations().len()).into_bytes()
        })
        .unwrap();
        assert_eq!(builder, DeviceId(0), "laptop is most capable");
        for d in &devices {
            let art = d.artifact("popular-contacts-view").unwrap();
            assert_eq!(art.built_by, DeviceId(0));
            assert!(!art.payload.is_empty());
        }
        // The watch could not have built it.
        assert!(!DeviceTier::Watch.can_compute_views());
    }

    #[test]
    fn duplication_is_absorbed_and_matches_lossless_gossip() {
        let mut lossless = three_devices();
        gossip_until_stable(&mut lossless, 10);

        let mut lossy = three_devices();
        let mut link = LossyLink::new(5, 0.0, 0.6);
        let rounds = gossip_until_stable_lossy(&mut lossy, &mut link, 20);
        assert!(rounds < 20, "duplication alone must not block convergence");
        assert!(link.duplicated > 0, "the link did duplicate messages");

        for (a, b) in lossless.iter().zip(&lossy) {
            assert_eq!(
                a.fingerprint(&SourceKind::ALL),
                b.fingerprint(&SourceKind::ALL),
                "duplicated deliveries must be absorbed by the keyed log"
            );
        }
    }

    #[test]
    fn gossip_converges_under_message_drops_across_seeds() {
        let mut lossless = three_devices();
        gossip_until_stable(&mut lossless, 10);
        let want: Vec<u64> = lossless.iter().map(|d| d.fingerprint(&SourceKind::ALL)).collect();

        for seed in 0..20 {
            let mut devices = three_devices();
            let mut link = LossyLink::new(seed, 0.3, 0.2);
            let rounds = gossip_until_stable_lossy(&mut devices, &mut link, 50);
            assert!(rounds < 50, "seed {seed}: gossip must converge despite 30% drops");
            let got: Vec<u64> = devices.iter().map(|d| d.fingerprint(&SourceKind::ALL)).collect();
            assert_eq!(got, want, "seed {seed}: lossy gossip must reach the lossless state");
        }
    }

    #[test]
    fn lossy_gossip_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut devices = three_devices();
            let mut link = LossyLink::new(seed, 0.25, 0.25);
            let rounds = gossip_until_stable_lossy(&mut devices, &mut link, 50);
            (rounds, link.dropped, link.duplicated)
        };
        assert_eq!(run(11), run(11), "same seed, same loss pattern");
        assert_ne!(run(11), run(12), "different seeds, different loss patterns");
    }

    fn attrs(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn divergence_clock_orders_and_detects_races() {
        let (a, b) = (DeviceId(0), DeviceId(1));
        let mut ca = DivergenceClock::default();
        ca.increment(a);
        let mut cb = DivergenceClock::default();
        cb.increment(b);
        assert!(ca.concurrent_with(&cb), "independent edits race");

        let mut cab = ca.clone();
        cab.merge(&cb);
        cab.increment(a);
        assert!(cab.dominates(&ca) && cab.dominates(&cb), "merged+bumped sees both");
        assert!(!ca.dominates(&ca), "a clock never dominates itself");
        assert_eq!(cab.total(), 3);
    }

    #[test]
    fn concurrent_multi_attribute_updates_never_interleave() {
        let mut devices = three_devices();
        // Laptop and phone concurrently edit entity 7 — both rewrite the
        // phone AND email attributes as one atomic update.
        let by_laptop = attrs(&[("phone", "111"), ("email", "l@x")]);
        let by_phone = attrs(&[("phone", "222"), ("email", "p@x")]);
        devices[0].update_entity(7, by_laptop.clone());
        devices[1].update_entity(7, by_phone.clone());
        gossip_until_stable(&mut devices, 10);

        let view = devices[0].entity_view(7).expect("entity resolved").clone();
        assert!(
            view == by_laptop || view == by_phone,
            "attributes interleaved across concurrent updates: {view:?}"
        );
        for d in &devices[1..] {
            assert_eq!(d.entity_view(7), Some(&view), "device {:?} resolved differently", d.id);
        }
        // Both racing updates remain visible on the frontier.
        assert_eq!(devices[2].divergence_frontier(7).len(), 2);
    }

    #[test]
    fn causal_update_dominates_its_ancestor() {
        let mut devices = three_devices();
        devices[0].update_entity(7, attrs(&[("phone", "111"), ("email", "l@x")]));
        gossip_until_stable(&mut devices, 10);
        // The phone edits *after* seeing the laptop's update: causally later.
        devices[1].update_entity(7, attrs(&[("phone", "222"), ("email", "p@x")]));
        gossip_until_stable(&mut devices, 10);
        for d in &devices {
            assert_eq!(
                d.entity_view(7),
                Some(&attrs(&[("phone", "222"), ("email", "p@x")])),
                "causally-later update must win on {:?}",
                d.id
            );
            assert_eq!(d.divergence_frontier(7).len(), 1, "no divergence left");
        }
    }

    #[test]
    fn same_device_updates_are_totally_ordered() {
        let mut d = Device::new(DeviceId(3), DeviceTier::Phone, SyncPolicy::all());
        d.update_entity(1, attrs(&[("name", "old")]));
        d.update_entity(1, attrs(&[("name", "new")]));
        assert_eq!(d.entity_view(1), Some(&attrs(&[("name", "new")])));
        assert_eq!(d.divergence_frontier(1).len(), 1);
    }

    #[test]
    fn concurrent_updates_converge_under_lossy_gossip() {
        let reference = {
            let mut devices = three_devices();
            devices[0].update_entity(7, attrs(&[("phone", "111"), ("email", "l@x")]));
            devices[1].update_entity(7, attrs(&[("phone", "222"), ("email", "p@x")]));
            devices[2].update_entity(9, attrs(&[("nick", "watchy")]));
            gossip_until_stable(&mut devices, 10);
            devices[0].entity_view(7).expect("resolved").clone()
        };

        for seed in 0..10 {
            let mut devices = three_devices();
            devices[0].update_entity(7, attrs(&[("phone", "111"), ("email", "l@x")]));
            devices[1].update_entity(7, attrs(&[("phone", "222"), ("email", "p@x")]));
            devices[2].update_entity(9, attrs(&[("nick", "watchy")]));
            let mut link = LossyLink::new(seed, 0.3, 0.2);
            let rounds = gossip_until_stable_lossy(&mut devices, &mut link, 50);
            assert!(rounds < 50, "seed {seed}: updates must converge despite drops");
            for d in &devices {
                assert_eq!(
                    d.entity_view(7),
                    Some(&reference),
                    "seed {seed}: {:?} diverged from the lossless winner",
                    d.id
                );
                assert_eq!(d.entity_view(9), Some(&attrs(&[("nick", "watchy")])));
            }
        }
    }

    #[test]
    fn artifact_versions_monotonic() {
        let mut d = Device::new(DeviceId(9), DeviceTier::Phone, SyncPolicy::all());
        d.store_artifact(ViewArtifact {
            name: "v".into(),
            built_by: DeviceId(0),
            version: 2,
            payload: vec![2],
        });
        d.store_artifact(ViewArtifact {
            name: "v".into(),
            built_by: DeviceId(0),
            version: 1,
            payload: vec![1],
        });
        assert_eq!(d.artifact("v").unwrap().payload, vec![2], "older version ignored");
    }
}
