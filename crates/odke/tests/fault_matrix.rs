//! Fault-matrix tests for the resilient ODKE runner: bit-identical reports
//! under a seeded fault plan, full fact recovery under heavy transient
//! failure, and checkpoint/resume equivalence with a killed run.

use saga_annotation::{AnnotationService, LinkerConfig, Tier};
use saga_core::fault::{BreakerConfig, FaultInjector, FaultPlan, RetryPolicy, SiteFaults};
use saga_core::synth::{generate, SynthConfig, SynthKg};
use saga_core::KnowledgeGraph;
use saga_odke::{
    run_odke, CheckpointLog, FactTarget, OdkeConfig, OdkeReport, ResilientOdke, RunCheckpoint,
    TargetReason, TargetStatus,
};
use saga_webcorpus::{
    generate_corpus, Corpus, CorpusConfig, FaultySource, ReliableSource, SearchEngine, SITE_FETCH,
    SITE_SEARCH,
};

fn setup() -> (SynthKg, Corpus, AnnotationService, SearchEngine, Vec<FactTarget>) {
    let s = generate(&SynthConfig::tiny(231));
    let (c, _) = generate_corpus(&s, &[], &CorpusConfig::tiny(17));
    let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
    let search = SearchEngine::build(&c);
    let targets: Vec<FactTarget> = s.people[..12]
        .iter()
        .map(|&e| FactTarget {
            entity: e,
            predicate: s.preds.date_of_birth,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        })
        .collect();
    (s, c, svc, search, targets)
}

/// A patient retry policy: ~30% transient rates clear well inside eight
/// attempts, and a high breaker threshold keeps runs breaker-free so
/// checkpointed and uninterrupted executions stay comparable.
fn patient() -> RetryPolicy {
    RetryPolicy { max_attempts: 8, ..RetryPolicy::default() }
}

fn flaky_plan(seed: u64) -> FaultPlan {
    FaultPlan::reliable(seed)
        .with_site(SITE_SEARCH, SiteFaults::transient(0.3))
        .with_site(SITE_FETCH, SiteFaults::transient(0.3))
}

fn run_flaky(
    seed: u64,
    kg: &mut KnowledgeGraph,
    svc: &AnnotationService,
    search: &SearchEngine,
    corpus: &Corpus,
    targets: &[FactTarget],
) -> OdkeReport {
    let injector = FaultInjector::new(flaky_plan(seed));
    let source = FaultySource::new(ReliableSource::new(search, corpus), &injector);
    let runner = ResilientOdke::new(&source, OdkeConfig::default())
        .with_retry(patient())
        .with_breakers(BreakerConfig { failure_threshold: 1_000, cooldown_ms: 1 });
    let mut checkpoint = RunCheckpoint::default();
    runner.run(kg, svc, targets, &mut checkpoint, None).expect("no log I/O to fail")
}

#[test]
fn same_seed_produces_bit_identical_reports() {
    let (s, c, svc, search, targets) = setup();

    let mut kg1 = s.kg.clone();
    let r1 = run_flaky(77, &mut kg1, &svc, &search, &c, &targets);
    let mut kg2 = s.kg.clone();
    let r2 = run_flaky(77, &mut kg2, &svc, &search, &c, &targets);
    assert!(r1.retries > 0, "30% transient rates must force retries");
    assert_eq!(format!("{r1:?}"), format!("{r2:?}"), "same seed, same report");

    let mut kg3 = s.kg.clone();
    let r3 = run_flaky(78, &mut kg3, &svc, &search, &c, &targets);
    assert_ne!(
        (r1.retries, r1.quarantined.len()),
        (r3.retries, r3.quarantined.len()),
        "a different seed must draw a different fault pattern"
    );
}

#[test]
fn transient_failures_recover_the_failure_free_facts() {
    let (s, c, svc, search, targets) = setup();

    // Failure-free baseline on the classic runner.
    let mut kg_clean = s.kg.clone();
    let clean = run_odke(&mut kg_clean, &svc, &search, &c, &targets, &OdkeConfig::default());

    let mut kg_flaky = s.kg.clone();
    let flaky = run_flaky(77, &mut kg_flaky, &svc, &search, &c, &targets);

    assert_eq!(flaky.facts_written, clean.facts_written, "retries must recover every fact");
    assert!(flaky.quarantined.is_empty());
    for (t, (of, oc)) in targets.iter().zip(flaky.outcomes.iter().zip(&clean.outcomes)) {
        assert_eq!(of.status, TargetStatus::Ok, "all transients must clear");
        assert_eq!(of.winner.is_some(), oc.winner.is_some());
        assert_eq!(
            kg_flaky.objects(t.entity, t.predicate),
            kg_clean.objects(t.entity, t.predicate),
            "flaky and clean runs must agree on the KG"
        );
    }
    assert_eq!(kg_flaky.num_triples(), kg_clean.num_triples());
}

#[test]
fn killed_run_resumes_to_the_uninterrupted_report() {
    let (s, c, svc, search, targets) = setup();

    // Uninterrupted flaky run.
    let mut kg1 = s.kg.clone();
    let full = run_flaky(77, &mut kg1, &svc, &search, &c, &targets);

    // Same run killed after 5 targets, then resumed from the checkpoint.
    let injector = FaultInjector::new(flaky_plan(77));
    let source = FaultySource::new(ReliableSource::new(&search, &c), &injector);
    let breakers = BreakerConfig { failure_threshold: 1_000, cooldown_ms: 1 };
    let mut kg2 = s.kg.clone();
    let mut checkpoint = RunCheckpoint::default();

    let partial_runner = ResilientOdke::new(&source, OdkeConfig::default())
        .with_retry(patient())
        .with_breakers(breakers)
        .with_max_targets(5);
    let partial =
        partial_runner.run(&mut kg2, &svc, &targets, &mut checkpoint, None).expect("no log I/O");
    assert_eq!(checkpoint.completed(), 5, "the run was killed after 5 targets");
    assert_eq!(partial.outcomes.len(), 5);

    let resume_runner = ResilientOdke::new(&source, OdkeConfig::default())
        .with_retry(patient())
        .with_breakers(breakers);
    let resumed =
        resume_runner.run(&mut kg2, &svc, &targets, &mut checkpoint, None).expect("no log I/O");

    assert_eq!(
        format!("{resumed:?}"),
        format!("{full:?}"),
        "resume must reconstruct the uninterrupted report bit-for-bit"
    );
    for t in &targets {
        assert_eq!(kg2.objects(t.entity, t.predicate), kg1.objects(t.entity, t.predicate));
    }
    assert_eq!(kg2.num_triples(), kg1.num_triples());
}

#[test]
fn wal_checkpoint_survives_a_kill_and_replays() {
    let (s, c, svc, search, targets) = setup();
    let dir = std::env::temp_dir().join("saga-odke-fault-matrix");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(format!("{}-resume.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let injector = FaultInjector::new(flaky_plan(77));
    let source = FaultySource::new(ReliableSource::new(&search, &c), &injector);
    let breakers = BreakerConfig { failure_threshold: 1_000, cooldown_ms: 1 };

    // First process: killed after 4 targets. Dropping the log mid-run
    // stands in for the process dying; the WAL has synced every entry.
    let mut kg = s.kg.clone();
    {
        let (mut log, mut checkpoint) = CheckpointLog::open(&path).expect("fresh WAL");
        assert_eq!(checkpoint.completed(), 0);
        let runner = ResilientOdke::new(&source, OdkeConfig::default())
            .with_retry(patient())
            .with_breakers(breakers)
            .with_max_targets(4);
        runner.run(&mut kg, &svc, &targets, &mut checkpoint, Some(&mut log)).expect("log I/O ok");
    }

    // Second process: replay the WAL, resume only the incomplete targets.
    let (mut log, mut checkpoint) = CheckpointLog::open(&path).expect("replayable WAL");
    assert_eq!(checkpoint.completed(), 4, "replay recovers the finished targets");
    let runner = ResilientOdke::new(&source, OdkeConfig::default())
        .with_retry(patient())
        .with_breakers(breakers);
    let resumed =
        runner.run(&mut kg, &svc, &targets, &mut checkpoint, Some(&mut log)).expect("log I/O ok");
    assert_eq!(resumed.outcomes.len(), targets.len());

    // The resumed report matches an uninterrupted in-memory run.
    let mut kg_ref = s.kg.clone();
    let full = run_flaky(77, &mut kg_ref, &svc, &search, &c, &targets);
    assert_eq!(format!("{resumed:?}"), format!("{full:?}"));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn permanent_search_outage_quarantines_instead_of_aborting() {
    let (s, c, svc, search, targets) = setup();
    let injector = FaultInjector::new(
        FaultPlan::reliable(3).with_site(SITE_SEARCH, SiteFaults::mixed(0.0, 1.0)),
    );
    let source = FaultySource::new(ReliableSource::new(&search, &c), &injector);
    let runner = ResilientOdke::new(&source, OdkeConfig::default()).with_retry(patient());
    let mut kg = s.kg.clone();
    let mut checkpoint = RunCheckpoint::default();
    let report = runner.run(&mut kg, &svc, &targets, &mut checkpoint, None).expect("no log I/O");

    assert_eq!(report.quarantined.len(), targets.len(), "every target skipped, none aborted");
    assert_eq!(report.facts_written, 0);
    for o in &report.outcomes {
        assert!(matches!(o.status, TargetStatus::Skipped { .. }), "status: {:?}", o.status);
        assert!(o.winner.is_none());
    }
}
