//! The end-to-end ODKE pipeline (Fig. 5): targets → query synthesis → web
//! search → extraction → corroboration → fact fusion into the KG.

use crate::corroborate::{Corroborator, EvidenceFeatures, ScoredValue};
use crate::extract::extract_from_page;
use crate::profiler::FactTarget;
use crate::synthesize::synthesize_queries;
use saga_annotation::AnnotationService;
use saga_core::obs::{Registry, Scope, SpanTimer};
use saga_core::{DeltaBatch, DocId, EntityId, KnowledgeGraph, PredicateId, Triple};
use saga_webcorpus::{Corpus, SearchEngine};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Pipeline configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OdkeConfig {
    /// Top search hits fetched per synthesized query.
    pub docs_per_query: usize,
    /// Minimum corroboration probability to accept a value.
    pub min_probability: f32,
    /// The corroboration model.
    pub corroborator: Corroborator,
}

impl Default for OdkeConfig {
    fn default() -> Self {
        Self { docs_per_query: 5, min_probability: 0.5, corroborator: Corroborator::default() }
    }
}

/// How a target fared against the substrate's failures.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetStatus {
    /// Every search, fetch and extraction succeeded.
    #[default]
    Ok,
    /// The target was processed, but some evidence was lost to failures
    /// that retries could not clear — the outcome may rest on fewer
    /// documents than a clean run would have used.
    Degraded {
        /// Queries whose search never succeeded.
        queries_lost: usize,
        /// Documents that could not be fetched or extracted from.
        docs_lost: usize,
    },
    /// Nothing could be retrieved for the target; it was quarantined for a
    /// later run instead of aborting the pipeline.
    Skipped {
        /// The terminal error.
        error: String,
    },
}

/// Outcome for one target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TargetOutcome {
    /// The entity concerned.
    pub entity: EntityId,
    /// The predicate.
    pub predicate: PredicateId,
    /// Best value, if any cleared the probability bar.
    pub winner: Option<ScoredValue>,
    /// All scored values (diagnostics).
    pub scored: Vec<ScoredValue>,
    /// Documents fetched for this target.
    pub docs_examined: usize,
    /// Failure/degradation status (always `Ok` on the infallible path).
    #[serde(default)]
    pub status: TargetStatus,
}

/// Report of one ODKE run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OdkeReport {
    /// Per-target outcomes.
    pub outcomes: Vec<TargetOutcome>,
    /// Distinct documents fetched across all targets — the "volume
    /// reduction" numerator (denominator = corpus size).
    pub distinct_docs_fetched: usize,
    /// Total pages in the corpus.
    pub corpus_size: usize,
    /// Facts written into the KG.
    pub facts_written: usize,
    /// Transient retries spent across all targets (0 on the infallible path).
    #[serde(default)]
    pub retries: u64,
    /// Indices into the target list that were quarantined as
    /// [`TargetStatus::Skipped`] (empty on the infallible path).
    #[serde(default)]
    pub quarantined: Vec<usize>,
}

impl OdkeReport {
    /// Fraction of the corpus the targeted pipeline actually touched.
    pub fn volume_fraction(&self) -> f64 {
        if self.corpus_size == 0 {
            0.0
        } else {
            self.distinct_docs_fetched as f64 / self.corpus_size as f64
        }
    }

    /// Record this run's outcome through an obs scope (call once per run):
    /// counters `targets`, `facts_written`, `docs_fetched`, `retries`,
    /// `quarantined`, plus a `docs_examined` per-target histogram. All values
    /// are deterministic for a fixed fault seed.
    pub fn record_to(&self, scope: &Scope) {
        scope.counter("targets").add(self.outcomes.len() as u64);
        scope.counter("facts_written").add(self.facts_written as u64);
        scope.counter("docs_fetched").add(self.distinct_docs_fetched as u64);
        scope.counter("retries").add(self.retries);
        scope.counter("quarantined").add(self.quarantined.len() as u64);
        let docs_examined = scope.histogram("docs_examined");
        for outcome in &self.outcomes {
            docs_examined.record(outcome.docs_examined as u64);
        }
    }
}

/// Gathers candidate documents for a target via query synthesis + search.
pub fn find_documents(
    kg: &KnowledgeGraph,
    search: &SearchEngine,
    target: &FactTarget,
    docs_per_query: usize,
) -> Vec<DocId> {
    let mut docs: Vec<DocId> = Vec::new();
    let mut seen = HashSet::new();
    for q in synthesize_queries(kg, target) {
        for hit in search.search(&q.text, docs_per_query) {
            if seen.insert(hit.doc) {
                docs.push(hit.doc);
            }
        }
    }
    docs
}

/// Restricts a full target list to the targets dirtied by a delta pass:
/// exactly those whose entity is in the batch's dirty set — i.e. an
/// evidence page mentioning the entity changed, or the entity's graph
/// facts changed. Relative order (importance ranking) is preserved, so a
/// delta run processes the same targets the full run would, minus the
/// clean ones.
pub fn select_delta_targets(targets: &[FactTarget], batch: &DeltaBatch) -> Vec<FactTarget> {
    targets.iter().filter(|t| batch.dirty_entities.contains(&t.entity)).copied().collect()
}

/// Delta extraction: [`run_odke_obs`] over only the targets
/// [`select_delta_targets`] keeps for `batch`, recording the
/// `targets_reextracted` counter into `delta_scope` (expected: the shared
/// `delta/` scope). An interrupted delta run resumes exactly like a full
/// one — feed the same selected list through
/// [`ResilientOdke::run`](crate::resilient::ResilientOdke::run) with its
/// checkpoint log.
#[allow(clippy::too_many_arguments)]
pub fn run_odke_delta_obs(
    kg: &mut KnowledgeGraph,
    service: &AnnotationService,
    search: &SearchEngine,
    corpus: &Corpus,
    targets: &[FactTarget],
    batch: &DeltaBatch,
    cfg: &OdkeConfig,
    scope: &Scope,
    delta_scope: &Scope,
) -> OdkeReport {
    let selected = select_delta_targets(targets, batch);
    delta_scope.counter("targets_reextracted").add(selected.len() as u64);
    run_odke_obs(kg, service, search, corpus, &selected, cfg, scope)
}

/// Runs the full pipeline over `targets`, writing accepted facts into `kg`.
pub fn run_odke(
    kg: &mut KnowledgeGraph,
    service: &AnnotationService,
    search: &SearchEngine,
    corpus: &Corpus,
    targets: &[FactTarget],
    cfg: &OdkeConfig,
) -> OdkeReport {
    let registry = Registry::new();
    run_odke_obs(kg, service, search, corpus, targets, cfg, &registry.scope("odke"))
}

/// [`run_odke`] recording through an obs scope: a per-document extraction
/// latency histogram under `<scope>/extract/doc_ticks` (the target loop is
/// sequential, so spans are deterministic under a virtual clock), a
/// whole-run `run_ticks` span, and the [`OdkeReport`] counters.
pub fn run_odke_obs(
    kg: &mut KnowledgeGraph,
    service: &AnnotationService,
    search: &SearchEngine,
    corpus: &Corpus,
    targets: &[FactTarget],
    cfg: &OdkeConfig,
    scope: &Scope,
) -> OdkeReport {
    let clock = scope.clock();
    let extract_hist = scope.child("extract").histogram("doc_ticks");
    let run_span = SpanTimer::start(scope.histogram("run_ticks"), clock.clone());
    let src = kg.register_source("odke");
    let mut outcomes = Vec::with_capacity(targets.len());
    let mut all_docs: HashSet<DocId> = HashSet::new();
    let mut facts_written = 0;

    for target in targets {
        let docs = find_documents(kg, search, target, cfg.docs_per_query);
        all_docs.extend(docs.iter().copied());
        let mut candidates = Vec::new();
        for &doc in &docs {
            let doc_span = SpanTimer::start(extract_hist.clone(), clock.clone());
            candidates.extend(extract_from_page(
                kg,
                service,
                corpus.page(doc),
                target.entity,
                target.predicate,
            ));
            doc_span.stop();
        }
        let scored = cfg.corroborator.corroborate(&candidates);
        let winner = scored
            .iter()
            .find(|s| s.probability >= cfg.min_probability && s.value.is_some())
            .cloned();
        if let Some(w) = &winner {
            let value = w.value.clone().expect("winner has parsed value");
            // Single-cardinality predicates are *replaced*: a refreshed
            // value supersedes the stale one (paper Sec. 4, freshness).
            let info = kg.ontology().predicate(target.predicate);
            if info.cardinality == saga_core::Cardinality::Single {
                for old in kg.objects(target.entity, target.predicate) {
                    if !old.same_as(&value) {
                        kg.remove(&Triple {
                            subject: target.entity,
                            predicate: target.predicate,
                            object: old,
                        });
                    }
                }
            }
            kg.insert_with(
                Triple { subject: target.entity, predicate: target.predicate, object: value },
                src,
                w.probability,
            );
            facts_written += 1;
        }
        outcomes.push(TargetOutcome {
            entity: target.entity,
            predicate: target.predicate,
            winner,
            scored,
            docs_examined: docs.len(),
            status: TargetStatus::Ok,
        });
    }
    kg.commit();

    let report = OdkeReport {
        outcomes,
        distinct_docs_fetched: all_docs.len(),
        corpus_size: corpus.len(),
        facts_written,
        retries: 0,
        quarantined: Vec::new(),
    };
    report.record_to(scope);
    run_span.stop();
    report
}

/// Calibrates the corroborator on targets whose true value is known: runs
/// retrieval+extraction, labels each scored value by string equality with
/// the truth, and trains the logistic model (the "trained machine learning
/// model" of Sec. 4).
pub fn calibrate_corroborator(
    kg: &KnowledgeGraph,
    service: &AnnotationService,
    search: &SearchEngine,
    corpus: &Corpus,
    labelled: &[(FactTarget, String)],
    docs_per_query: usize,
) -> Corroborator {
    let mut examples: Vec<(EvidenceFeatures, bool)> = Vec::new();
    for (target, truth) in labelled {
        let docs = find_documents(kg, search, target, docs_per_query);
        let mut candidates = Vec::new();
        for &doc in &docs {
            candidates.extend(extract_from_page(
                kg,
                service,
                corpus.page(doc),
                target.entity,
                target.predicate,
            ));
        }
        for (value_text, features, _) in crate::corroborate::featurize(&candidates) {
            examples.push((features, &value_text == truth));
        }
    }
    Corroborator::train(&examples, 400, 0.5)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::profiler::TargetReason;
    use saga_annotation::{LinkerConfig, Tier};
    use saga_core::synth::{generate, SynthConfig};
    use saga_core::{Date, Value};
    use saga_webcorpus::{generate_corpus, CorpusConfig};

    fn setup() -> (
        saga_core::synth::SynthKg,
        Corpus,
        saga_webcorpus::CorpusTruth,
        AnnotationService,
        SearchEngine,
    ) {
        let s = generate(&SynthConfig::tiny(231));
        let extra = vec![(
            s.scenario.mw_singer,
            s.preds.date_of_birth,
            Value::Date(Date::new(1979, 7, 23).unwrap()),
        )];
        let (c, t) = generate_corpus(&s, &extra, &CorpusConfig::tiny(17));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        let search = SearchEngine::build(&c);
        (s, c, t, svc, search)
    }

    #[test]
    fn fig6_scenario_recovers_the_singer_dob() {
        let (s, c, _t, svc, search) = setup();
        let mut kg = s.kg.clone();
        let target = FactTarget {
            entity: s.scenario.mw_singer,
            predicate: s.preds.date_of_birth,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        };
        let report = run_odke(&mut kg, &svc, &search, &c, &[target], &OdkeConfig::default());
        let outcome = &report.outcomes[0];
        let winner = outcome.winner.as_ref().expect("a DOB must be found");
        assert_eq!(
            winner.value_text, "1979-07-23",
            "must pick the singer's DOB, not the actress's 1980-09-09: {:?}",
            outcome.scored
        );
        // The fact is now in the KG with ODKE provenance.
        let got = kg.object(s.scenario.mw_singer, s.preds.date_of_birth);
        assert_eq!(got, Some(Value::Date(Date::new(1979, 7, 23).unwrap())));
        assert_eq!(report.facts_written, 1);
    }

    #[test]
    fn targeted_search_touches_a_small_corpus_fraction() {
        let (s, c, _t, svc, search) = setup();
        let mut kg = s.kg.clone();
        let targets: Vec<FactTarget> = s.people[..10]
            .iter()
            .map(|&e| FactTarget {
                entity: e,
                predicate: s.preds.date_of_birth,
                reason: TargetReason::CoverageGap,
                importance: 1.0,
            })
            .collect();
        let report = run_odke(&mut kg, &svc, &search, &c, &targets, &OdkeConfig::default());
        assert!(
            report.volume_fraction() < 0.5,
            "targeted search must not scan the whole corpus: {}",
            report.volume_fraction()
        );
        assert!(report.distinct_docs_fetched > 0);
    }

    #[test]
    fn delta_selection_reextracts_only_dirty_targets() {
        let (s, _c, _t, _svc, _search) = setup();
        let targets: Vec<FactTarget> = s.people[..10]
            .iter()
            .map(|&e| FactTarget {
                entity: e,
                predicate: s.preds.date_of_birth,
                reason: TargetReason::CoverageGap,
                importance: 1.0,
            })
            .collect();
        let mut batch = DeltaBatch::empty(0);
        batch.mark_entity(s.people[2]);
        batch.mark_entity(s.people[7]);
        batch.mark_entity(s.people[40]); // dirty but untargeted
        let selected = select_delta_targets(&targets, &batch);
        assert_eq!(
            selected.iter().map(|t| t.entity).collect::<Vec<_>>(),
            vec![s.people[2], s.people[7]],
            "only dirty targeted entities survive, in original order"
        );
        assert!(select_delta_targets(&targets, &DeltaBatch::empty(0)).is_empty());
    }

    #[test]
    fn delta_run_writes_the_same_facts_as_a_full_run_on_dirty_targets() {
        let (s, c, _t, svc, search) = setup();
        let target = FactTarget {
            entity: s.scenario.mw_singer,
            predicate: s.preds.date_of_birth,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        };
        let mut batch = DeltaBatch::empty(3);
        batch.to = 4;
        batch.mark_entity(s.scenario.mw_singer);
        let reg = Registry::new();
        let mut kg = s.kg.clone();
        let report = run_odke_delta_obs(
            &mut kg,
            &svc,
            &search,
            &c,
            &[target],
            &batch,
            &OdkeConfig::default(),
            &reg.scope("odke"),
            &reg.scope("delta"),
        );
        assert_eq!(report.facts_written, 1);
        assert_eq!(reg.snapshot().counter("delta/targets_reextracted"), 1);
        // Identical to the full run over the same (dirty) target.
        let mut full_kg = s.kg.clone();
        run_odke(&mut full_kg, &svc, &search, &c, &[target], &OdkeConfig::default());
        assert_eq!(
            kg.object(s.scenario.mw_singer, s.preds.date_of_birth),
            full_kg.object(s.scenario.mw_singer, s.preds.date_of_birth)
        );
    }

    #[test]
    fn interrupted_delta_run_resumes_from_checkpoint() {
        use crate::resilient::{CheckpointLog, ResilientOdke, RunCheckpoint};
        use saga_webcorpus::ReliableSource;
        let (s, c, _t, svc, search) = setup();
        let all_targets: Vec<FactTarget> = s.people[..6]
            .iter()
            .map(|&e| FactTarget {
                entity: e,
                predicate: s.preds.date_of_birth,
                reason: TargetReason::CoverageGap,
                importance: 1.0,
            })
            .collect();
        let mut batch = DeltaBatch::empty(0);
        for &e in &s.people[..4] {
            batch.mark_entity(e);
        }
        let selected = select_delta_targets(&all_targets, &batch);
        assert_eq!(selected.len(), 4);
        let source = ReliableSource::new(&search, &c);

        // Uninterrupted reference run.
        let mut ref_kg = s.kg.clone();
        let mut ref_cp = RunCheckpoint::default();
        let ref_report = ResilientOdke::new(&source, OdkeConfig::default())
            .run(&mut ref_kg, &svc, &selected, &mut ref_cp, None)
            .unwrap();

        // Killed after 2 targets, then resumed from the same checkpoint.
        let mut kg = s.kg.clone();
        let mut cp = RunCheckpoint::default();
        ResilientOdke::new(&source, OdkeConfig::default())
            .with_max_targets(2)
            .run(&mut kg, &svc, &selected, &mut cp, None)
            .unwrap();
        assert_eq!(cp.completed(), 2, "killed mid-run");
        let resumed = ResilientOdke::new(&source, OdkeConfig::default())
            .run(&mut kg, &svc, &selected, &mut cp, None)
            .unwrap();
        assert_eq!(cp.completed(), selected.len());
        assert_eq!(resumed.outcomes.len(), ref_report.outcomes.len());
        assert_eq!(resumed.facts_written, ref_report.facts_written);
        for t in &selected {
            assert_eq!(
                kg.object(t.entity, t.predicate),
                ref_kg.object(t.entity, t.predicate),
                "resumed delta run converges to the uninterrupted one"
            );
        }

        // The same kill survives a process death via the WAL. Offline builds
        // link a type-check-only serde stub that cannot persist frames; the
        // WAL replay half only runs with real serde (CI).
        if serde_json::to_string(&1u64).is_err() {
            return;
        }
        let dir = std::env::temp_dir().join(format!("saga-odke-delta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("delta.ckpt");
        let _ = std::fs::remove_file(&log_path);
        let mut wal_kg = s.kg.clone();
        {
            let (mut log, mut cp) = CheckpointLog::open(&log_path).unwrap();
            ResilientOdke::new(&source, OdkeConfig::default())
                .with_max_targets(2)
                .run(&mut wal_kg, &svc, &selected, &mut cp, Some(&mut log))
                .unwrap();
        }
        let (mut log, mut cp) = CheckpointLog::open(&log_path).unwrap();
        assert_eq!(cp.completed(), 2, "checkpoint survives the kill");
        let wal_resumed = ResilientOdke::new(&source, OdkeConfig::default())
            .run(&mut wal_kg, &svc, &selected, &mut cp, Some(&mut log))
            .unwrap();
        assert_eq!(wal_resumed.outcomes.len(), ref_report.outcomes.len());
        for t in &selected {
            assert_eq!(
                wal_kg.object(t.entity, t.predicate),
                ref_kg.object(t.entity, t.predicate),
                "WAL-resumed delta run converges to the uninterrupted one"
            );
        }
        let _ = std::fs::remove_file(&log_path);
    }

    #[test]
    fn calibration_produces_a_working_model() {
        let (s, c, t, svc, search) = setup();
        // Labelled targets: facts the KG already has, with their truth.
        let mut labelled = Vec::new();
        for (_, e, p, v) in
            t.rendered_facts.iter().filter(|(_, _, p, _)| *p == s.preds.date_of_birth).take(30)
        {
            labelled.push((
                FactTarget {
                    entity: *e,
                    predicate: *p,
                    reason: TargetReason::CoverageGap,
                    importance: 1.0,
                },
                v.clone(),
            ));
        }
        assert!(labelled.len() >= 5, "need calibration data");
        let model = calibrate_corroborator(&s.kg, &svc, &search, &c, &labelled, 4);
        // The trained model should still solve the Fig. 6 scenario.
        let mut kg = s.kg.clone();
        let target = FactTarget {
            entity: s.scenario.mw_singer,
            predicate: s.preds.date_of_birth,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        };
        let cfg = OdkeConfig { corroborator: model, min_probability: 0.3, ..Default::default() };
        let report = run_odke(&mut kg, &svc, &search, &c, &[target], &cfg);
        let outcome = &report.outcomes[0];
        if let Some(w) = &outcome.winner {
            assert_eq!(w.value_text, "1979-07-23");
        }
    }
}
