//! Corroboration (Fig. 5/6 ⑤): aggregates candidate extractions per target
//! and scores each distinct value with a trained logistic model over
//! evidence features — "the number of support, extractor type and
//! confidence, and quality of the source page" plus the subject-identity
//! signal from semantic annotation.

use crate::extract::{ExtractedCandidate, ExtractorKind};
use serde::{Deserialize, Serialize};

/// Feature vector of one distinct candidate value. Field order is the model
/// weight order.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct EvidenceFeatures {
    /// ln(1 + number of supporting extractions).
    pub support: f32,
    /// Max extractor confidence among supports.
    pub max_confidence: f32,
    /// Mean extractor confidence.
    pub mean_confidence: f32,
    /// Mean source-page quality.
    pub mean_quality: f32,
    /// Fraction of supports whose page confirmed the subject identity.
    pub subject_confirmed_frac: f32,
    /// Distinct extractor kinds / 4.
    pub extractor_diversity: f32,
}

impl EvidenceFeatures {
    fn as_array(&self) -> [f32; 6] {
        [
            self.support,
            self.max_confidence,
            self.mean_confidence,
            self.mean_quality,
            self.subject_confirmed_frac,
            self.extractor_diversity,
        ]
    }
}

/// A scored distinct value for one `(subject, predicate)` target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScoredValue {
    /// Canonical value text (grouping key).
    pub value_text: String,
    /// A representative parsed value (first support with a parse).
    pub value: Option<saga_core::Value>,
    /// Evidence features of the value.
    pub features: EvidenceFeatures,
    /// Model probability that this value is correct.
    pub probability: f32,
    /// Number of raw supporting extractions.
    pub support_count: usize,
}

/// Groups candidates by value text and computes evidence features.
///
/// Supports within a group are sorted by `(doc, extractor)` before the
/// float aggregations run, so the features — and therefore the written
/// confidence — depend only on the candidate *set*, not the order the
/// search engine surfaced the documents in. The incremental growth path
/// relies on this: a delta re-extraction must converge bit-identically to
/// a batch rebuild even when churn reshuffles BM25 rankings.
pub fn featurize(
    candidates: &[ExtractedCandidate],
) -> Vec<(String, EvidenceFeatures, Vec<&ExtractedCandidate>)> {
    let mut groups: std::collections::BTreeMap<String, Vec<&ExtractedCandidate>> =
        Default::default();
    for c in candidates {
        groups.entry(c.value_text.clone()).or_default().push(c);
    }
    for supports in groups.values_mut() {
        supports.sort_by_key(|c| (c.doc, c.extractor));
    }
    groups
        .into_iter()
        .map(|(value, supports)| {
            let n = supports.len() as f32;
            let kinds: std::collections::HashSet<ExtractorKind> =
                supports.iter().map(|c| c.extractor).collect();
            let f = EvidenceFeatures {
                support: (1.0 + n).ln(),
                max_confidence: supports.iter().map(|c| c.confidence).fold(0.0, f32::max),
                mean_confidence: supports.iter().map(|c| c.confidence).sum::<f32>() / n,
                mean_quality: supports.iter().map(|c| c.page_quality).sum::<f32>() / n,
                subject_confirmed_frac: supports.iter().filter(|c| c.subject_confirmed).count()
                    as f32
                    / n,
                extractor_diversity: kinds.len() as f32 / 4.0,
            };
            (value, f, supports)
        })
        .collect()
}

/// Logistic corroboration model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Corroborator {
    /// Feature weights (order of `EvidenceFeatures`).
    pub weights: [f32; 6],
    /// Intercept term.
    pub bias: f32,
}

impl Default for Corroborator {
    /// Sensible hand-tuned prior (used before calibration data exists).
    fn default() -> Self {
        Self { weights: [0.8, 0.6, 0.4, 0.5, 2.0, 0.5], bias: -2.0 }
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Corroborator {
    /// Probability a value with features `f` is correct.
    pub fn predict(&self, f: &EvidenceFeatures) -> f32 {
        let z: f32 =
            self.bias + f.as_array().iter().zip(&self.weights).map(|(x, w)| x * w).sum::<f32>();
        sigmoid(z)
    }

    /// Trains by gradient descent on labelled `(features, correct)` pairs.
    /// Deterministic (full-batch).
    pub fn train(examples: &[(EvidenceFeatures, bool)], epochs: usize, lr: f32) -> Self {
        let mut m = Corroborator { weights: [0.0; 6], bias: 0.0 };
        if examples.is_empty() {
            return Corroborator::default();
        }
        let n = examples.len() as f32;
        for _ in 0..epochs {
            let mut gw = [0.0f32; 6];
            let mut gb = 0.0f32;
            for (f, label) in examples {
                let p = m.predict(f);
                let err = p - (*label as u8 as f32);
                for (i, x) in f.as_array().iter().enumerate() {
                    gw[i] += err * x;
                }
                gb += err;
            }
            for i in 0..6 {
                m.weights[i] -= lr * gw[i] / n;
            }
            m.bias -= lr * gb / n;
        }
        m
    }

    /// Scores all distinct values of a candidate set, best first.
    pub fn corroborate(&self, candidates: &[ExtractedCandidate]) -> Vec<ScoredValue> {
        let mut out: Vec<ScoredValue> = featurize(candidates)
            .into_iter()
            .map(|(value_text, features, supports)| ScoredValue {
                value: supports.iter().find_map(|c| c.value.clone()),
                support_count: supports.len(),
                probability: self.predict(&features),
                value_text,
                features,
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability.total_cmp(&a.probability).then(a.value_text.cmp(&b.value_text))
        });
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_core::{DocId, EntityId, PredicateId, Value};

    fn cand(
        value: &str,
        confidence: f32,
        quality: f32,
        confirmed: bool,
        kind: ExtractorKind,
    ) -> ExtractedCandidate {
        ExtractedCandidate {
            doc: DocId(0),
            subject: EntityId(1),
            predicate: PredicateId(2),
            value_text: value.into(),
            value: Some(Value::Text(value.into())),
            extractor: kind,
            confidence,
            page_quality: quality,
            subject_confirmed: confirmed,
        }
    }

    #[test]
    fn featurize_groups_by_value() {
        let cands = vec![
            cand("1979-07-23", 0.9, 0.8, true, ExtractorKind::Infobox),
            cand("1979-07-23", 0.7, 0.9, true, ExtractorKind::Pattern),
            cand("1980-09-09", 0.7, 0.4, false, ExtractorKind::Pattern),
        ];
        let groups = featurize(&cands);
        assert_eq!(groups.len(), 2);
        let right = groups.iter().find(|(v, _, _)| v == "1979-07-23").unwrap();
        assert!((right.1.support - (3.0f32).ln()).abs() < 1e-6);
        assert_eq!(right.1.subject_confirmed_frac, 1.0);
        assert!((right.1.extractor_diversity - 2.0 / 4.0).abs() < 1e-6);
    }

    #[test]
    fn default_model_prefers_confirmed_supported_values() {
        let m = Corroborator::default();
        let cands = vec![
            cand("right", 0.9, 0.9, true, ExtractorKind::Infobox),
            cand("right", 0.7, 0.8, true, ExtractorKind::Pattern),
            cand("wrong", 0.9, 0.5, false, ExtractorKind::Pattern),
        ];
        let scored = m.corroborate(&cands);
        assert_eq!(scored[0].value_text, "right");
        assert!(scored[0].probability > scored[1].probability);
    }

    #[test]
    fn training_learns_to_separate() {
        // Synthetic labelled data: confirmed+supported = correct.
        let mut examples = Vec::new();
        for i in 0..200 {
            let good = i % 2 == 0;
            let f = EvidenceFeatures {
                support: if good { 1.4 } else { 0.7 },
                max_confidence: if good { 0.9 } else { 0.6 },
                mean_confidence: if good { 0.8 } else { 0.5 },
                mean_quality: 0.7,
                subject_confirmed_frac: if good { 1.0 } else { 0.1 },
                extractor_diversity: if good { 0.67 } else { 0.33 },
            };
            examples.push((f, good));
        }
        let m = Corroborator::train(&examples, 500, 0.5);
        let correct = examples.iter().filter(|(f, label)| (m.predict(f) > 0.5) == *label).count();
        assert!(correct as f64 / examples.len() as f64 > 0.95, "accuracy {correct}/200");
        // Subject confirmation must carry positive weight.
        assert!(m.weights[4] > 0.0);
    }

    #[test]
    fn empty_training_falls_back_to_default() {
        let m = Corroborator::train(&[], 10, 0.1);
        assert_eq!(m.weights, Corroborator::default().weights);
    }
}
