//! Fault-tolerant ODKE runner: the pipeline of [`crate::runner::run_odke`]
//! rebuilt on top of a fallible [`DocumentSource`], with per-operation
//! retry (exponential backoff, deterministic jitter), per-site circuit
//! breakers, target quarantine, and a WAL-backed [`RunCheckpoint`] so a
//! killed run resumes processing only incomplete targets.
//!
//! Determinism contract: fault decisions are pure functions of
//! `(plan seed, site, operation key, attempt)` and every retry loop starts
//! its attempt counter at zero, so a resumed run observes byte-identical
//! fault behaviour for each remaining target as the uninterrupted run
//! would have. Circuit-breaker and retry-budget state is process-local and
//! deliberately *not* checkpointed — resume equivalence is exact whenever
//! breakers never trip and the budget never empties (the default
//! configuration), and best-effort otherwise.

use crate::extract::extract_from_page;
use crate::profiler::FactTarget;
use crate::runner::{OdkeConfig, OdkeReport, TargetOutcome, TargetStatus};
use crate::synthesize::synthesize_queries;
use saga_annotation::AnnotationService;
use saga_core::fault::{
    BreakerConfig, BreakerSet, FaultInjector, RetryBudget, RetryPolicy, VirtualClock,
};
use saga_core::obs::{Scope, SpanTimer};
use saga_core::persist::Wal;
use saga_core::text::fnv1a;
use saga_core::{DocId, KnowledgeGraph, Result, Triple};
use saga_webcorpus::{DocumentSource, SITE_FETCH, SITE_SEARCH};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::path::Path;
use std::sync::Arc;

/// Fault-injection site name for candidate extraction (a local compute
/// step that can still crash on a pathological document).
pub const SITE_EXTRACT: &str = "extract";

// --------------------------------------------------------- checkpointing

/// Durable progress of one resilient ODKE run, keyed by target index.
///
/// Serializable so it can be persisted wholesale; the incremental path is
/// [`CheckpointLog`], which replays per-target WAL entries back into one
/// of these on open.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Completed targets (quarantined ones included — retrying them in the
    /// same run would deterministically fail again), by target index.
    pub done: BTreeMap<usize, TargetOutcome>,
    /// Distinct documents successfully fetched so far.
    pub docs_fetched: BTreeSet<DocId>,
    /// Facts written into the KG so far.
    pub facts_written: usize,
    /// Transient retries spent so far.
    pub retries: u64,
}

impl RunCheckpoint {
    /// Whether target `index` has already been processed.
    pub fn is_done(&self, index: usize) -> bool {
        self.done.contains_key(&index)
    }

    /// Number of targets processed so far.
    pub fn completed(&self) -> usize {
        self.done.len()
    }

    fn apply(&mut self, entry: CheckpointEntry) {
        self.docs_fetched.extend(entry.docs);
        self.facts_written += entry.facts_delta;
        self.retries += entry.retries_delta;
        self.done.insert(entry.index, entry.outcome);
    }
}

/// One completed target, as appended to the checkpoint WAL.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CheckpointEntry {
    index: usize,
    outcome: TargetOutcome,
    /// Documents newly fetched while processing this target.
    docs: Vec<DocId>,
    facts_delta: usize,
    retries_delta: u64,
}

/// Append-only checkpoint journal over [`saga_core::persist::Wal`]. One
/// JSON-encoded [`CheckpointEntry`] per completed target; a torn tail
/// (killed mid-append) silently drops only the unfinished entry.
pub struct CheckpointLog {
    wal: Wal,
}

impl CheckpointLog {
    /// Opens (or creates) the journal at `path` and replays it into the
    /// [`RunCheckpoint`] the interrupted run had reached.
    pub fn open(path: &Path) -> Result<(Self, RunCheckpoint)> {
        let (wal, frames) = Wal::open(path)?;
        let mut checkpoint = RunCheckpoint::default();
        for frame in frames {
            let entry: CheckpointEntry = serde_json::from_slice(&frame)?;
            checkpoint.apply(entry);
        }
        Ok((Self { wal }, checkpoint))
    }

    fn record(&mut self, entry: &CheckpointEntry) -> Result<()> {
        self.wal.append(&serde_json::to_vec(entry)?)?;
        self.wal.sync()
    }
}

// --------------------------------------------------------------- runner

/// The resilient pipeline: `run_odke` semantics over a fallible source.
pub struct ResilientOdke<'a> {
    source: &'a dyn DocumentSource,
    cfg: OdkeConfig,
    retry: RetryPolicy,
    clock: VirtualClock,
    breakers: BreakerSet,
    budget: RetryBudget,
    extract_faults: Option<&'a FaultInjector>,
    max_targets: Option<usize>,
    obs: Option<Scope>,
}

impl<'a> ResilientOdke<'a> {
    /// A runner over `source` with default retry policy, a fresh virtual
    /// clock, default breakers, and an unlimited retry budget.
    pub fn new(source: &'a dyn DocumentSource, cfg: OdkeConfig) -> Self {
        Self {
            source,
            cfg,
            retry: RetryPolicy::default(),
            clock: VirtualClock::new(),
            breakers: BreakerSet::new(BreakerConfig::default()),
            budget: RetryBudget::unlimited(),
            extract_faults: None,
            max_targets: None,
            obs: None,
        }
    }

    /// Records run metrics into `scope`: per-document fetch+extract spans
    /// under `<scope>/extract/doc_ticks` (timed on the runner's virtual
    /// clock, deterministic because the target loop is sequential), loss
    /// counters under the `search`/`fetch` site names, and the
    /// [`OdkeReport`] counters at the end of the run.
    pub fn with_obs(mut self, scope: Scope) -> Self {
        self.obs = Some(scope);
        self
    }

    /// Overrides the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Shares a virtual clock (pass the injector's clock so backoff and
    /// breaker cooldowns see injected latency).
    pub fn with_clock(mut self, clock: VirtualClock) -> Self {
        self.clock = clock;
        self
    }

    /// Overrides the circuit-breaker configuration.
    pub fn with_breakers(mut self, cfg: BreakerConfig) -> Self {
        self.breakers = BreakerSet::new(cfg);
        self
    }

    /// Caps the shared retry budget.
    pub fn with_budget(mut self, budget: RetryBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Injects faults into the (otherwise local) extraction step, keyed by
    /// document id at site [`SITE_EXTRACT`].
    pub fn with_extract_faults(mut self, injector: &'a FaultInjector) -> Self {
        self.extract_faults = Some(injector);
        self
    }

    /// Processes at most `n` *new* targets, then stops — the test hook for
    /// simulating a killed run.
    pub fn with_max_targets(mut self, n: usize) -> Self {
        self.max_targets = Some(n);
        self
    }

    /// The runner's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Runs `op` under the retry policy, accumulating the retries it spent
    /// into `retries`.
    fn run_retrying<T>(
        &self,
        salt: u64,
        retries: &mut u64,
        mut op: impl FnMut(u32) -> Result<T>,
    ) -> Result<T> {
        let mut last_attempt = 0;
        let result = self.retry.run(&self.clock, &self.budget, salt, |attempt| {
            last_attempt = attempt;
            op(attempt)
        });
        *retries += u64::from(last_attempt);
        result
    }

    /// Runs the pipeline over `targets`, skipping those already recorded
    /// in `checkpoint` and appending each newly completed target to `log`
    /// (when given) before moving on. Accepted facts are written into
    /// `kg`; the returned report covers everything in `checkpoint`,
    /// including work done by previous (interrupted) runs.
    pub fn run(
        &self,
        kg: &mut KnowledgeGraph,
        service: &AnnotationService,
        targets: &[FactTarget],
        checkpoint: &mut RunCheckpoint,
        mut log: Option<&mut CheckpointLog>,
    ) -> Result<OdkeReport> {
        let src = kg.register_source("odke");
        let mut processed = 0usize;
        // Span ticks are measured on the runner's own virtual clock so they
        // reproduce bit-for-bit under fault injection.
        let obs_clock: Arc<dyn saga_core::obs::Clock> = Arc::new(self.clock.clone());
        let extract_hist = self.obs.as_ref().map(|s| s.child(SITE_EXTRACT).histogram("doc_ticks"));
        let queries_lost_c =
            self.obs.as_ref().map(|s| s.child(SITE_SEARCH).counter("queries_lost"));
        let docs_lost_c = self.obs.as_ref().map(|s| s.child(SITE_FETCH).counter("docs_lost"));
        let run_span = self
            .obs
            .as_ref()
            .map(|s| SpanTimer::start(s.histogram("run_ticks"), obs_clock.clone()));

        for (index, target) in targets.iter().enumerate() {
            if checkpoint.is_done(index) {
                continue;
            }
            if self.max_targets.is_some_and(|max| processed >= max) {
                break;
            }
            processed += 1;

            let mut retries_delta = 0u64;
            let mut queries_lost = 0usize;
            let mut docs_lost = 0usize;
            let mut last_error = String::new();

            // 1. Search: each synthesized query independently retried;
            //    a query that never succeeds costs its hits, not the run.
            let search_breaker = self.breakers.breaker(SITE_SEARCH);
            let mut docs: Vec<DocId> = Vec::new();
            let mut seen = HashSet::new();
            for q in synthesize_queries(kg, target) {
                if !search_breaker.allow(self.clock.now_ms()) {
                    queries_lost += 1;
                    last_error = format!("{SITE_SEARCH} circuit open");
                    continue;
                }
                let salt = fnv1a(q.text.as_bytes());
                match self.run_retrying(salt, &mut retries_delta, |attempt| {
                    self.source.search(&q.text, self.cfg.docs_per_query, attempt)
                }) {
                    Ok(hits) => {
                        search_breaker.record(self.clock.now_ms(), true);
                        for hit in hits {
                            if seen.insert(hit.doc) {
                                docs.push(hit.doc);
                            }
                        }
                    }
                    Err(e) => {
                        search_breaker.record(self.clock.now_ms(), false);
                        queries_lost += 1;
                        last_error = e.to_string();
                    }
                }
            }

            // 2. Fetch + extract: per-document retry; a document that
            //    cannot be fetched or extracted costs its evidence only.
            let fetch_breaker = self.breakers.breaker(SITE_FETCH);
            let mut fetched: Vec<DocId> = Vec::new();
            let mut candidates = Vec::new();
            for &doc in &docs {
                if !fetch_breaker.allow(self.clock.now_ms()) {
                    docs_lost += 1;
                    last_error = format!("{SITE_FETCH} circuit open");
                    continue;
                }
                let doc_span =
                    extract_hist.as_ref().map(|h| SpanTimer::start(h.clone(), obs_clock.clone()));
                match self.run_retrying(doc.raw(), &mut retries_delta, |attempt| {
                    let page = self.source.fetch(doc, attempt)?;
                    if let Some(inj) = self.extract_faults {
                        inj.check(SITE_EXTRACT, doc.raw(), attempt)?;
                    }
                    Ok(extract_from_page(kg, service, page, target.entity, target.predicate))
                }) {
                    Ok(found) => {
                        fetch_breaker.record(self.clock.now_ms(), true);
                        fetched.push(doc);
                        candidates.extend(found);
                    }
                    Err(e) => {
                        fetch_breaker.record(self.clock.now_ms(), false);
                        docs_lost += 1;
                        last_error = e.to_string();
                    }
                }
                drop(doc_span);
            }
            if let Some(c) = &queries_lost_c {
                c.add(queries_lost as u64);
            }
            if let Some(c) = &docs_lost_c {
                c.add(docs_lost as u64);
            }

            // 3. Corroborate + fuse, exactly as the infallible runner —
            //    unless nothing at all was retrieved, in which case the
            //    target is quarantined rather than scored on silence.
            let lossy = queries_lost > 0 || docs_lost > 0;
            let status = if !lossy {
                TargetStatus::Ok
            } else if fetched.is_empty() {
                TargetStatus::Skipped { error: last_error }
            } else {
                TargetStatus::Degraded { queries_lost, docs_lost }
            };

            let mut facts_delta = 0usize;
            let (winner, scored) = if matches!(status, TargetStatus::Skipped { .. }) {
                (None, Vec::new())
            } else {
                let scored = self.cfg.corroborator.corroborate(&candidates);
                let winner = scored
                    .iter()
                    .find(|s| s.probability >= self.cfg.min_probability && s.value.is_some())
                    .cloned();
                if let Some(w) = &winner {
                    let value = w.value.clone().ok_or_else(|| {
                        saga_core::SagaError::Corrupt("winner lost its parsed value".into())
                    })?;
                    let info = kg.ontology().predicate(target.predicate);
                    if info.cardinality == saga_core::Cardinality::Single {
                        for old in kg.objects(target.entity, target.predicate) {
                            if !old.same_as(&value) {
                                kg.remove(&Triple {
                                    subject: target.entity,
                                    predicate: target.predicate,
                                    object: old,
                                });
                            }
                        }
                    }
                    kg.insert_with(
                        Triple {
                            subject: target.entity,
                            predicate: target.predicate,
                            object: value,
                        },
                        src,
                        w.probability,
                    );
                    facts_delta = 1;
                }
                (winner, scored)
            };

            let entry = CheckpointEntry {
                index,
                outcome: TargetOutcome {
                    entity: target.entity,
                    predicate: target.predicate,
                    winner,
                    scored,
                    docs_examined: fetched.len(),
                    status,
                },
                docs: fetched
                    .iter()
                    .filter(|d| !checkpoint.docs_fetched.contains(d))
                    .copied()
                    .collect(),
                facts_delta,
                retries_delta,
            };
            if let Some(log) = log.as_deref_mut() {
                log.record(&entry)?;
            }
            checkpoint.apply(entry);
        }
        kg.commit();

        let outcomes: Vec<TargetOutcome> = checkpoint.done.values().cloned().collect();
        let quarantined = checkpoint
            .done
            .iter()
            .filter(|(_, o)| matches!(o.status, TargetStatus::Skipped { .. }))
            .map(|(&i, _)| i)
            .collect();
        let report = OdkeReport {
            outcomes,
            distinct_docs_fetched: checkpoint.docs_fetched.len(),
            corpus_size: self.source.corpus_size(),
            facts_written: checkpoint.facts_written,
            retries: checkpoint.retries,
            quarantined,
        };
        if let Some(scope) = &self.obs {
            report.record_to(scope);
        }
        drop(run_span);
        Ok(report)
    }
}
