//! # saga-odke
//!
//! Open-Domain Knowledge Extraction (paper Sec. 4 / Figs. 5–6): identifying
//! important missing and stale facts (reactive, proactive and predictive
//! paths), synthesizing targeted search queries, extracting candidate facts
//! with a zoo of extractors, corroborating candidates with a trained
//! evidence model, and fusing accepted facts back into the knowledge graph.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used)]

pub mod corroborate;
pub mod extract;
pub mod profiler;
pub mod querylog;
pub mod resilient;
pub mod runner;
pub mod synthesize;

pub use corroborate::{featurize, Corroborator, EvidenceFeatures, ScoredValue};
pub use extract::{
    confirm_subject, extract_from_page, parse_value, ExtractedCandidate, ExtractorKind,
};
pub use profiler::{select_targets, FactTarget, ProfilerConfig, TargetReason};
pub use querylog::{generate_query_log, unanswered_targets, QueryRecord};
pub use resilient::{CheckpointLog, ResilientOdke, RunCheckpoint, SITE_EXTRACT};
pub use runner::{
    calibrate_corroborator, find_documents, run_odke, run_odke_delta_obs, run_odke_obs,
    select_delta_targets, OdkeConfig, OdkeReport, TargetOutcome, TargetStatus,
};
pub use synthesize::{synthesize_queries, SynthesizedQuery};
