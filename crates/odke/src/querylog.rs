//! Synthetic query logs and reactive gap detection.
//!
//! Paper Sec. 4: missing/stale facts "can \[be\] reactively identif\[ied\] ...
//! by analyzing query logs and finding user queries that are not answered
//! correctly due to missing or stale facts."

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use saga_core::synth::SynthKg;
use saga_core::{EntityId, PredicateId};
use serde::{Deserialize, Serialize};

/// One logged user query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRecord {
    /// The query/text content.
    pub text: String,
    /// The fact the user asked for.
    pub target: (EntityId, PredicateId),
    /// Whether the KG could answer it at log time.
    pub answered: bool,
}

/// Generates a query log: random "what is the {phrase} of {name}" questions
/// over popular entities; `answered` reflects current KG coverage.
pub fn generate_query_log(s: &SynthKg, queries: usize, seed: u64) -> Vec<QueryRecord> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let asked_preds = [
        s.preds.date_of_birth,
        s.preds.occupation,
        s.preds.spouse,
        s.preds.born_in,
        s.preds.lives_in,
    ];
    // Popularity-weighted subject sampling (popular entities are asked
    // about more, matching importance scoring downstream).
    let mut out = Vec::with_capacity(queries);
    for _ in 0..queries {
        // Rejection-sample by popularity.
        let subject = loop {
            let e = s.people[rng.gen_range(0..s.people.len())];
            if rng.gen::<f32>() < s.kg.entity(e).popularity.max(0.05) {
                break e;
            }
        };
        let pred = asked_preds[rng.gen_range(0..asked_preds.len())];
        let info = s.kg.ontology().predicate(pred);
        let name = &s.kg.entity(subject).name;
        let text = format!("what is the {} of {}", info.phrase, name);
        let answered = !s.kg.objects(subject, pred).is_empty();
        out.push(QueryRecord { text, target: (subject, pred), answered });
    }
    out
}

/// Extracts the distinct unanswered targets from a log, most-frequent first
/// (frequency ≈ user demand).
pub fn unanswered_targets(log: &[QueryRecord]) -> Vec<((EntityId, PredicateId), usize)> {
    let mut counts: std::collections::HashMap<(EntityId, PredicateId), usize> = Default::default();
    for q in log {
        if !q.answered {
            *counts.entry(q.target).or_default() += 1;
        }
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn log_reflects_kg_coverage() {
        let s = generate(&SynthConfig::tiny(191));
        let log = generate_query_log(&s, 500, 1);
        assert_eq!(log.len(), 500);
        for q in &log {
            let has = !s.kg.objects(q.target.0, q.target.1).is_empty();
            assert_eq!(q.answered, has);
            assert!(q.text.starts_with("what is the "));
        }
        // Some queries are unanswered (spouse coverage is partial).
        assert!(log.iter().any(|q| !q.answered));
        assert!(log.iter().any(|q| q.answered));
    }

    #[test]
    fn unanswered_targets_sorted_by_demand() {
        let s = generate(&SynthConfig::tiny(191));
        let log = generate_query_log(&s, 800, 2);
        let targets = unanswered_targets(&log);
        assert!(!targets.is_empty());
        assert!(targets.windows(2).all(|w| w[0].1 >= w[1].1));
        for ((e, p), _) in &targets {
            assert!(s.kg.objects(*e, *p).is_empty());
        }
    }

    #[test]
    fn log_generation_is_deterministic() {
        let s = generate(&SynthConfig::tiny(191));
        let a = generate_query_log(&s, 100, 3);
        let b = generate_query_log(&s, 100, 3);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.text == y.text));
    }
}
