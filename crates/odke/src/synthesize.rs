//! The Query Synthesizer (Fig. 5/6 ②): turns a missing-fact target into
//! several web-search queries, including type-disambiguated variants so the
//! right homonym's pages rank first.

use crate::profiler::FactTarget;
use saga_core::KnowledgeGraph;
use serde::{Deserialize, Serialize};

/// A synthesized search query with its provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthesizedQuery {
    /// The query/text content.
    pub text: String,
    /// Which template produced it (diagnostics).
    pub template: &'static str,
}

/// Generates search queries for a target, following the approach of
/// Kamath et al. \[12\]: multiple phrasings, including the entity's type and
/// description keywords as disambiguators.
pub fn synthesize_queries(kg: &KnowledgeGraph, target: &FactTarget) -> Vec<SynthesizedQuery> {
    let e = kg.entity(target.entity);
    let p = kg.ontology().predicate(target.predicate);
    let type_name = &kg.ontology().type_info(e.entity_type).name;
    let mut out = vec![
        SynthesizedQuery { text: format!("{} {}", e.name, p.phrase), template: "name-phrase" },
        SynthesizedQuery {
            text: format!("{} of {}", p.phrase, e.name),
            template: "phrase-of-name",
        },
        SynthesizedQuery {
            text: format!("{} {} {}", e.name, type_name, p.phrase),
            template: "name-type-phrase",
        },
    ];
    // Description keywords disambiguate homonyms ("michelle williams music
    // artist date of birth" vs the actress).
    let desc_words: Vec<&str> = e.description.split_whitespace().take(4).collect();
    if !desc_words.is_empty() {
        out.push(SynthesizedQuery {
            text: format!("{} {} {}", e.name, desc_words.join(" "), p.phrase),
            template: "name-description-phrase",
        });
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::profiler::{FactTarget, TargetReason};
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn queries_mention_name_and_phrase() {
        let s = generate(&SynthConfig::tiny(211));
        let target = FactTarget {
            entity: s.scenario.mw_singer,
            predicate: s.preds.date_of_birth,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        };
        let queries = synthesize_queries(&s.kg, &target);
        assert!(queries.len() >= 3);
        for q in &queries {
            assert!(q.text.contains("Michelle Williams"));
            assert!(q.text.contains("date of birth"));
        }
        // The disambiguating variant includes description words.
        assert!(
            queries.iter().any(|q| q.text.contains("music")),
            "description disambiguator present: {queries:?}"
        );
    }

    #[test]
    fn templates_are_distinct() {
        let s = generate(&SynthConfig::tiny(211));
        let target = FactTarget {
            entity: s.people[10],
            predicate: s.preds.born_in,
            reason: TargetReason::CoverageGap,
            importance: 1.0,
        };
        let queries = synthesize_queries(&s.kg, &target);
        let templates: std::collections::HashSet<_> = queries.iter().map(|q| q.template).collect();
        assert_eq!(templates.len(), queries.len());
    }
}
