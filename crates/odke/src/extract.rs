//! The extractor zoo (paper Sec. 4, "variety of data and tasks"): a
//! rule-based infobox extractor for semi-structured data, a pattern
//! extractor for templated prose, and a contextual extractor that uses
//! semantic-annotation output as weak supervision for free-form sentences.

use saga_annotation::AnnotationService;
use saga_core::text::normalize_phrase;
use saga_core::{DocId, EntityId, KnowledgeGraph, PredicateId, Value, ValueKind};
use saga_webcorpus::WebPage;
use serde::{Deserialize, Serialize};

/// Which extractor produced a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ExtractorKind {
    /// Rule-based key-value extraction from structured infoboxes
    /// (schema.org-style data).
    Infobox,
    /// Template patterns over prose.
    Pattern,
    /// Annotation-guided contextual extraction ("neural-style").
    Contextual,
    /// Column-mapped extraction from semi-structured data tables (the
    /// Knowledge-Vault-style table source).
    Table,
}

/// A candidate fact extracted from one document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExtractedCandidate {
    /// Document id.
    pub doc: DocId,
    /// The subject position.
    pub subject: EntityId,
    /// The predicate.
    pub predicate: PredicateId,
    /// Raw rendered value as found on the page.
    pub value_text: String,
    /// Parsed into the predicate's range kind (None = unparseable).
    pub value: Option<Value>,
    /// Extractor that produced the candidate.
    pub extractor: ExtractorKind,
    /// Extractor confidence in `[0,1]`.
    pub confidence: f32,
    /// Source page quality prior.
    pub page_quality: f32,
    /// Whether the page's lead mention of the subject's name actually links
    /// to `subject` (vs a homonym) per the annotation service — the signal
    /// that untangles the Fig. 6 confusion.
    pub subject_confirmed: bool,
}

/// Parses `text` into the predicate's expected value kind. Entity values
/// resolve by exact name against the KG.
pub fn parse_value(kg: &KnowledgeGraph, range: ValueKind, text: &str) -> Option<Value> {
    let t = text.trim().trim_end_matches('.');
    match range {
        ValueKind::Date => saga_core::Date::parse(t).map(Value::Date),
        ValueKind::Integer => t.parse::<i64>().ok().map(Value::Integer),
        ValueKind::Float => t.parse::<f64>().ok().map(Value::Float),
        ValueKind::Bool => t.parse::<bool>().ok().map(Value::Bool),
        ValueKind::Identifier => Some(Value::Identifier(t.to_owned())),
        ValueKind::Text => Some(Value::Text(t.to_owned())),
        ValueKind::Entity => {
            let norm = normalize_phrase(t);
            kg.entities()
                .find(|e| e.surface_forms().any(|f| normalize_phrase(f) == norm))
                .map(|e| Value::Entity(e.id))
        }
    }
}

/// Checks whether the page's opening links the subject's name to the target
/// entity (rather than a homonym).
pub fn confirm_subject(service: &AnnotationService, page: &WebPage, subject: EntityId) -> bool {
    let lead =
        format!("{}. {}", page.title, page.paragraphs.first().map(String::as_str).unwrap_or(""));
    service.annotate(&lead).iter().any(|m| m.entity == subject)
}

/// Runs all applicable extractors for `(subject, predicate)` on one page.
pub fn extract_from_page(
    kg: &KnowledgeGraph,
    service: &AnnotationService,
    page: &WebPage,
    subject: EntityId,
    predicate: PredicateId,
) -> Vec<ExtractedCandidate> {
    let pinfo = kg.ontology().predicate(predicate);
    let subject_rec = kg.entity(subject);
    let surface_forms: Vec<String> = subject_rec.surface_forms().map(normalize_phrase).collect();
    let confirmed = confirm_subject(service, page, subject);
    let mut out = Vec::new();

    // --- Infobox extractor (rule-based over structured data) -------------
    if normalize_matches(&page.title, &surface_forms) {
        for row in &page.infobox {
            if row.key == pinfo.phrase {
                let value = parse_value(kg, pinfo.range, &row.value);
                out.push(ExtractedCandidate {
                    doc: page.id,
                    subject,
                    predicate,
                    value_text: row.value.clone(),
                    value,
                    extractor: ExtractorKind::Infobox,
                    confidence: 0.9,
                    page_quality: page.quality,
                    subject_confirmed: confirmed,
                });
            }
        }
    }

    // --- Table extractor (semi-structured data tables) --------------------
    // A table yields a fact for `subject` when a column header matches the
    // predicate phrase and some row's key cell names the subject.
    for table in &page.tables {
        let Some(col) = table.columns.iter().position(|c| c == &pinfo.phrase) else { continue };
        if col == 0 {
            continue; // the key column cannot also be the value column
        }
        for row in &table.rows {
            if row.len() <= col {
                continue;
            }
            if !normalize_matches(&row[0], &surface_forms) {
                continue;
            }
            let value_text = row[col].clone();
            let value = parse_value(kg, pinfo.range, &value_text);
            out.push(ExtractedCandidate {
                doc: page.id,
                subject,
                predicate,
                value_text,
                value,
                extractor: ExtractorKind::Table,
                confidence: 0.85,
                page_quality: page.quality,
                // Tables attribute rows by the key cell, not the page
                // topic; a name match in a curated table is strong subject
                // evidence on its own.
                subject_confirmed: true,
            });
        }
    }

    // --- Pattern extractor over prose -------------------------------------
    for paragraph in &page.paragraphs {
        for sentence in paragraph.split_inclusive('.') {
            if let Some((name, value_text)) = match_template(sentence, &pinfo.phrase) {
                if !normalize_matches(&name, &surface_forms) {
                    continue;
                }
                let value = parse_value(kg, pinfo.range, &value_text);
                out.push(ExtractedCandidate {
                    doc: page.id,
                    subject,
                    predicate,
                    value_text: value_text.clone(),
                    value,
                    extractor: ExtractorKind::Pattern,
                    confidence: 0.75,
                    page_quality: page.quality,
                    subject_confirmed: confirmed,
                });
            }
        }
    }

    // --- Contextual extractor (annotation-guided, fuzzy) ------------------
    // For sentences that mention the subject and share vocabulary with the
    // predicate phrase, try to parse any token run as a value of the range
    // kind. Confidence scales with phrase-token overlap.
    let phrase_tokens: Vec<String> = pinfo
        .phrase
        .split_whitespace()
        .map(normalize_phrase)
        .filter(|t| !t.is_empty() && t != "of")
        .collect();
    for paragraph in &page.paragraphs {
        for sentence in paragraph.split_inclusive('.') {
            let norm_sentence = normalize_phrase(sentence);
            if !surface_forms.iter().any(|f| norm_sentence.contains(f.as_str())) {
                continue;
            }
            let overlap =
                phrase_tokens.iter().filter(|t| norm_sentence.contains(t.as_str())).count();
            if overlap == 0 || phrase_tokens.is_empty() {
                continue;
            }
            // Candidate values: whitespace-split fragments parseable to the
            // range kind (dates, integers) — only for literal ranges, where
            // fuzzy matching is meaningful.
            if matches!(pinfo.range, ValueKind::Date | ValueKind::Integer) {
                for frag in sentence.split_whitespace() {
                    if let Some(value) = parse_value(kg, pinfo.range, frag) {
                        let conf = 0.35 + 0.25 * (overlap as f32 / phrase_tokens.len() as f32);
                        out.push(ExtractedCandidate {
                            doc: page.id,
                            subject,
                            predicate,
                            value_text: frag.trim_end_matches('.').to_owned(),
                            value: Some(value),
                            extractor: ExtractorKind::Contextual,
                            confidence: conf,
                            page_quality: page.quality,
                            subject_confirmed: confirmed,
                        });
                    }
                }
            }
        }
    }

    out
}

fn normalize_matches(text: &str, forms: &[String]) -> bool {
    let n = normalize_phrase(text);
    forms.iter().any(|f| &n == f)
}

/// Matches the corpus sentence templates: `The {phrase} of {NAME} is
/// {VALUE}.` and `El {phrase} de {NAME} es {VALUE}.`, returning
/// `(name, value)`.
fn match_template(sentence: &str, phrase: &str) -> Option<(String, String)> {
    let s = sentence.trim();
    for (prefix, mid) in
        [(format!("The {phrase} of "), " is "), (format!("El {phrase} de "), " es ")]
    {
        if let Some(rest) = s.strip_prefix(&prefix) {
            if let Some(pos) = rest.find(mid) {
                let name = rest[..pos].to_owned();
                let value = rest[pos + mid.len()..].trim_end_matches('.').to_owned();
                if !name.is_empty() && !value.is_empty() {
                    return Some((name, value));
                }
            }
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use saga_annotation::{LinkerConfig, Tier};
    use saga_core::synth::{generate, SynthConfig};
    use saga_core::Date;
    use saga_webcorpus::{generate_corpus, CorpusConfig};

    fn setup() -> (
        saga_core::synth::SynthKg,
        saga_webcorpus::Corpus,
        saga_webcorpus::CorpusTruth,
        AnnotationService,
    ) {
        let s = generate(&SynthConfig::tiny(221));
        let extra = vec![(
            s.scenario.mw_singer,
            s.preds.date_of_birth,
            Value::Date(Date::new(1979, 7, 23).unwrap()),
        )];
        let (c, t) = generate_corpus(&s, &extra, &CorpusConfig::tiny(15));
        let svc = AnnotationService::build(&s.kg, LinkerConfig::tier(Tier::T2Contextual));
        (s, c, t, svc)
    }

    #[test]
    fn template_matcher_parses_both_languages() {
        assert_eq!(
            match_template("The date of birth of Jane Doe is 1970-01-01.", "date of birth"),
            Some(("Jane Doe".into(), "1970-01-01".into()))
        );
        assert_eq!(
            match_template("El date of birth de Jane Doe es 1970-01-01.", "date of birth"),
            Some(("Jane Doe".into(), "1970-01-01".into()))
        );
        assert_eq!(match_template("Unrelated sentence.", "date of birth"), None);
        assert_eq!(match_template("The spouse of X is Y.", "date of birth"), None);
    }

    #[test]
    fn parse_value_by_kind() {
        let s = generate(&SynthConfig::tiny(221));
        assert_eq!(
            parse_value(&s.kg, ValueKind::Date, "1979-07-23."),
            Some(Value::Date(Date::new(1979, 7, 23).unwrap()))
        );
        assert_eq!(parse_value(&s.kg, ValueKind::Integer, "42"), Some(Value::Integer(42)));
        assert_eq!(parse_value(&s.kg, ValueKind::Date, "not a date"), None);
        // Entity resolution by name.
        let v = parse_value(&s.kg, ValueKind::Entity, "Michael Jordan");
        assert!(matches!(v, Some(Value::Entity(_))));
        assert_eq!(parse_value(&s.kg, ValueKind::Entity, "Nobody Nowhere"), None);
    }

    #[test]
    fn extractors_recover_a_rendered_fact() {
        let (s, c, t, svc) = setup();
        // Find the page rendering the singer's injected DOB.
        let (doc, _, _, val) = t
            .rendered_facts
            .iter()
            .find(|(_, e, p, _)| *e == s.scenario.mw_singer && *p == s.preds.date_of_birth)
            .expect("fact rendered");
        let page = c.page(*doc);
        let cands =
            extract_from_page(&s.kg, &svc, page, s.scenario.mw_singer, s.preds.date_of_birth);
        assert!(!cands.is_empty(), "extractors must fire on the rendering page");
        assert!(
            cands.iter().any(|c| &c.value_text == val),
            "the true value {val} among candidates: {cands:?}"
        );
        // Multiple extractor kinds fire (prose sentence + contextual at
        // least; infobox when the page is structured).
        let kinds: std::collections::HashSet<_> = cands.iter().map(|c| c.extractor).collect();
        assert!(kinds.len() >= 2, "extractor diversity: {kinds:?}");
    }

    #[test]
    fn table_extractor_recovers_release_dates_from_filmographies() {
        let (s, c, t, svc) = setup();
        // Find a filmography row rendered in the corpus.
        let page =
            c.pages.iter().find(|p| !p.tables.is_empty()).expect("a page with a filmography table");
        let table = &page.tables[0];
        let movie = table
            .rows
            .iter()
            .find_map(|row| s.kg.find_entity_by_name(&row[0]).map(|e| (e.id, row.clone())))
            .expect("a row naming a known movie");
        let cands = extract_from_page(&s.kg, &svc, page, movie.0, s.preds.release_date);
        let from_table: Vec<_> =
            cands.iter().filter(|c| c.extractor == ExtractorKind::Table).collect();
        assert!(!from_table.is_empty(), "table extractor fired");
        assert!(from_table.iter().any(|c| c.value_text == movie.1[1]));
        assert!(from_table.iter().all(|c| c.subject_confirmed));
        // Ground truth agreement.
        assert!(t.rendered_facts.iter().any(|(d, e, p, v)| *d == page.id
            && *e == movie.0
            && *p == s.preds.release_date
            && v == &movie.1[1]));
    }

    #[test]
    fn wrong_subject_pages_yield_nothing_or_unconfirmed() {
        let (s, c, t, svc) = setup();
        // A page about the actress: extracting the singer's DOB from it
        // should produce only subject-name-matching candidates, which exist
        // because the names are identical, but the lead describes the
        // actress...
        let actress_doc = t.page_topics.iter().find(|(_, e)| **e == s.scenario.mw_actress);
        if let Some((doc, _)) = actress_doc {
            let page = c.page(*doc);
            let cands =
                extract_from_page(&s.kg, &svc, page, s.scenario.mw_singer, s.preds.date_of_birth);
            // Candidates may exist (same surface name) but must be flagged
            // unconfirmed by the annotation check.
            for cand in &cands {
                assert!(
                    !cand.subject_confirmed,
                    "actress page must not confirm the singer subject"
                );
            }
        }
    }
}
