//! ODKE target selection: combines the three discovery paths of paper
//! Sec. 4 — reactive (query logs), proactive (KG profiling) and predictive
//! (anticipated demand) — into a ranked list of fact targets.

use crate::querylog::{unanswered_targets, QueryRecord};
use saga_core::{EntityId, KnowledgeGraph, PredicateId};
use saga_graph::{missing_facts, stale_facts};
use serde::{Deserialize, Serialize};

/// Why a fact was targeted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TargetReason {
    /// A user asked and the KG could not answer.
    UnansweredQuery,
    /// KG profiling found a coverage gap.
    CoverageGap,
    /// The stored fact is likely stale.
    Stale,
    /// Predicted future demand (trending).
    Predicted,
}

/// One extraction target.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FactTarget {
    /// The entity concerned.
    pub entity: EntityId,
    /// The predicate.
    pub predicate: PredicateId,
    /// Why this fact was targeted.
    pub reason: TargetReason,
    /// Priority of filling this gap.
    pub importance: f64,
}

/// Profiler configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Cap on coverage-gap targets.
    pub max_gaps: usize,
    /// Cap on stale targets.
    pub max_stale: usize,
    /// Staleness threshold in commits.
    pub stale_age: u64,
    /// Overall cap on emitted targets.
    pub max_targets: usize,
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        Self { max_gaps: 500, max_stale: 100, stale_age: 50, max_targets: 500 }
    }
}

/// Produces the ranked target list. Weights: unanswered queries get a
/// demand boost proportional to ask frequency; gaps use popularity ×
/// coverage importance; stale facts use age.
pub fn select_targets(
    kg: &KnowledgeGraph,
    query_log: &[QueryRecord],
    cfg: &ProfilerConfig,
) -> Vec<FactTarget> {
    let mut out: Vec<FactTarget> = Vec::new();
    let mut seen: std::collections::HashSet<(EntityId, PredicateId)> = Default::default();

    // Reactive path: unanswered user queries, demand-weighted.
    for ((e, p), count) in unanswered_targets(query_log) {
        if seen.insert((e, p)) {
            out.push(FactTarget {
                entity: e,
                predicate: p,
                reason: TargetReason::UnansweredQuery,
                importance: 1.0 + count as f64 * 0.5,
            });
        }
    }

    // Proactive path: coverage gaps from profiling.
    for gap in missing_facts(kg, cfg.max_gaps) {
        if seen.insert((gap.entity, gap.predicate)) {
            out.push(FactTarget {
                entity: gap.entity,
                predicate: gap.predicate,
                reason: TargetReason::CoverageGap,
                importance: gap.importance,
            });
        }
    }

    // Staleness path.
    for stale in stale_facts(kg, cfg.stale_age, cfg.max_stale) {
        let key = (stale.triple.subject, stale.triple.predicate);
        if seen.insert(key) {
            out.push(FactTarget {
                entity: key.0,
                predicate: key.1,
                reason: TargetReason::Stale,
                importance: 0.2 + stale.age as f64 / 1000.0,
            });
        }
    }

    // Predictive path: popular entities missing *any* of the high-demand
    // predicates that similar popular entities have.
    let mut popular: Vec<&saga_core::EntityRecord> = kg.entities().collect();
    popular.sort_by(|a, b| b.popularity.total_cmp(&a.popularity));
    for e in popular.iter().take(50) {
        for pinfo in kg.ontology().predicates() {
            if pinfo.domain.map_or(true, |d| !kg.ontology().is_subtype(e.entity_type, d)) {
                continue;
            }
            if pinfo.is_noise_for_embeddings {
                continue;
            }
            if kg.objects(e.id, pinfo.id).is_empty() && seen.insert((e.id, pinfo.id)) {
                out.push(FactTarget {
                    entity: e.id,
                    predicate: pinfo.id,
                    reason: TargetReason::Predicted,
                    importance: e.popularity as f64 * 0.5,
                });
            }
        }
    }

    out.sort_by(|a, b| b.importance.total_cmp(&a.importance));
    out.truncate(cfg.max_targets);
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::querylog::generate_query_log;
    use saga_core::synth::{generate, SynthConfig};

    #[test]
    fn targets_cover_all_reasons() {
        let s = generate(&SynthConfig::tiny(201));
        let log = generate_query_log(&s, 600, 7);
        let targets = select_targets(&s.kg, &log, &ProfilerConfig::default());
        assert!(!targets.is_empty());
        use TargetReason::*;
        for reason in [UnansweredQuery, CoverageGap] {
            assert!(targets.iter().any(|t| t.reason == reason), "{reason:?} missing");
        }
        // Sorted by importance.
        assert!(targets.windows(2).all(|w| w[0].importance >= w[1].importance));
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for t in &targets {
            assert!(seen.insert((t.entity, t.predicate)));
        }
    }

    #[test]
    fn the_fig6_gap_is_targeted() {
        let s = generate(&SynthConfig::tiny(201));
        let log = generate_query_log(&s, 600, 7);
        let targets = select_targets(&s.kg, &log, &ProfilerConfig::default());
        assert!(
            targets
                .iter()
                .any(|t| t.entity == s.scenario.mw_singer && t.predicate == s.preds.date_of_birth),
            "the missing singer DOB must be targeted"
        );
    }

    #[test]
    fn all_targets_are_genuinely_missing_or_stale() {
        let s = generate(&SynthConfig::tiny(201));
        let log = generate_query_log(&s, 300, 9);
        let targets = select_targets(&s.kg, &log, &ProfilerConfig::default());
        for t in &targets {
            if t.reason != TargetReason::Stale {
                assert!(
                    s.kg.objects(t.entity, t.predicate).is_empty(),
                    "non-stale target must be a real gap"
                );
            }
        }
    }
}
