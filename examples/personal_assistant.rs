//! On-device private knowledge (Sec. 5 / Fig. 7): construct a personal KG
//! from contacts, messages and calendar with a pausable pipeline; resolve
//! the ambiguous "message Tim ..." utterance contextually; sync across
//! devices under per-source policies; and enrich with global knowledge via
//! the three private paths.
//!
//! ```text
//! cargo run --release -p saga-examples --example personal_assistant
//! ```

use saga_core::synth::{generate, SynthConfig};
use saga_ondevice::{
    decode_pir_block, dp_count, fuse_clusters, generate_device_data, gossip_until_stable,
    offload_compute, personal_ontology, piggyback_answer, pir_fetch, resolve_references,
    ConstructionPipeline, Device, DeviceDataConfig, DeviceId, DeviceTier, EnrichmentPath,
    GlobalKnowledge, PipelineConfig, PirDatabase, SourceKind, StaticAsset, SyncPolicy,
};

fn main() {
    // ---- personal KG construction, pausable -----------------------------
    let (obs, truth) = generate_device_data(&DeviceDataConfig::tiny(7));
    println!("device data: {} observations of {} people", obs.len(), truth.persons.len());

    let mut pipeline = ConstructionPipeline::new(obs.clone(), PipelineConfig::default());
    let mut pauses = 0;
    while !pipeline.is_done() {
        pipeline.step(50);
        // A higher-priority task arrives: checkpoint and yield.
        let ckpt = pipeline.checkpoint();
        pipeline = ConstructionPipeline::resume(obs.clone(), PipelineConfig::default(), &ckpt)
            .expect("resume from checkpoint");
        pauses += 1;
    }
    println!(
        "construction finished across {pauses} pause/resume cycles → {} fused persons",
        pipeline.clusters().len()
    );

    let (ont, handles) = personal_ontology();
    let mut kg = saga_core::KnowledgeGraph::new(ont);
    let clusters = pipeline.clusters().to_vec();
    let fused = fuse_clusters(&mut kg, &handles, pipeline.observations(), &clusters);

    // ---- contextual reference resolution ---------------------------------
    // Find a first name shared by two fused persons (the "two Tims").
    let mut by_first: std::collections::HashMap<String, Vec<usize>> = Default::default();
    for (i, f) in fused.iter().enumerate() {
        if f.members.len() < 2 {
            continue;
        }
        let first = f.display_name.split(' ').next().unwrap_or("").to_lowercase();
        by_first.entry(first).or_default().push(i);
    }
    if let Some((first, idxs)) = by_first.iter().find(|(_, v)| v.len() >= 2) {
        // Pick a topic the first candidate has and the namesakes lack, so
        // context genuinely disambiguates (the paper's SIGMOD example).
        let topics = |i: usize| -> Vec<String> {
            kg.objects(fused[i].entity, handles.talks_about)
                .into_iter()
                .filter_map(|v| v.as_text().map(str::to_owned))
                .collect()
        };
        let others: std::collections::HashSet<String> =
            idxs[1..].iter().flat_map(|&i| topics(i)).collect();
        let target = &fused[idxs[0]];
        let topic = topics(idxs[0])
            .into_iter()
            .find(|t| !others.contains(t))
            .unwrap_or_else(|| topics(idxs[0]).first().cloned().unwrap_or_default());
        let utterance = format!("message {first} {topic}");
        println!("\nutterance: '{utterance}'");
        println!("candidates named '{first}':");
        for &i in idxs {
            println!("  - {}", fused[i].display_name);
        }
        let refs = resolve_references(&kg, &handles, &fused, &utterance);
        if let Some(r) = refs.iter().find(|r| &r.mention == first) {
            let (best, score) = r.ranked[0];
            println!("contextual ranking picks: {} (score {:.3})", fused[best].display_name, score);
        }
    }

    // ---- cross-device sync with per-source policies ------------------------
    let mut laptop = Device::new(DeviceId(0), DeviceTier::Laptop, SyncPolicy::all());
    let mut phone = Device::new(
        DeviceId(1),
        DeviceTier::Phone,
        SyncPolicy::only(&[SourceKind::Contacts, SourceKind::Messages]),
    );
    let watch =
        Device::new(DeviceId(2), DeviceTier::Watch, SyncPolicy::only(&[SourceKind::Contacts]));
    for o in &obs {
        match o.source {
            SourceKind::Calendar => laptop.ingest_local(o.clone()),
            _ => phone.ingest_local(o.clone()),
        }
    }
    let mut devices = vec![laptop, phone, watch];
    let rounds = gossip_until_stable(&mut devices, 10);
    println!("\nsync converged in {rounds} gossip rounds");
    println!(
        "  watch sees {} contact ops, {} message ops (messages not synced to watch)",
        devices[2].ops_for(SourceKind::Contacts).len(),
        devices[2].ops_for(SourceKind::Messages).len()
    );
    println!(
        "  calendar ops stay on the laptop: laptop={} phone={}",
        devices[0].ops_for(SourceKind::Calendar).len(),
        devices[1].ops_for(SourceKind::Calendar).len()
    );
    let builder = offload_compute(&mut devices, "contact-embedding-view", 1, |d| {
        format!("view over {} ops", d.observations().len()).into_bytes()
    });
    println!(
        "  expensive view computed by {:?}, artifact on watch: {}",
        builder.unwrap(),
        devices[2].artifact("contact-embedding-view").is_some()
    );

    // ---- global knowledge enrichment ---------------------------------------
    let server = generate(&SynthConfig::tiny(7));
    let asset = StaticAsset::build(&server.kg, 0.5);
    let mut global = GlobalKnowledge::default();
    global.load_static_asset(&asset);
    println!(
        "\nglobal enrichment path 1 (static asset): {} facts about {} popular entities ({} bytes, zero requests)",
        global.count_by_path(EnrichmentPath::StaticAsset),
        asset.entities.len(),
        asset.payload_bytes()
    );

    let team = server.synth_team_example();
    let facts = piggyback_answer(&server.kg, team);
    global.ingest_piggyback(&facts);
    println!(
        "path 2 (piggyback on 'what is the score in the {} game?'): +{} facts",
        server.kg.entity(team).name,
        facts.len()
    );

    let db_a = PirDatabase::from_asset(&asset, 4096);
    let db_b = PirDatabase::from_asset(&asset, 4096);
    // Pick an asset entity that actually has facts to retrieve.
    let target = asset
        .entities
        .iter()
        .map(|(id, _, _, _)| *id)
        .find(|&id| !asset.facts_of(id).is_empty())
        .unwrap_or(asset.entities[0].0);
    let fetch = pir_fetch(&db_a, &db_b, db_a.block_of(target).unwrap(), 55);
    let triples = decode_pir_block(&fetch.block);
    println!(
        "path 3 (2-server PIR for '{}'): {} facts, {} bytes transferred vs {} direct — private but expensive",
        server.kg.entity(target).name,
        triples.len(),
        fetch.bytes_transferred,
        fetch.direct_fetch_bytes
    );
    println!(
        "path 3 (DP count, ε=1.0): true person count {} → noisy {:.1}",
        server.synth_people_count(),
        dp_count(server.synth_people_count(), 1.0, 99)
    );
}

/// Small extension trait so the example reads cleanly.
trait SynthExt {
    fn synth_team_example(&self) -> saga_core::EntityId;
    fn synth_people_count(&self) -> usize;
}

impl SynthExt for saga_core::synth::SynthKg {
    fn synth_team_example(&self) -> saga_core::EntityId {
        self.teams[0]
    }
    fn synth_people_count(&self) -> usize {
        self.people.len()
    }
}
