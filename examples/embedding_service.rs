//! The embedding service (Fig. 1): train embeddings, warm the low-latency
//! KV cache, build the HNSW serving index, and serve similarity and kNN
//! requests — including the price/performance comparison against exact
//! search and the quantized on-device variant.
//!
//! ```text
//! cargo run --release -p saga-examples --example embedding_service
//! ```

use saga_ann::{EmbeddingCache, HnswParams, Metric, QuantizedTable};
use saga_core::synth::{generate, SynthConfig};
use saga_core::text::cosine;
use saga_embeddings::{
    build_flat_index, build_knn_index, train, warm_cache, ModelKind, TrainConfig, TrainingSet,
};
use saga_graph::{GraphView, ViewDef};
use std::time::Instant;

fn main() {
    let synth = generate(&SynthConfig::tiny(7));
    let view = GraphView::materialize(&synth.kg, ViewDef::embedding_training(5));
    let ds = TrainingSet::from_edges(&view.edges(), 0.05, 0.05, 3);
    let model = train(
        &ds,
        &TrainConfig { model: ModelKind::TransE, dim: 32, epochs: 12, ..Default::default() },
    );
    println!("trained {} entity embeddings (dim {})", model.entity_ids.len(), model.dim());

    // Precompute + cache (Sec. 3.2: "cache the results in a low-latency
    // key-value store").
    let cache = EmbeddingCache::new();
    let n = warm_cache(&model, &cache);
    println!("warmed embedding cache with {n} entries");

    // Similarity between two entities, served from the cache.
    let a = cache.get(synth.scenario.mj_player.raw()).expect("cached");
    let b = cache.get(synth.scenario.benicio.raw()).expect("cached");
    println!(
        "cosine(Michael Jordan, Benicio del Toro) = {:.3}; cache hit rate {:.2}",
        cosine(&a, &b),
        cache.stats().hit_rate()
    );

    // kNN serving: exact vs approximate.
    let flat = build_flat_index(&model);
    let hnsw = build_knn_index(&model, HnswParams::default());
    let query = model.entity_embedding(synth.scenario.benicio).unwrap();

    let t0 = Instant::now();
    let exact = flat.search(query, 10);
    let flat_time = t0.elapsed();
    let t1 = Instant::now();
    let approx = hnsw.search_ef(query, 10, 64);
    let hnsw_time = t1.elapsed();
    let truth: std::collections::HashSet<u64> = exact.iter().map(|h| h.id).collect();
    let recall = approx.iter().filter(|h| truth.contains(&h.id)).count() as f64 / 10.0;
    println!("\nkNN k=10: flat {:?} vs hnsw {:?} (recall {recall:.2})", flat_time, hnsw_time);
    println!("nearest neighbours of Benicio del Toro:");
    for h in approx.iter().take(5) {
        println!("  {:.3}  {}", h.score, synth.kg.entity(saga_core::EntityId(h.id)).name);
    }

    // Quantized on-device variant.
    let table = QuantizedTable::build(
        model.dim(),
        model.entity_ids.iter().enumerate().map(|(i, e)| (e.raw(), model.entities.row(i).to_vec())),
    );
    let f32_bytes = model.entity_ids.len() * model.dim() * 4;
    println!(
        "\non-device quantized table: {} bytes vs {} bytes f32 ({:.1}x smaller)",
        table.bytes(),
        f32_bytes,
        f32_bytes as f64 / table.bytes() as f64
    );
    let qhits = table.search(Metric::Cosine, query, 10);
    let qrecall = qhits.iter().filter(|h| truth.contains(&h.id)).count() as f64 / 10.0;
    println!("quantized recall@10 vs exact f32: {qrecall:.2}");
}
