//! Quickstart: build a knowledge graph, query it, train embeddings, and ask
//! the four Fig. 2 questions.
//!
//! ```text
//! cargo run --release -p saga-examples --example quickstart
//! ```

use saga_core::synth::{generate, SynthConfig};
use saga_core::Value;
use saga_embeddings::{
    build_knn_index, rank_existing_facts, related_entities, train, FactVerifier, ModelKind,
    TrainConfig, TrainingSet,
};
use saga_graph::{solve, Clause, ConjunctiveQuery, GraphView, Term, ViewDef};

fn main() {
    // 1. Build an open-domain KG (the synthetic stand-in for Saga's graph).
    let synth = generate(&SynthConfig::tiny(7));
    let kg = &synth.kg;
    println!(
        "knowledge graph: {} entities, {} facts, {} predicates",
        kg.num_entities(),
        kg.num_triples(),
        kg.ontology().num_predicates()
    );

    // 2. Query it: "movies directed by Benicio del Toro" (the intro example).
    let q = ConjunctiveQuery::new(
        vec![Clause {
            subject: Term::var(0),
            predicate: synth.preds.directed_by,
            object: Term::entity(synth.scenario.benicio),
        }],
        vec![0],
    );
    println!("\nmovies directed by Benicio del Toro:");
    for row in solve(kg, &q) {
        if let Some(m) = row[0].as_entity() {
            println!("  - {}", kg.entity(m).name);
        }
    }

    // 3. Train graph embeddings on the filtered view (Fig. 3 pipeline).
    let view = GraphView::materialize(kg, ViewDef::embedding_training(5));
    println!("\nfiltered training view: {} edges (of {} facts)", view.len(), kg.num_triples());
    let ds = TrainingSet::from_edges(&view.edges(), 0.05, 0.05, 3);
    let model = train(
        &ds,
        &TrainConfig { model: ModelKind::TransE, dim: 16, epochs: 10, ..Default::default() },
    );
    println!("trained TransE, final epoch loss {:.4}", model.epoch_losses.last().unwrap());

    // 4a. Fact ranking: "what is the occupation of Benicio del Toro?"
    let ranked = rank_existing_facts(&model, kg, synth.scenario.benicio, synth.preds.occupation);
    println!("\noccupations of Benicio del Toro, ranked:");
    for (occ, score) in &ranked {
        println!("  {:.3}  {}", score, kg.entity(*occ).name);
    }

    // 4b. Fact verification.
    let verifier = FactVerifier::calibrate(&model, &ds, 0.9);
    let claim = (synth.scenario.mj_player, synth.preds.occupation, synth.occupations[0]);
    if let Some(v) = verifier.verify(&model, claim.0, claim.1, claim.2) {
        println!(
            "\nverify 'Michael Jordan occupation basketball player': score {:.3} → {}",
            v.score,
            if v.plausible { "plausible" } else { "implausible" }
        );
    }

    // 4c. Related entities.
    let index = build_knn_index(&model, saga_ann::HnswParams::default());
    println!("\nentities related to Benicio del Toro:");
    for (e, score) in related_entities(&model, &index, kg, synth.scenario.benicio, 5, false) {
        println!("  {:.3}  {}", score, kg.entity(e).name);
    }

    // 4d. A raw fact lookup for contrast.
    let dob = kg.object(synth.scenario.mw_actress, synth.preds.date_of_birth);
    if let Some(Value::Date(d)) = dob {
        println!("\nactress Michelle Williams date of birth (stored): {d}");
    }
    println!(
        "singer Michelle Williams date of birth (stored): {:?}  ← the Fig. 6 gap ODKE fills",
        kg.object(synth.scenario.mw_singer, synth.preds.date_of_birth)
    );
}
