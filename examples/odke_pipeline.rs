//! Open Domain Knowledge Extraction end-to-end (Figs. 5–6): profile the KG
//! for gaps, synthesize targeted queries, search the web, extract candidate
//! facts, corroborate conflicting values, and fuse the winner into the KG —
//! the complete Michelle Williams scenario.
//!
//! ```text
//! cargo run --release -p saga-examples --example odke_pipeline
//! ```

use saga_annotation::{AnnotationService, LinkerConfig, Tier};
use saga_core::synth::{generate, SynthConfig};
use saga_core::{Date, Value};
use saga_odke::{
    generate_query_log, run_odke, select_targets, synthesize_queries, OdkeConfig, ProfilerConfig,
};
use saga_webcorpus::{generate_corpus, CorpusConfig, SearchEngine};

fn main() {
    let synth = generate(&SynthConfig::tiny(7));
    let mut kg = synth.kg.clone();

    // The Web knows the singer's DOB even though our KG does not (Fig. 6 ①).
    let extra = vec![(
        synth.scenario.mw_singer,
        synth.preds.date_of_birth,
        Value::Date(Date::new(1979, 7, 23).unwrap()),
    )];
    let (corpus, _) = generate_corpus(&synth, &extra, &CorpusConfig::tiny(9));
    let search = SearchEngine::build(&corpus);
    let svc = AnnotationService::build(&kg, LinkerConfig::tier(Tier::T2Contextual));

    // ① Identify important missing facts (reactive + proactive + predictive).
    let log = generate_query_log(&synth, 400, 31);
    let unanswered = log.iter().filter(|q| !q.answered).count();
    println!("query log: {} queries, {} unanswered", log.len(), unanswered);
    let targets = select_targets(&kg, &log, &ProfilerConfig::default());
    println!("profiler produced {} ranked fact targets", targets.len());
    let mw = targets
        .iter()
        .find(|t| t.entity == synth.scenario.mw_singer && t.predicate == synth.preds.date_of_birth)
        .copied()
        .expect("the Fig. 6 gap is targeted");
    println!(
        "target: ({}, {}) reason={:?} importance={:.2}",
        kg.entity(mw.entity).name,
        kg.ontology().predicate(mw.predicate).name,
        mw.reason,
        mw.importance
    );

    // ② Synthesize search queries.
    println!("\nsynthesized queries (Fig. 6 ②):");
    for q in synthesize_queries(&kg, &mw) {
        println!("  [{}] {}", q.template, q.text);
    }

    // ③–⑤ Search, extract, corroborate, fuse.
    let report = run_odke(&mut kg, &svc, &search, &corpus, &[mw], &OdkeConfig::default());
    let outcome = &report.outcomes[0];
    println!(
        "\nexamined {} documents ({:.1}% of the {}-page corpus)",
        outcome.docs_examined,
        100.0 * report.volume_fraction(),
        report.corpus_size
    );
    println!("candidate values (Fig. 6 ④→⑤):");
    for s in outcome.scored.iter().take(5) {
        println!(
            "  p={:.3} support={} value={}{}",
            s.probability,
            s.support_count,
            s.value_text,
            if s.value_text == "1980-09-09" { "   ← the actress's DOB (confusion)" } else { "" }
        );
    }
    match &outcome.winner {
        Some(w) => {
            println!("\naccepted fact: date_of_birth = {} (p={:.3})", w.value_text, w.probability)
        }
        None => println!("\nno value cleared the corroboration bar"),
    }
    println!(
        "KG now stores: singer Michelle Williams date_of_birth = {:?}",
        kg.object(synth.scenario.mw_singer, synth.preds.date_of_birth)
    );
    let meta = kg
        .fact_meta(&saga_core::Triple::new(
            synth.scenario.mw_singer,
            synth.preds.date_of_birth,
            kg.object(synth.scenario.mw_singer, synth.preds.date_of_birth).unwrap(),
        ))
        .unwrap();
    println!(
        "provenance: source={} confidence={:.3}",
        kg.source_name(meta.source),
        meta.confidence
    );
}
