//! Example host crate; see the example files at the package root.
