//! Server-side continuous construction (the Saga substrate): three feeds
//! with different trust and formats stream records about overlapping
//! entities; the fusion engine deduplicates across feeds, resolves value
//! conflicts by accumulated trust, and converges incrementally.
//!
//! ```text
//! cargo run --release -p saga-examples --example continuous_construction
//! ```

use saga_core::synth::{generate, standard_ontology, SynthConfig};
use saga_fusion::{generate_feeds, FeedConfig, FusionConfig, FusionEngine};

fn main() {
    let synth = generate(&SynthConfig::tiny(7));
    let data = generate_feeds(&synth, &FeedConfig::default());
    let distinct: std::collections::HashSet<_> = data.owner.values().collect();
    println!(
        "{} records from {} feeds describing {} true entities",
        data.records.len(),
        data.trust.len(),
        distinct.len()
    );
    for t in &data.trust {
        println!("  feed '{}' trust {:.2}", t.source, t.trust);
    }

    // Continuous ingestion: batches arrive over time.
    let (ontology, _, _) = standard_ontology(0);
    let mut engine = FusionEngine::new(ontology, &data.trust, FusionConfig::default());
    for (i, chunk) in data.records.chunks(data.records.len() / 4 + 1).enumerate() {
        let stats = engine.ingest(chunk);
        println!(
            "batch {i}: {} records → {} new entities, {} merged into existing",
            stats.records, stats.new_entities, stats.merged_into_existing
        );
    }
    println!(
        "\ncanonical graph: {} entities, {} facts (vs {} true entities)",
        engine.kg().num_entities(),
        engine.kg().num_triples(),
        distinct.len()
    );

    // Show one cross-feed consolidation.
    let example =
        data.records.iter().filter(|r| r.source == "newswire" && r.name.contains(". ")).find_map(
            |r| {
                let truth = data.owner[&(r.source.clone(), r.external_id.clone())];
                let census = data.records.iter().find(|c| {
                    c.source == "census"
                        && data.owner[&(c.source.clone(), c.external_id.clone())] == truth
                })?;
                let a = engine.resolution(&r.source, &r.external_id)?;
                let b = engine.resolution(&census.source, &census.external_id)?;
                (a == b).then_some((r.name.clone(), census.name.clone(), a))
            },
        );
    if let Some((short, full, canonical)) = example {
        println!("\ncross-feed match: newswire '{short}' ≡ census '{full}'");
        println!("canonical entity: {}", engine.kg().entity(canonical).name);
        for t in engine.kg().triples_of(canonical) {
            let rendered = match &t.object {
                saga_core::Value::Entity(e) => engine.kg().entity(*e).name.clone(),
                other => other.canonical(),
            };
            println!("    {} = {}", engine.kg().ontology().predicate(t.predicate).name, rendered);
        }
    }

    // Conflict resolution: the corrupted low-trust feed loses.
    let mut checked = 0;
    let mut trusted_won = 0;
    if let Some(dob) = engine.kg().ontology().predicate_by_name("date_of_birth") {
        for r in data.records.iter().filter(|r| r.source == "census") {
            let truth_entity = data.owner[&(r.source.clone(), r.external_id.clone())];
            let Some(canonical) = engine.resolution(&r.source, &r.external_id) else { continue };
            let (Some(t), Some(f)) = (
                synth.kg.object(truth_entity, synth.preds.date_of_birth),
                engine.kg().object(canonical, dob),
            ) else {
                continue;
            };
            checked += 1;
            if t.same_as(&f) {
                trusted_won += 1;
            }
        }
    }
    println!(
        "\nconflict resolution: trusted value won {trusted_won}/{checked} DOB conflicts \
         (scraped feed corrupts 15% of its values)"
    );
}
