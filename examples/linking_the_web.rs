//! "Linking the Web" (Fig. 4 / Sec. 3.1): annotate a web corpus against the
//! KG, disambiguate homonym mentions contextually, extend the KG with
//! entity→document edges, then incrementally re-annotate after churn.
//!
//! ```text
//! cargo run --release -p saga-examples --example linking_the_web
//! ```

use saga_annotation::{
    annotate_corpus, annotate_incremental, evaluate_linking, extend_kg_with_links,
    AnnotationService, LinkerConfig, Tier,
};
use saga_core::synth::{generate, SynthConfig};
use saga_webcorpus::{apply_churn, generate_corpus, ChurnConfig, CorpusConfig};

fn main() {
    let mut synth = generate(&SynthConfig::tiny(7));
    let (mut corpus, truth) = generate_corpus(&synth, &[], &CorpusConfig::tiny(9));
    println!("corpus: {} pages grounded in {} entities", corpus.len(), synth.kg.num_entities());

    // The paper's worked example: the same surface form, two entities.
    let svc = AnnotationService::build(&synth.kg, LinkerConfig::tier(Tier::T2Contextual));
    for query in [
        "Michael Jordan basketball championship stats",
        "Michael Jordan machine learning statistics students",
    ] {
        let links = svc.annotate(query);
        let top = links.iter().find(|l| l.form == "michael jordan");
        if let Some(l) = top {
            let e = synth.kg.entity(l.entity);
            println!("  '{query}'\n      → {} ({})", e.name, e.description);
        }
    }

    // Annotate the whole corpus in parallel (Fig. 4's "bulk annotation").
    let (mut annotated, stats) = annotate_corpus(&svc, &corpus, 4);
    println!(
        "\nbulk annotation: {} docs, {} mentions, {:.1} docs/s",
        stats.docs_processed,
        stats.mentions_found,
        stats.docs_processed as f64 / stats.elapsed.as_secs_f64().max(1e-9)
    );
    let quality = evaluate_linking(&annotated, &truth);
    println!(
        "linking quality: precision {:.3}, recall {:.3}, topic accuracy {:.3}",
        quality.precision, quality.recall, quality.topic_accuracy
    );

    // Extend the KG with entity→document link facts.
    let written = extend_kg_with_links(&mut synth.kg, &corpus, &annotated, 3);
    println!("\nextended the KG with {written} mentioned_in edges");
    let pred = synth.kg.ontology().predicate_by_name("mentioned_in").unwrap();
    let links = synth.kg.objects(synth.scenario.benicio, pred);
    println!("documents linked to Benicio del Toro:");
    for l in links.iter().take(3) {
        println!("  {l}");
    }

    // The Web changes: re-annotate only the changed pages (Sec. 3.1 "rate
    // of change").
    let report =
        apply_churn(&mut corpus, &ChurnConfig { edit_fraction: 0.05, new_pages: 8, seed: 3 });
    let inc = annotate_incremental(&svc, &corpus, &mut annotated, &report.changed);
    println!(
        "\nincremental pass after churn: {} of {} docs re-annotated ({:.1}% of a full pass)",
        inc.docs_processed,
        corpus.len(),
        100.0 * inc.docs_processed as f64 / corpus.len() as f64
    );
}
