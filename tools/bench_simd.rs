//! Standalone SIMD backend benchmark + equivalence harness.
//!
//! Compiles the kernel module directly (it is deliberately std-only) so the
//! backend comparison runs in environments without cargo or the crates.io
//! registry — the same method that produced `BENCH_kernels.json` and
//! `BENCH_quant.json`:
//!
//! ```sh
//! rustc --edition 2021 -O --cfg 'feature="simd"' -A unexpected_cfgs \
//!     tools/bench_simd.rs -o /tmp/bench_simd
//! /tmp/bench_simd BENCH_simd.json
//! ```
//!
//! With no argument the JSON goes to stdout. The binary exits non-zero if
//! any intrinsic backend disagrees with the portable reference, so CI can
//! use it as both a bench artifact generator and an equivalence gate.
//!
//! Everything is measured on the **default-target build**: the point of
//! runtime dispatch is that the same binary reaches native kernel speed,
//! so the portable baseline here is exactly what shipped before dispatch.

#[path = "../crates/core/src/kernels/mod.rs"]
mod kernels;

use kernels::Backend;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

fn seq(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 52) as f32 * 2.0 - 1.0
        })
        .collect()
}

fn seq_i8(n: usize, seed: u64) -> Vec<i8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 32) as i8
        })
        .collect()
}

/// Best-of-3 reps of `iters` calls; returns ns per call.
fn time_ns(iters: u64, mut f: impl FnMut() -> f32) -> f64 {
    // Warm-up also forces one-time dispatch resolution out of the timed region.
    let mut sink = 0.0f32;
    for _ in 0..iters / 10 {
        sink += f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..iters {
            sink += f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
    }
    black_box(sink);
    best
}

/// Max |backend − portable| scaled by (1 + Σ|terms|) across dims 0–257,
/// including offset-1 unaligned sub-slices. Integer kernels must be exact.
fn cross_check(be: &Backend, p: &Backend) -> Result<f64, String> {
    let mut max_scaled = 0.0f64;
    for dim in 0..258usize {
        let a = seq(dim, 1 + dim as u64);
        let b = seq(dim, 9999 + dim as u64);
        let c = seq(dim, 777 + dim as u64);
        let ai = seq_i8(dim, 3 + dim as u64);
        let bi = seq_i8(dim, 555 + dim as u64);
        let scale = 1.0 + dim as f64;
        let mut chk = |name: &str, x: f32, y: f32| -> Result<(), String> {
            let scaled = (x as f64 - y as f64).abs() / scale;
            max_scaled = max_scaled.max(scaled);
            if scaled > 1e-5 {
                return Err(format!("{name} dim {dim}: {x} vs {y} ({})", be.name));
            }
            Ok(())
        };
        chk("dot", (be.dot)(&a, &b), (p.dot)(&a, &b))?;
        chk("l2_sq", (be.l2_sq)(&a, &b), (p.l2_sq)(&a, &b))?;
        chk("norm_sq", (be.norm_sq)(&a), (p.norm_sq)(&a))?;
        chk("cosine", (be.cosine)(&a, &b), (p.cosine)(&a, &b))?;
        let qn = (p.norm_sq)(&a).sqrt();
        chk("cosine_qnorm", (be.cosine_qnorm)(&a, qn, &b), (p.cosine_qnorm)(&a, qn, &b))?;
        chk("dot3", (be.dot3)(&a, &b, &c), (p.dot3)(&a, &b, &c))?;
        chk("translate_l2_sq", (be.translate_l2_sq)(&a, &b, &c), (p.translate_l2_sq)(&a, &b, &c))?;
        chk("dot_f32i8", (be.dot_f32i8)(&a, &bi), (p.dot_f32i8)(&a, &bi))?;
        chk(
            "l2_sq_f32i8_direct",
            (be.l2_sq_f32i8_direct)(&a, &bi, 0.017),
            (p.l2_sq_f32i8_direct)(&a, &bi, 0.017),
        )?;
        if (be.dot_i8i8)(&ai, &bi) != (p.dot_i8i8)(&ai, &bi) {
            return Err(format!("dot_i8i8 dim {dim} not bit-exact ({})", be.name));
        }
        if (be.norm_sq_i8)(&ai) != (p.norm_sq_i8)(&ai) {
            return Err(format!("norm_sq_i8 dim {dim} not bit-exact ({})", be.name));
        }
        if dim >= 2 {
            chk("dot+1", (be.dot)(&a[1..], &b[1..]), (p.dot)(&a[1..], &b[1..]))?;
            chk(
                "dot_f32i8+1",
                (be.dot_f32i8)(&a[1..], &bi[1..]),
                (p.dot_f32i8)(&a[1..], &bi[1..]),
            )?;
        }
    }
    // Saturated rows at a lane-straddling dim: widening must stay exact.
    let sa = vec![127i8; 259];
    let sb = vec![-128i8; 259];
    if (be.dot_i8i8)(&sa, &sb) != (p.dot_i8i8)(&sa, &sb)
        || (be.norm_sq_i8)(&sb) != (p.norm_sq_i8)(&sb)
    {
        return Err(format!("saturated i8 rows not bit-exact ({})", be.name));
    }
    Ok(max_scaled)
}

/// Tiled `*_block` kernels vs looping `be`'s own single-row kernels, across
/// row counts straddling the tile width (remainder rows included). The
/// serving coalescer depends on batched scores being interchangeable with
/// per-request scores, so this is a gate, not a report.
fn cross_check_blocks(be: &Backend) -> Result<f64, String> {
    let mut max_scaled = 0.0f64;
    for dim in [1usize, 3, 7, 8, 24, 64, 128, 129] {
        for rows in [1usize, 2, 3, 4, 5, 8, 17] {
            let q = seq(dim, 21 + dim as u64);
            let qn = (be.norm_sq)(&q).sqrt();
            let block: Vec<f32> =
                (0..rows).flat_map(|r| seq(dim, 50 + (dim * 31 + r) as u64)).collect();
            let bi8: Vec<i8> =
                (0..rows).flat_map(|r| seq_i8(dim, 50 + (dim * 31 + r) as u64)).collect();
            let scale = 1.0 + dim as f64;
            let mut out = vec![0.0f32; rows];
            let mut chk = |name: &str, got: &[f32], want: &dyn Fn(usize) -> f32| {
                for (r, g) in got.iter().enumerate() {
                    let scaled = (*g as f64 - want(r) as f64).abs() / scale;
                    max_scaled = max_scaled.max(scaled);
                    if scaled > 1e-5 {
                        return Err(format!(
                            "{name} dim {dim} rows {rows} row {r}: {g} vs {} ({})",
                            want(r),
                            be.name
                        ));
                    }
                }
                Ok(())
            };
            (be.dot_block)(&q, &block, &mut out);
            chk("dot_block", &out, &|r| (be.dot)(&q, &block[r * dim..(r + 1) * dim]))?;
            (be.l2_sq_block)(&q, &block, &mut out);
            chk("l2_sq_block", &out, &|r| (be.l2_sq)(&q, &block[r * dim..(r + 1) * dim]))?;
            (be.cosine_qnorm_block)(&q, qn, &block, &mut out);
            chk("cosine_qnorm_block", &out, &|r| {
                (be.cosine_qnorm)(&q, qn, &block[r * dim..(r + 1) * dim])
            })?;
            (be.dot_f32i8_block)(&q, &bi8, &mut out);
            chk("dot_f32i8_block", &out, &|r| (be.dot_f32i8)(&q, &bi8[r * dim..(r + 1) * dim]))?;
        }
    }
    Ok(max_scaled)
}

fn main() {
    let out_path = std::env::args().nth(1);
    let backends = kernels::available_backends();
    let portable = &kernels::PORTABLE;
    let intrinsic = backends.iter().find(|be| be.name != "portable").copied();

    // ---- equivalence gate ----
    let mut max_err = 0.0f64;
    for be in backends.iter().filter(|be| be.name != "portable") {
        match cross_check(be, portable) {
            Ok(err) => {
                max_err = max_err.max(err);
                eprintln!("equivalence OK: {} vs portable (max scaled err {err:.2e})", be.name);
            }
            Err(msg) => {
                eprintln!("equivalence FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }
    // Tiled block kernels vs each backend's own single-row kernels
    // (portable included — the tiled portable path must agree too).
    for be in &backends {
        match cross_check_blocks(be) {
            Ok(err) => {
                max_err = max_err.max(err);
                eprintln!("block equivalence OK: {} (max scaled err {err:.2e})", be.name);
            }
            Err(msg) => {
                eprintln!("block equivalence FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    // ---- per-kernel portable vs intrinsic at dim 128 ----
    const DIM: usize = 128;
    const ITERS: u64 = 2_000_000;
    let a = seq(DIM, 42);
    let b = seq(DIM, 43);
    let c = seq(DIM, 44);
    let bi = seq_i8(DIM, 45);
    let ai = seq_i8(DIM, 46);
    let qn = kernels::l2_norm(&a);

    // (name, portable closure, intrinsic closure) per kernel; i32 kernels
    // are cast to f32 purely to share the timing sink.
    let mut rows: Vec<(&str, f64, f64)> = Vec::new();
    macro_rules! bench_pair {
        ($name:literal, $be:ident => $call:expr) => {{
            let p_ns = {
                let $be = portable;
                time_ns(ITERS, || $call)
            };
            let i_ns = intrinsic.map(|ib| {
                let $be = ib;
                time_ns(ITERS, || $call)
            });
            rows.push(($name, p_ns, i_ns.unwrap_or(f64::NAN)));
        }};
    }
    bench_pair!("dot", be => (be.dot)(black_box(&a), black_box(&b)));
    bench_pair!("l2_sq", be => (be.l2_sq)(black_box(&a), black_box(&b)));
    bench_pair!("norm_sq", be => (be.norm_sq)(black_box(&a)));
    bench_pair!("cosine", be => (be.cosine)(black_box(&a), black_box(&b)));
    bench_pair!("cosine_qnorm", be => (be.cosine_qnorm)(black_box(&a), black_box(qn), black_box(&b)));
    bench_pair!("dot3", be => (be.dot3)(black_box(&a), black_box(&b), black_box(&c)));
    bench_pair!("translate_l2_sq", be => (be.translate_l2_sq)(black_box(&a), black_box(&b), black_box(&c)));
    bench_pair!("dot_i8i8", be => (be.dot_i8i8)(black_box(&ai), black_box(&bi)) as f32);
    bench_pair!("dot_f32i8", be => (be.dot_f32i8)(black_box(&a), black_box(&bi)));
    bench_pair!("norm_sq_i8", be => (be.norm_sq_i8)(black_box(&bi)) as f32);
    bench_pair!("l2_sq_f32i8_direct", be => (be.l2_sq_f32i8_direct)(black_box(&a), black_box(&bi), black_box(0.017)));

    // ---- l2_sq_f32i8 routing: fused direct vs norm-expansion crossover ----
    // Expansion cost model = one dispatched dot_f32i8 + scalar algebra (the
    // norms are precomputed by the caller); direct = one fused sweep.
    let mut crossover_rows: Vec<(usize, f64, f64)> = Vec::new();
    for dim in [8usize, 16, 24, 32, 48, 64, 128] {
        let q = seq(dim, 7);
        let r = seq_i8(dim, 8);
        let qns = kernels::norm_sq(&q);
        let bn = 0.017 * ((kernels::norm_sq_i8(&r) as f32).sqrt());
        let direct_ns = time_ns(ITERS, || {
            kernels::l2_sq_f32i8_direct(black_box(&q), black_box(&r), black_box(0.017))
        });
        let expansion_ns = time_ns(ITERS, || {
            let d = kernels::dot_f32i8(black_box(&q), black_box(&r));
            (black_box(qns) - 2.0 * 0.017 * d + black_box(bn) * black_box(bn)).max(0.0)
        });
        crossover_rows.push((dim, direct_ns, expansion_ns));
    }

    // ---- tiled block kernels vs looping the row kernel ----
    // The serving batch shape: one query against a 256-row L2-resident
    // block. "rowloop" is exactly what the *_batch entry points did before
    // tiling (resolve the table once, loop the single-row kernel); "tiled"
    // is the *_block kernel they now dispatch to. Only the intrinsic
    // backends are timed: the portable table's block kernels ARE the row
    // loop (a scalar-array tile defeats the autovectorizer and measured
    // 0.66-0.86x, so it was rejected — see kernels/portable.rs).
    const ROWS: usize = 256;
    const BATCH_ITERS: u64 = 20_000;
    let fblock: Vec<f32> = (0..ROWS).flat_map(|r| seq(DIM, 500 + r as u64)).collect();
    let iblock: Vec<i8> = (0..ROWS).flat_map(|r| seq_i8(DIM, 500 + r as u64)).collect();
    let mut batch_out = vec![0.0f32; ROWS];
    // (kernel, backend, rowloop ns/row, tiled ns/row)
    let mut batch_rows: Vec<(&str, &str, f64, f64)> = Vec::new();
    for be in backends.iter().filter(|be| be.name != "portable") {
        let loop_dot = time_ns(BATCH_ITERS, || {
            for (r, o) in batch_out.iter_mut().enumerate() {
                *o = (be.dot)(black_box(&a), black_box(&fblock[r * DIM..(r + 1) * DIM]));
            }
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        let tiled_dot = time_ns(BATCH_ITERS, || {
            (be.dot_block)(black_box(&a), black_box(&fblock), &mut batch_out);
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        batch_rows.push(("dot", be.name, loop_dot, tiled_dot));
        let loop_cos = time_ns(BATCH_ITERS, || {
            for (r, o) in batch_out.iter_mut().enumerate() {
                *o = (be.cosine_qnorm)(
                    black_box(&a),
                    black_box(qn),
                    black_box(&fblock[r * DIM..(r + 1) * DIM]),
                );
            }
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        let tiled_cos = time_ns(BATCH_ITERS, || {
            (be.cosine_qnorm_block)(black_box(&a), black_box(qn), black_box(&fblock), &mut batch_out);
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        batch_rows.push(("cosine_qnorm", be.name, loop_cos, tiled_cos));
        let loop_l2 = time_ns(BATCH_ITERS, || {
            for (r, o) in batch_out.iter_mut().enumerate() {
                *o = (be.l2_sq)(black_box(&a), black_box(&fblock[r * DIM..(r + 1) * DIM]));
            }
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        let tiled_l2 = time_ns(BATCH_ITERS, || {
            (be.l2_sq_block)(black_box(&a), black_box(&fblock), &mut batch_out);
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        batch_rows.push(("l2_sq", be.name, loop_l2, tiled_l2));
        let loop_i8 = time_ns(BATCH_ITERS, || {
            for (r, o) in batch_out.iter_mut().enumerate() {
                *o = (be.dot_f32i8)(black_box(&a), black_box(&iblock[r * DIM..(r + 1) * DIM]));
            }
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        let tiled_i8 = time_ns(BATCH_ITERS, || {
            (be.dot_f32i8_block)(black_box(&a), black_box(&iblock), &mut batch_out);
            batch_out[ROWS - 1]
        }) / ROWS as f64;
        batch_rows.push(("dot_f32i8", be.name, loop_i8, tiled_i8));
    }

    // ---- fused vs composed cosine (the revisited rejection) ----
    let fused_vs_composed = intrinsic.map(|ib| {
        let fused = time_ns(ITERS, || (ib.cosine)(black_box(&a), black_box(&b)));
        let composed = time_ns(ITERS, || {
            let d = (ib.dot)(black_box(&a), black_box(&b));
            let na = (ib.norm_sq)(black_box(&a));
            let nb = (ib.norm_sq)(black_box(&b));
            if na == 0.0 || nb == 0.0 {
                0.0
            } else {
                d / (na.sqrt() * nb.sqrt())
            }
        });
        (fused, composed)
    });

    // ---- emit JSON ----
    let speedup = |p: f64, i: f64| if i > 0.0 { p / i } else { f64::NAN };
    let dot_speedup = rows.iter().find(|r| r.0 == "dot").map_or(f64::NAN, |r| speedup(r.1, r.2));
    let dot_f32i8_speedup =
        rows.iter().find(|r| r.0 == "dot_f32i8").map_or(f64::NAN, |r| speedup(r.1, r.2));
    let ib_name_for_tile = intrinsic.map_or("none", |ib| ib.name);
    let tiled_dot_speedup = batch_rows
        .iter()
        .find(|r| r.0 == "dot" && r.1 == ib_name_for_tile)
        .map_or(f64::NAN, |r| speedup(r.2, r.3));

    let mut json = String::new();
    let features = kernels::detected_cpu_features().join(",");
    let backend_names: Vec<&str> = backends.iter().map(|be| be.name).collect();
    writeln!(json, "{{").unwrap();
    writeln!(json, " \"experiment\": \"simd_backends\",").unwrap();
    writeln!(
        json,
        " \"description\": \"Explicit-intrinsic kernel backends vs the portable autovectorized reference, both compiled for the default target — the delta runtime dispatch delivers without -C target-cpu=native.\","
    )
    .unwrap();
    writeln!(json, " \"provenance\": {{").unwrap();
    writeln!(
        json,
        "  \"method\": \"standalone dependency-free rustc -O harness (tools/bench_simd.rs) compiling crates/core/src/kernels directly; default target features; best-of-3 x {ITERS} iterations after warm-up; std::hint::black_box on all inputs\","
    )
    .unwrap();
    writeln!(json, "  \"cpu_features\": \"{features}\",").unwrap();
    writeln!(json, "  \"kernel_backends_available\": \"{}\",", backend_names.join(",")).unwrap();
    writeln!(json, "  \"kernel_backend_active\": \"{}\",", kernels::backend_name()).unwrap();
    writeln!(json, "  \"simd_compiled\": {},", kernels::simd_compiled()).unwrap();
    writeln!(
        json,
        "  \"note\": \"absolute timings are machine-dependent; the ratios are the deliverable\""
    )
    .unwrap();
    writeln!(json, " }},").unwrap();
    writeln!(json, " \"kernels_dim128\": {{").unwrap();
    let ib_name = intrinsic.map_or("none", |ib| ib.name);
    for (name, p_ns, i_ns) in &rows {
        writeln!(
            json,
            "  \"{name}\": {{\"portable_ns\": {p_ns:.1}, \"{ib_name}_ns\": {i_ns:.1}, \"speedup\": {:.2}}},",
            speedup(*p_ns, *i_ns)
        )
        .unwrap();
    }
    writeln!(
        json,
        "  \"note\": \"integer kernels (dot_i8i8, norm_sq_i8) are bit-exact across backends; f32 kernels agree within reassociation/FMA tolerance (see equivalence block)\""
    )
    .unwrap();
    writeln!(json, " }},").unwrap();
    writeln!(json, " \"batch_tiling_dim128_rows256\": {{").unwrap();
    for (kernel, be_name, loop_ns, tiled_ns) in &batch_rows {
        writeln!(
            json,
            "  \"{kernel}_{be_name}\": {{\"rowloop_ns_per_row\": {loop_ns:.2}, \"tiled_ns_per_row\": {tiled_ns:.2}, \"speedup\": {:.2}}},",
            speedup(*loop_ns, *tiled_ns)
        )
        .unwrap();
    }
    writeln!(
        json,
        "  \"note\": \"rowloop = the pre-tiling *_batch entry points (dispatch once, loop the single-row kernel); tiled = the ROW_TILE-row *_block kernels the batch entry points now dispatch to. The single-row kernels are load-port bound; holding the query resident across a row tile amortizes its loads. Intrinsic backends only: the portable block kernels stay row loops (a scalar-array tile defeats the autovectorizer, measured 0.66-0.86x).\""
    )
    .unwrap();
    writeln!(json, " }},").unwrap();
    if let Some((fused, composed)) = fused_vs_composed {
        writeln!(json, " \"fused_cosine_dim128\": {{").unwrap();
        writeln!(json, "  \"fused_single_pass_ns\": {fused:.1},").unwrap();
        writeln!(json, "  \"composed_three_pass_ns\": {composed:.1},").unwrap();
        writeln!(json, "  \"speedup\": {:.2},", speedup(composed, fused)).unwrap();
        writeln!(
            json,
            "  \"note\": \"the fused 3-output loop was rejected for the portable backend (defeats LLVM autovectorization); explicit register accumulators make it the winner on {ib_name}\""
        )
        .unwrap();
        writeln!(json, " }},").unwrap();
    }
    writeln!(json, " \"l2_f32i8_crossover\": {{").unwrap();
    for (dim, direct_ns, expansion_ns) in &crossover_rows {
        writeln!(
            json,
            "  \"dim{dim}\": {{\"direct_ns\": {direct_ns:.1}, \"expansion_ns\": {expansion_ns:.1}}},"
        )
        .unwrap();
    }
    writeln!(
        json,
        "  \"note\": \"l2_sq_f32i8 routes to the fused direct sweep at dims <= {} (kernels::L2_F32I8_DIRECT_MAX_DIM); above that the norm-expansion amortizes its fixed cost and reuses precomputed norms\"",
        kernels::L2_F32I8_DIRECT_MAX_DIM
    )
    .unwrap();
    writeln!(json, " }},").unwrap();
    writeln!(json, " \"equivalence\": {{").unwrap();
    writeln!(json, "  \"dims_checked\": \"0-257 plus offset-1 unaligned sub-slices and saturated +/-127 rows\",").unwrap();
    writeln!(json, "  \"max_scaled_err_f32\": {max_err:.2e},").unwrap();
    writeln!(json, "  \"i8_kernels\": \"bit-exact\"").unwrap();
    writeln!(json, " }},").unwrap();
    writeln!(json, " \"acceptance\": {{").unwrap();
    writeln!(json, "  \"dot_f32i8_speedup\": {dot_f32i8_speedup:.2},").unwrap();
    writeln!(json, "  \"dot_f32i8_required\": 1.5,").unwrap();
    writeln!(json, "  \"dot_speedup\": {dot_speedup:.2},").unwrap();
    writeln!(json, "  \"dot_required\": 1.2,").unwrap();
    writeln!(json, "  \"tiled_batch_dot_speedup\": {tiled_dot_speedup:.2},").unwrap();
    writeln!(json, "  \"tiled_batch_dot_required\": 1.15,").unwrap();
    writeln!(
        json,
        "  \"pass\": {}",
        dot_f32i8_speedup >= 1.5 && dot_speedup >= 1.2 && tiled_dot_speedup >= 1.15
    )
    .unwrap();
    writeln!(json, " }}").unwrap();
    writeln!(json, "}}").unwrap();

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).expect("write artifact");
            eprintln!("wrote {path}");
            eprintln!("dot speedup {dot_speedup:.2}x, dot_f32i8 speedup {dot_f32i8_speedup:.2}x");
        }
        None => print!("{json}"),
    }
}
