//! Standalone serving benchmark: the sharded front-end under load, no cargo.
//!
//! Compiles the serving engine modules directly — they are deliberately
//! std-only and refer to each other through `crate::` paths — next to the
//! real kernel module and the real trace generator, so the full
//! closed/open-loop scenario matrix runs in environments without cargo or
//! the crates.io registry (the same method as `tools/bench_simd.rs`):
//!
//! ```sh
//! rustc --edition 2021 -O --cfg 'feature="simd"' -A unexpected_cfgs \
//!     tools/bench_serve.rs -o /tmp/bench_serve
//! /tmp/bench_serve --quick BENCH_serving.json
//! ```
//!
//! With no file argument the JSON goes to stdout. The binary doubles as a
//! gate: it exits non-zero if the virtual-time simulator is not
//! bit-identical across worker partitionings, if any run loses requests
//! (served + shed ≠ offered), or if the acceptance block fails
//! (coalescing must win sustained QPS at the same p99 budget; brownout
//! must shed instead of collapse).
//!
//! The executor here does real kernel work — flat f32 scoring and
//! quantized i8 scoring through the dispatched SIMD kernels, with
//! within-batch duplicate-query coalescing — but against an inline
//! synthetic corpus rather than `saga-ann`'s index structures (those need
//! cargo). The `saga serve-bench` CLI command runs the same matrix through
//! the real `FlatIndex`/`QuantizedTable`/graph-store stack.

#[path = "../crates/core/src/kernels/mod.rs"]
mod kernels;
#[path = "../crates/core/src/trace.rs"]
mod trace;

#[path = "../crates/serve/src/policy.rs"]
mod policy;
#[path = "../crates/serve/src/shard.rs"]
mod shard;
#[path = "../crates/serve/src/sim.rs"]
mod sim;
#[path = "../crates/serve/src/loadgen.rs"]
mod loadgen;
#[path = "../crates/serve/src/report.rs"]
mod report;

use loadgen::{
    run_load, run_load_retry, sustained_from_ladder, LoadMode, LoadReport, RetryConfig,
    RetryStyle, SlotBoard,
};
use policy::{CoalescePolicy, ShedPolicy};
use report::{
    serving_json, BrownoutReport, ClientRetryReport, RetryEntry, Scenario, ServingAcceptance,
    SustainedEntry,
};
use shard::{BatchExecutor, EngineClock, Job, MicrosClock, ShardEngine};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use trace::{generate_trace, splitmix64, trace_fingerprint, Request, RequestKind, TraceConfig};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Flat,
    Quant,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Flat => "flat",
            Kind::Quant => "quant",
        }
    }
}

/// Deterministic uniform vector in `[-1, 1)`, same scheme as the serve
/// crate's corpus synthesis.
fn synth_vector(seed: u64, dim: usize, out: &mut Vec<f32>) {
    out.clear();
    let mut s = seed;
    for _ in 0..dim {
        s = splitmix64(s ^ 0xA5A5_5A5A);
        out.push((s >> 40) as f32 / (1u64 << 23) as f32 - 1.0);
    }
}

/// One shard's slice of the synthetic corpus: row-major f32 block plus the
/// same rows quantized to i8 (round-to-nearest at scale 127).
struct ShardBlock {
    ids: Vec<u64>,
    f32s: Vec<f32>,
    i8s: Vec<i8>,
}

fn build_blocks(shards: usize, vectors: usize, dim: usize, seed: u64) -> Vec<ShardBlock> {
    let mut blocks: Vec<ShardBlock> = (0..shards)
        .map(|_| ShardBlock { ids: Vec::new(), f32s: Vec::new(), i8s: Vec::new() })
        .collect();
    let mut row = Vec::with_capacity(dim);
    for id in 0..vectors as u64 {
        let b = &mut blocks[(id as usize) % shards];
        synth_vector(seed ^ id.wrapping_mul(0x9E37_79B9), dim, &mut row);
        b.ids.push(id);
        b.f32s.extend_from_slice(&row);
        b.i8s.extend(row.iter().map(|&v| (v * 127.0).round().clamp(-127.0, 127.0) as i8));
    }
    blocks
}

/// Per-shard executor scratch, reused across batches (steady-state
/// allocation-free, like the cargo-path executor).
struct Scratch {
    query: Vec<f32>,
    scores: Vec<f32>,
    top: Vec<(f32, u64)>,
    /// Query seeds already scored in this batch: the coalescing dedup memo.
    seen: Vec<u64>,
}

/// Deterministic brownout: a job is "faulted" when the hash of
/// `(seed, site, ticket)` lands under `rate` — the same decision shape as
/// `saga_core::fault::FaultPlan` (pure hash, no state), inlined because the
/// fault module is not std-only. Faulted jobs cost an extra spin.
struct Brownout {
    seed: u64,
    rate: f64,
    slowdown_ticks: u64,
}

impl Brownout {
    fn faulted(&self, ticket: u32) -> bool {
        let h = splitmix64(self.seed ^ 0xB10C_0000 ^ ticket as u64);
        ((h >> 11) as f64 / (1u64 << 53) as f64) < self.rate
    }
}

struct HarnessExecutor {
    kind: Kind,
    dim: usize,
    k: usize,
    blocks: Vec<ShardBlock>,
    /// Synthetic per-entity fact counts (stand-in for the CSR lookup index).
    facts: Vec<u32>,
    trace: Arc<Vec<Request>>,
    board: Arc<SlotBoard>,
    clock: Arc<dyn EngineClock>,
    state: Vec<Mutex<Scratch>>,
    /// Folds lookup counts and score bits so the work cannot be elided.
    sink: AtomicU64,
    brownout: Option<Brownout>,
    /// Search jobs answered from the within-batch memo instead of scored.
    dedup_hits: AtomicU64,
}

impl HarnessExecutor {
    fn score_shard(&self, s: usize, st: &mut Scratch) {
        let b = &self.blocks[s];
        match self.kind {
            Kind::Flat => kernels::dot_batch(&st.query, &b.f32s, &mut st.scores),
            Kind::Quant => kernels::dot_f32i8_batch(&st.query, &b.i8s, &mut st.scores),
        }
        // Exact top-k over this shard's rows: replace the current worst.
        st.top.clear();
        for (i, &sc) in st.scores.iter().enumerate() {
            if st.top.len() < self.k {
                st.top.push((sc, b.ids[i]));
            } else {
                let (wi, _) = st
                    .top
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
                    .expect("k > 0");
                if sc > st.top[wi].0 {
                    st.top[wi] = (sc, b.ids[i]);
                }
            }
        }
    }
}

impl BatchExecutor for HarnessExecutor {
    fn execute(&self, s: usize, jobs: &[Job]) {
        if let Some(b) = &self.brownout {
            let faulted = jobs.iter().filter(|j| b.faulted(j.ticket)).count() as u64;
            if faulted > 0 {
                let until = self.clock.now_ticks() + faulted * b.slowdown_ticks;
                while self.clock.now_ticks() < until {
                    std::hint::spin_loop();
                }
            }
        }
        let mut st = self.state[s].lock().expect("scratch");
        let st = &mut *st;
        st.seen.clear();
        let mut fold = 0u64;
        for j in jobs {
            match self.trace[j.ticket as usize].kind {
                RequestKind::Lookup { entity } => {
                    fold = fold.wrapping_add(
                        self.facts[(entity % self.facts.len() as u64) as usize] as u64,
                    );
                }
                RequestKind::Search { query_seed } => {
                    if st.seen.contains(&query_seed) {
                        self.dedup_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        synth_vector(query_seed, self.dim, &mut st.query);
                        self.score_shard(s, st);
                        for &(sc, id) in &st.top {
                            fold = fold.wrapping_add(sc.to_bits() as u64 ^ id);
                        }
                        st.seen.push(query_seed);
                    }
                }
            }
        }
        self.sink.fetch_add(fold, Ordering::Relaxed);
        let done = self.clock.now_ticks();
        for j in jobs {
            self.board.complete_one(j.ticket, done);
        }
    }
}

struct BenchCfg {
    seed: u64,
    requests: usize,
    vectors: usize,
    dim: usize,
    k: usize,
    shard_counts: Vec<usize>,
    closed_workers: usize,
    ladder_fracs: Vec<f64>,
    p99_budget_us: u64,
    max_shed_rate: f64,
}

impl BenchCfg {
    fn new(seed: u64, quick: bool) -> Self {
        BenchCfg {
            seed,
            requests: if quick { 3_000 } else { 10_000 },
            vectors: if quick { 2_048 } else { 8_192 },
            dim: 32,
            k: 8,
            shard_counts: vec![2, 4],
            closed_workers: 8,
            ladder_fracs: vec![0.5, 0.7, 0.9, 1.1, 1.3, 1.5],
            p99_budget_us: 50_000,
            max_shed_rate: 0.01,
        }
    }

    fn trace_config(&self) -> TraceConfig {
        TraceConfig {
            seed: self.seed,
            requests: self.requests,
            entities: 50_000,
            query_pool: 64,
            lookup_fraction: 0.6,
            mean_interarrival_ticks: 1_000,
        }
    }
}

fn coalesced_policy() -> CoalescePolicy {
    CoalescePolicy { max_batch: 64, max_wait_ticks: 20 }
}

/// Build one engine + board + clock for a run.
#[allow(clippy::too_many_arguments)]
fn engine(
    cfg: &BenchCfg,
    kind: Kind,
    shards: usize,
    trace: &Arc<Vec<Request>>,
    facts: &[u32],
    coalesce: CoalescePolicy,
    shed: ShedPolicy,
    brownout: Option<Brownout>,
) -> (ShardEngine, Arc<SlotBoard>, Arc<dyn EngineClock>) {
    let clock: Arc<dyn EngineClock> = Arc::new(MicrosClock::new());
    let board = Arc::new(SlotBoard::new(trace.len()));
    let ex = Arc::new(HarnessExecutor {
        kind,
        dim: cfg.dim,
        k: cfg.k,
        blocks: build_blocks(shards, cfg.vectors, cfg.dim, cfg.seed),
        facts: facts.to_vec(),
        trace: Arc::clone(trace),
        board: Arc::clone(&board),
        clock: Arc::clone(&clock),
        state: (0..shards)
            .map(|_| {
                Mutex::new(Scratch {
                    query: Vec::new(),
                    scores: Vec::new(),
                    top: Vec::new(),
                    seen: Vec::new(),
                })
            })
            .collect(),
        sink: AtomicU64::new(0),
        brownout,
        dedup_hits: AtomicU64::new(0),
    });
    let eng = ShardEngine::start(shards, coalesce, shed, 1_024, ex, Arc::clone(&clock));
    (eng, board, clock)
}

/// Bit-reproducibility gate: the trace generator and the virtual-time
/// simulator must be exactly stable across regeneration and across worker
/// partitionings. Returns the fingerprints for the JSON document.
fn determinism_gate(cfg: &BenchCfg) -> (u64, u64) {
    let tc = cfg.trace_config();
    let trace = generate_trace(&tc);
    let tfp = trace_fingerprint(&trace);
    assert_eq!(tfp, trace_fingerprint(&generate_trace(&tc)), "trace regeneration diverged");

    let sim_cfg = sim::SimConfig {
        shards: 4,
        coalesce: coalesced_policy(),
        shed: ShedPolicy { queue_cap: 64, p99_budget_ticks: 20_000, min_depth: 4 },
        model: sim::ServiceModel { base_ticks: 40, per_job_ticks: 15 },
        latency_window: 512,
    };
    let base = sim::simulate(&trace, &sim_cfg);
    // Conservation is in shard-jobs: a lookup is one job, a search fans to
    // every shard.
    let jobs: u64 = trace
        .iter()
        .map(|r| match r.kind {
            RequestKind::Lookup { .. } => 1,
            RequestKind::Search { .. } => sim_cfg.shards as u64,
        })
        .sum();
    assert_eq!(base.served() + base.shed(), jobs, "simulator lost jobs");
    for threads in [1usize, 2, 3, 8] {
        let part = sim::simulate_partitioned(&trace, &sim_cfg, threads);
        assert_eq!(
            part.fingerprint, base.fingerprint,
            "simulator diverged at {threads} worker threads"
        );
    }
    (tfp, base.fingerprint)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args.iter().find(|a| !a.starts_with("--")).cloned();
    let cfg = BenchCfg::new(7, quick);

    eprintln!("determinism gate...");
    let (trace_fp, sim_fp) = determinism_gate(&cfg);

    let tc = cfg.trace_config();
    let trace = Arc::new(generate_trace(&tc));
    let n = trace.len() as u64;
    // Zipf-skewed synthetic fact counts, hot entities fact-rich.
    let facts: Vec<u32> =
        (0..4_096).map(|r| 2 + (trace::zipf_popularity(r, 4_096) * 60.0) as u32).collect();

    let mut scenarios: Vec<Scenario> = Vec::new();
    let mut sustained: Vec<SustainedEntry> = Vec::new();
    let mut conservation = true;
    let mut track = |rep: &LoadReport| conservation &= rep.served + rep.shed == n;
    let kinds = [Kind::Flat, Kind::Quant];
    let styles = [(true, coalesced_policy()), (false, CoalescePolicy::per_request())];

    for &kind in &kinds {
        for &shards in &cfg.shard_counts {
            let mut closed_qps = [0.0f64; 2];
            for (i, (coalesced, pol)) in styles.iter().enumerate() {
                let (eng, board, clock) = engine(
                    &cfg,
                    kind,
                    shards,
                    &trace,
                    &facts,
                    *pol,
                    ShedPolicy::unbounded(),
                    None,
                );
                let rep = run_load(
                    &eng,
                    &board,
                    &trace,
                    LoadMode::Closed { workers: cfg.closed_workers },
                    &clock,
                );
                eng.shutdown();
                track(&rep);
                closed_qps[i] = rep.qps;
                eprintln!(
                    "closed {} s{} {}: {:.0} qps p99={}us batch={:.1}",
                    kind.as_str(),
                    shards,
                    if *coalesced { "coalesced" } else { "per-request" },
                    rep.qps,
                    rep.p99_ticks,
                    rep.mean_batch
                );
                scenarios.push(Scenario {
                    index: kind.as_str().into(),
                    mode: "closed".into(),
                    shards,
                    coalesced: *coalesced,
                    target_qps: None,
                    report: rep,
                });
            }
            // Open-loop ladder: identical rungs for both styles so sustained
            // QPS is compared rate-for-rate at the same p99 budget.
            let base_qps = closed_qps[0].max(closed_qps[1]);
            let rungs: Vec<u64> = cfg
                .ladder_fracs
                .iter()
                .map(|f| ((base_qps * f) as u64).max(100))
                .collect();
            let shed_pol = ShedPolicy {
                queue_cap: 512,
                p99_budget_ticks: cfg.p99_budget_us,
                min_depth: 8,
            };
            let mut best: [Option<u64>; 2] = [None, None];
            for (i, (coalesced, pol)) in styles.iter().enumerate() {
                let mut ladder: Vec<(u64, LoadReport)> = Vec::new();
                for &rate in &rungs {
                    let (eng, board, clock) =
                        engine(&cfg, kind, shards, &trace, &facts, *pol, shed_pol, None);
                    let rep = run_load(
                        &eng,
                        &board,
                        &trace,
                        LoadMode::Open {
                            target_qps: rate,
                            trace_mean_interarrival_ticks: tc.mean_interarrival_ticks,
                        },
                        &clock,
                    );
                    eng.shutdown();
                    track(&rep);
                    eprintln!(
                        "open {} s{} {} @{}: shed={:.1}% p99={}us",
                        kind.as_str(),
                        shards,
                        if *coalesced { "coalesced" } else { "per-request" },
                        rate,
                        rep.shed_rate() * 100.0,
                        rep.p99_ticks
                    );
                    ladder.push((rate, rep));
                }
                best[i] = sustained_from_ladder(&ladder, cfg.max_shed_rate, cfg.p99_budget_us);
                let pick = best[i].unwrap_or(rungs[0]);
                if let Some((rate, rep)) = ladder.into_iter().find(|(r, _)| *r == pick) {
                    scenarios.push(Scenario {
                        index: kind.as_str().into(),
                        mode: "open".into(),
                        shards,
                        coalesced: *coalesced,
                        target_qps: Some(rate),
                        report: rep,
                    });
                }
            }
            sustained.push(SustainedEntry {
                index: kind.as_str().into(),
                shards,
                coalesced_qps: best[0].unwrap_or(0),
                per_request_qps: best[1].unwrap_or(0),
                p99_budget_us: cfg.p99_budget_us,
                max_shed_rate: cfg.max_shed_rate,
            });
        }
    }

    // Brownout: 20% of jobs slowed 1ms at 1.5× capacity; shedding on vs off.
    let b_kind = *kinds.last().expect("kinds");
    let b_shards = *cfg.shard_counts.iter().max().expect("shard counts");
    let offered = (scenarios
        .iter()
        .find(|s| s.index == b_kind.as_str() && s.shards == b_shards && s.mode == "closed" && s.coalesced)
        .map(|s| s.report.qps)
        .unwrap_or(10_000.0)
        * 1.5) as u64;
    let tight = ShedPolicy { queue_cap: 128, p99_budget_ticks: cfg.p99_budget_us, min_depth: 8 };
    let mut brownout_runs = Vec::new();
    for shed in [Some(tight), None] {
        let (eng, board, clock) = engine(
            &cfg,
            b_kind,
            b_shards,
            &trace,
            &facts,
            coalesced_policy(),
            shed.unwrap_or_else(ShedPolicy::unbounded),
            Some(Brownout { seed: cfg.seed, rate: 0.2, slowdown_ticks: 1_000 }),
        );
        let rep = run_load(
            &eng,
            &board,
            &trace,
            LoadMode::Open {
                target_qps: offered,
                trace_mean_interarrival_ticks: tc.mean_interarrival_ticks,
            },
            &clock,
        );
        eng.shutdown();
        track(&rep);
        eprintln!(
            "brownout {}: shed={:.1}% p99={}us",
            if shed.is_some() { "with-shed" } else { "no-shed" },
            rep.shed_rate() * 100.0,
            rep.p99_ticks
        );
        brownout_runs.push(rep);
    }
    let without_shed = brownout_runs.pop().expect("no-shed run");
    let with_shed = brownout_runs.pop().expect("with-shed run");
    let brownout =
        BrownoutReport { with_shed, without_shed, offered_qps: offered, faults_injected: true };

    // Client-retry comparison under the same brownout: naive fixed-backoff
    // vs shed-aware retry_after-honoring, equal attempt caps and budgets.
    let n_req = trace.len() as u64;
    let mut retry_entries = Vec::new();
    for (name, style) in [
        ("naive", RetryStyle::Naive { backoff_ticks: 50 }),
        ("shed_aware", RetryStyle::ShedAware),
    ] {
        let (eng, board, clock) = engine(
            &cfg,
            b_kind,
            b_shards,
            &trace,
            &facts,
            coalesced_policy(),
            tight,
            Some(Brownout { seed: cfg.seed, rate: 0.2, slowdown_ticks: 1_000 }),
        );
        let (rep, rstats) = run_load_retry(
            &eng,
            &board,
            &trace,
            offered,
            tc.mean_interarrival_ticks,
            RetryConfig { style, max_attempts: 4, budget: n_req * 4 },
            &clock,
        );
        eng.shutdown();
        track(&rep);
        eprintln!(
            "retry {}: goodput={:.0} qps shed={:.1}% amp={:.2}",
            name,
            rep.qps,
            rep.shed_rate() * 100.0,
            rstats.amplification(n_req)
        );
        retry_entries.push(RetryEntry { style: name.into(), report: rep, stats: rstats });
    }
    let shed_aware_entry = retry_entries.pop().expect("shed-aware run");
    let naive_entry = retry_entries.pop().expect("naive run");
    let client_retry = ClientRetryReport {
        offered_qps: offered,
        offered: n_req,
        naive: naive_entry,
        shed_aware: shed_aware_entry,
    };

    let acceptance = ServingAcceptance {
        coalescing_wins_sustained_qps: sustained
            .iter()
            .all(|s| s.coalesced_qps >= s.per_request_qps)
            && sustained.iter().map(|s| s.coalesced_qps).sum::<u64>()
                > sustained.iter().map(|s| s.per_request_qps).sum::<u64>(),
        brownout_sheds_not_collapses: brownout.with_shed.shed_rate()
            > brownout.without_shed.shed_rate()
            && brownout.with_shed.p99_ticks <= brownout.without_shed.p99_ticks,
        conservation_holds: conservation,
        shed_aware_retry_wins: client_retry.shed_aware_wins()
            && client_retry.amplification_bounded(),
    };

    let config_json = format!(
        "{{ \"seed\": {}, \"requests\": {}, \"vectors\": {}, \"dim\": {}, \"k\": {}, \"closed_workers\": {}, \"p99_budget_us\": {}, \"max_shed_rate\": {}, \"cores\": {}, \"trace_fingerprint\": \"{:#018x}\", \"sim_fingerprint\": \"{:#018x}\" }}",
        cfg.seed,
        cfg.requests,
        cfg.vectors,
        cfg.dim,
        cfg.k,
        cfg.closed_workers,
        cfg.p99_budget_us,
        cfg.max_shed_rate,
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        trace_fp,
        sim_fp,
    );
    let doc = serving_json(
        "tools/bench_serve.rs",
        &config_json,
        &kernels::provenance_json("  "),
        &scenarios,
        &sustained,
        &brownout,
        &client_retry,
        &acceptance,
    );
    match out_path {
        Some(p) => {
            std::fs::write(&p, &doc).expect("write output");
            eprintln!("wrote {p}");
        }
        None => println!("{doc}"),
    }
    if !acceptance.pass() {
        eprintln!(
            "ACCEPTANCE FAILED: coalescing_wins={} brownout_sheds={} conservation={} shed_aware_retry_wins={}",
            acceptance.coalescing_wins_sustained_qps,
            acceptance.brownout_sheds_not_collapses,
            acceptance.conservation_holds,
            acceptance.shed_aware_retry_wins
        );
        std::process::exit(1);
    }
    eprintln!("acceptance passed");
}
